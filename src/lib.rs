//! **PRIONN** — Predicting Runtime and IO using Neural Networks.
//!
//! A from-scratch Rust reproduction of the ICPP 2018 paper by Wyatt et al.
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`tensor`] — dense `f32` tensors and parallel kernels;
//! * [`nn`] — the deep-learning substrate (layers, losses, optimisers, the
//!   paper's NN / 1D-CNN / 2D-CNN architectures);
//! * [`text`] — job-script grids, the four character transforms, and the
//!   character-level word2vec;
//! * [`ml`] — traditional baselines (random forest, decision tree, kNN) and
//!   the Table-1 SLURM feature parser;
//! * [`workload`] — the synthetic Cab-like trace generator standing in for
//!   LLNL's non-public dataset;
//! * [`sched`] — the event-driven cluster simulator (FCFS + EASY backfill),
//!   snapshot turnaround prediction, IO timelines, and burst metrics;
//! * [`store`] — the versioned, checksummed checkpoint container behind
//!   [`core::Prionn::save`] / [`core::Prionn::load`];
//! * [`telemetry`] — dependency-free counters, gauges, and latency
//!   histograms with Prometheus/JSON export (see `docs/OBSERVABILITY.md`);
//! * [`observe`] — request-scoped span tracing, the lock-free flight
//!   recorder with panic-hook crash dumps, model-drift monitors, and the
//!   embedded `/metrics` + `/healthz` + `/readyz` + `/traces` + `/flight`
//!   ops endpoint;
//! * [`core`] — the PRIONN tool itself: whole-script models, warm-started
//!   online retraining, and the evaluation metrics;
//! * [`serve`] — the sharded, micro-batching inference gateway: replica
//!   workers, admission control with load shedding, and epoch-tagged
//!   weight hot-swap (see `docs/SERVING.md`);
//! * [`fleet`] — the distributed serving fleet: N gateway shards behind
//!   a length-prefixed binary wire protocol over TCP, a consistent-hash
//!   router with pipelined connections and typed shed/failover, and a
//!   coordinator that rolls weight epochs shard-by-shard (see
//!   `docs/SERVING.md` § Distributed fleet);
//! * [`forecast`] — cluster-scale IO burst forecasting: the incremental
//!   per-minute aggregator (O(log n) per job arrival/completion), the
//!   EWMA / Holt / seasonal-naive forecaster family, and edge-triggered
//!   pre-burst alerts that tighten gateway admission (see `DESIGN.md`
//!   §14);
//! * [`revise`] — continuous in-flight re-prediction: progress taps on
//!   the simulator, recency-weighted revision, split-conformal
//!   `[lo, point, hi]` intervals calibrated on the drift window,
//!   interval-aware backfill, and a kill/requeue policy for jobs whose
//!   revised lower bound exceeds their walltime (see
//!   `docs/REVISION.md`).
//!
//! # Example
//!
//! ```
//! use prionn::core::{Prionn, PrionnConfig};
//! use prionn::workload::{Trace, TraceConfig, TracePreset};
//!
//! // A tiny synthetic workload and a tiny model (CI-friendly sizes).
//! let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 60));
//! let jobs: Vec<_> = trace.executed_jobs().collect();
//! let scripts: Vec<&str> = jobs.iter().map(|j| j.script.as_str()).collect();
//! let runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime_minutes()).collect();
//!
//! let cfg = PrionnConfig {
//!     grid: (16, 16),
//!     base_width: 2,
//!     runtime_bins: 64,
//!     predict_io: false,
//!     epochs: 1,
//!     batch_size: 8,
//!     ..Default::default()
//! };
//! let mut model = Prionn::new(cfg, &scripts).unwrap();
//! model.retrain(&scripts, &runtimes, &[], &[]).unwrap();
//! let predictions = model.predict(&scripts[..3]).unwrap();
//! assert_eq!(predictions.len(), 3);
//! ```

pub use prionn_core as core;
pub use prionn_fleet as fleet;
pub use prionn_forecast as forecast;
pub use prionn_ml as ml;
pub use prionn_nn as nn;
pub use prionn_observe as observe;
pub use prionn_revise as revise;
pub use prionn_sched as sched;
pub use prionn_serve as serve;
pub use prionn_store as store;
pub use prionn_telemetry as telemetry;
pub use prionn_tensor as tensor;
pub use prionn_text as text;
pub use prionn_workload as workload;
