//! Cross-crate property tests on the invariants the evaluation depends on.

use prionn::core::bins::ValueBins;
use prionn::core::relative_accuracy;
use prionn::sched::{burst_metrics, io_timeline, JobIoInterval};
use prionn::text::{map_script_2d, BinaryTransform, SimpleTransform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Equation 1 stays in [0, 1] and is exact iff the prediction is exact.
    #[test]
    fn relative_accuracy_bounds(truth in 0.0f64..1e12, pred in 0.0f64..1e12) {
        let acc = relative_accuracy(truth, pred);
        prop_assert!((0.0..=1.0).contains(&acc));
        if (truth - pred).abs() < f64::EPSILON {
            prop_assert!((acc - 1.0).abs() < 1e-9);
        }
    }

    // Underprediction by a factor scores the same as overprediction by the
    // same factor (the max() denominator makes the metric ratio-based).
    #[test]
    fn relative_accuracy_ratio_symmetry(truth in 1.0f64..1e9, factor in 1.0f64..100.0) {
        let over = relative_accuracy(truth, truth * factor);
        let under = relative_accuracy(truth, truth / factor);
        prop_assert!((over - under).abs() < 1e-6, "{over} vs {under}");
    }

    // Runtime bins: encode is monotone and decode lands within half a bin.
    #[test]
    fn runtime_bins_roundtrip(minutes in 0.0f64..960.0, n in 16usize..1024) {
        let bins = ValueBins::runtime_minutes_with(n);
        let decoded = bins.decode(bins.encode(minutes));
        let half_bin = 960.0 / n as f64 / 2.0;
        prop_assert!((decoded - minutes).abs() <= half_bin + 1e-9);
    }

    // IO bins: decode error is bounded by half a bin ratio.
    #[test]
    fn io_bins_roundtrip(log_bytes in 5.0f64..14.0, n in 16usize..512) {
        let bytes = 10f64.powf(log_bytes);
        let bins = ValueBins::io_bytes(n);
        let decoded = bins.decode(bins.encode(bytes));
        let ratio = if decoded > bytes { decoded / bytes } else { bytes / decoded };
        let bin_ratio = (1e14f64 / 1e5).powf(1.0 / n as f64);
        prop_assert!(ratio <= bin_ratio * 1.001, "ratio {ratio} bin {bin_ratio}");
    }

    // The IO timeline conserves total bytes for arbitrary interval sets.
    #[test]
    fn io_timeline_conserves_bytes(
        intervals in proptest::collection::vec(
            (0u64..5_000, 1u64..5_000, 0.1f64..100.0), 1..20)
    ) {
        let ivs: Vec<JobIoInterval> = intervals
            .iter()
            .map(|&(start, len, bandwidth)| JobIoInterval {
                start,
                end: start + len,
                bandwidth,
            })
            .collect();
        let horizon = prionn::sched::io::horizon_minutes(&ivs);
        let timeline = io_timeline(&ivs, horizon);
        let timeline_bytes: f64 = timeline.iter().sum::<f64>() * 60.0;
        let true_bytes: f64 =
            ivs.iter().map(|iv| iv.bandwidth * (iv.end - iv.start) as f64).sum();
        prop_assert!((timeline_bytes - true_bytes).abs() < 1e-6 * true_bytes.max(1.0));
    }

    // Burst metrics never degrade as the matching window widens.
    #[test]
    fn burst_metrics_monotone_in_window(
        actual_spikes in proptest::collection::btree_set(0usize..500, 1..12),
        predicted_spikes in proptest::collection::btree_set(0usize..500, 1..12),
    ) {
        let mut actual = vec![1.0f64; 500];
        let mut predicted = vec![1.0f64; 500];
        for &s in &actual_spikes { actual[s] = 1000.0; }
        for &s in &predicted_spikes { predicted[s] = 1000.0; }
        let mut last_s = -1.0f64;
        let mut last_p = -1.0f64;
        for w in [3usize, 5, 11, 21, 41] {
            let m = burst_metrics(&actual, &predicted, w);
            prop_assert!(m.sensitivity >= last_s);
            prop_assert!(m.precision >= last_p);
            last_s = m.sensitivity;
            last_p = m.precision;
        }
    }

    // The script mapping is deterministic and injective over distinct texts
    // for the lossless "simple" transform (on scripts that fit the grid).
    #[test]
    fn simple_mapping_separates_scripts(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        let ma = map_script_2d(&a, &SimpleTransform, 8, 8).unwrap();
        let mb = map_script_2d(&b, &SimpleTransform, 8, 8).unwrap();
        if a == b {
            prop_assert_eq!(ma, mb);
        } else {
            prop_assert_ne!(ma, mb);
        }
    }

    // The binary transform only distinguishes space vs text.
    #[test]
    fn binary_mapping_in_unit_range(s in "[ -~]{0,64}") {
        let m = map_script_2d(&s, &BinaryTransform, 8, 8).unwrap();
        prop_assert!(m.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }
}
