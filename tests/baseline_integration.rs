//! Integration of the Table-1 feature pipeline with the generated scripts
//! and the traditional-ML baselines.

use prionn::core::baselines::user_predictions;
use prionn::core::{relative_accuracy, run_online_baseline, BaselineKind};
use prionn::ml::{parse_time_to_hours, RawJobFeatures};
use prionn::workload::{stats, Trace, TraceConfig, TracePreset};
use std::collections::HashMap;

fn trace(n: usize) -> Trace {
    let mut cfg = TraceConfig::preset(TracePreset::CabLike, n);
    cfg.n_users = 30;
    Trace::generate(&cfg)
}

#[test]
fn parser_recovers_directives_from_generated_scripts() {
    let t = trace(100);
    for j in t.jobs.iter().take(40) {
        let f = RawJobFeatures::parse(&j.script, &j.user, &j.group, &j.submit_dir);
        assert_eq!(f.requested_nodes as u32, j.nodes, "nodes in {}", j.script);
        assert_eq!(f.requested_tasks as u32, j.nodes * 16, "tasks");
        let req_hours = j.requested_seconds as f32 / 3600.0;
        assert!(
            (f.requested_time_hours - req_hours).abs() < 0.02,
            "time {} vs {} in {}",
            f.requested_time_hours,
            req_hours,
            j.script
        );
        assert!(!f.job_name.is_empty());
        assert!(f.working_directory.starts_with("/p/lustre/"));
    }
}

#[test]
fn generated_time_strings_parse_back() {
    let t = trace(60);
    for j in &t.jobs {
        for line in j.script.lines() {
            if let Some(v) = line.strip_prefix("#SBATCH -t ") {
                assert!(parse_time_to_hours(v).is_some(), "unparseable: {v}");
            }
        }
    }
}

#[test]
fn every_baseline_beats_user_requests() {
    let t = trace(320);
    let user = user_predictions(&t.jobs);
    let us: HashMap<u64, _> = user.iter().map(|p| (p.job_id, p)).collect();
    for kind in [
        BaselineKind::RandomForest,
        BaselineKind::DecisionTree,
        BaselineKind::Knn,
    ] {
        let preds = run_online_baseline(&t.jobs, kind, 100, 60, 50).expect("baseline");
        let by_id: HashMap<u64, _> = preds.iter().map(|p| (p.job_id, p)).collect();
        let mut acc_model = Vec::new();
        let mut acc_user = Vec::new();
        for j in t.executed_jobs() {
            let p = by_id[&j.id];
            if !p.model_trained {
                continue;
            }
            acc_model.push(relative_accuracy(j.runtime_minutes(), p.runtime_minutes));
            acc_user.push(relative_accuracy(
                j.runtime_minutes(),
                us[&j.id].runtime_minutes,
            ));
        }
        let (m, u) = (stats::mean(&acc_model), stats::mean(&acc_user));
        assert!(m > u, "{kind:?}: model {m:.3} vs user {u:.3}");
    }
}

#[test]
fn traditional_baselines_sit_in_one_accuracy_band() {
    // §2.4 ranks RF slightly above DT and kNN (2-3 pp). On a synthetic
    // corpus a fully grown DT can out-memorise a feature-subsampled RF, so
    // the robust reproducible claim is that the three traditional models
    // land in one band, clearly between the user baseline and PRIONN, with
    // RF not trailing the band leader by a large margin.
    let t = trace(400);
    let mean_acc = |kind| {
        let preds = run_online_baseline(&t.jobs, kind, 120, 60, 50).expect("baseline");
        let by_id: HashMap<u64, _> = preds.iter().map(|p| (p.job_id, p)).collect();
        let acc: Vec<f64> = t
            .executed_jobs()
            .filter_map(|j| {
                let p = by_id[&j.id];
                p.model_trained
                    .then(|| relative_accuracy(j.runtime_minutes(), p.runtime_minutes))
            })
            .collect();
        stats::mean(&acc)
    };
    let rf = mean_acc(BaselineKind::RandomForest);
    let dt = mean_acc(BaselineKind::DecisionTree);
    let knn = mean_acc(BaselineKind::Knn);
    let best = rf.max(dt).max(knn);
    // The band width leaves headroom for RNG-stream differences (the
    // in-tree rand shim draws a different but equally valid stream than
    // upstream rand, which shifts the synthetic corpus a little).
    assert!(rf > best - 0.2, "RF {rf:.3} vs best {best:.3}");
    // §2.4 attributes kNN's weakness to Euclidean distances over
    // label-encoded categoricals; the synthetic corpus exaggerates it.
    assert!(
        knn <= rf,
        "kNN should be the weakest: rf={rf:.3} dt={dt:.3} knn={knn:.3}"
    );
}
