//! Integration tests for the persistence subsystem: a full predictor
//! survives the disk round trip bit-for-bit, corruption is always an error,
//! and a `PrionnService` restored from a snapshot continues the online
//! protocol warm-started.

use prionn::core::{Prionn, PrionnConfig, PrionnService, ServiceOptions, TrainingBatch};
use prionn::store::Checkpoint;
use prionn::workload::{Trace, TraceConfig, TracePreset};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

fn tiny_cfg() -> PrionnConfig {
    PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 32,
        io_bins: 16,
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    }
}

fn workload() -> (Vec<String>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 60));
    let jobs: Vec<_> = trace.executed_jobs().collect();
    (
        jobs.iter().map(|j| j.script.clone()).collect(),
        jobs.iter().map(|j| j.runtime_minutes()).collect(),
        jobs.iter().map(|j| j.bytes_read).collect(),
        jobs.iter().map(|j| j.bytes_written).collect(),
    )
}

/// One trained model's checkpoint, serialised — shared across property
/// cases so each case only pays for parsing, not training.
fn trained_checkpoint_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (scripts, runtimes, reads, writes) = workload();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut model = Prionn::new(tiny_cfg(), &refs).expect("build");
        model
            .retrain(&refs, &runtimes, &reads, &writes)
            .expect("train");
        model.to_checkpoint().expect("checkpoint").to_bytes()
    })
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("prionn-it-{}-{}.ckpt", tag, std::process::id()))
}

#[test]
fn save_load_save_through_the_filesystem_is_byte_identical() {
    let (scripts, runtimes, reads, writes) = workload();
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let mut model = Prionn::new(tiny_cfg(), &refs).unwrap();
    model.retrain(&refs, &runtimes, &reads, &writes).unwrap();

    let path_a = tmp_path("bytes-a");
    let path_b = tmp_path("bytes-b");
    model.save(&path_a).unwrap();
    let restored = Prionn::load(&path_a).unwrap();
    restored.save(&path_b).unwrap();
    assert_eq!(
        std::fs::read(&path_a).unwrap(),
        std::fs::read(&path_b).unwrap(),
        "save -> load -> save must not change a single byte"
    );
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn restored_predictor_serves_bit_identical_predictions() {
    let (scripts, runtimes, reads, writes) = workload();
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let mut model = Prionn::new(tiny_cfg(), &refs).unwrap();
    model.retrain(&refs, &runtimes, &reads, &writes).unwrap();
    let before = model.predict(&refs[..8]).unwrap();

    let path = tmp_path("bitident");
    model.save(&path).unwrap();
    let mut restored = Prionn::load(&path).unwrap();
    let after = restored.predict(&refs[..8]).unwrap();
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.runtime_minutes.to_bits(), a.runtime_minutes.to_bits());
        assert_eq!(b.read_bytes.to_bits(), a.read_bytes.to_bits());
        assert_eq!(b.write_bytes.to_bits(), a.write_bytes.to_bits());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn service_restored_from_snapshot_continues_the_protocol_warm() {
    let (scripts, runtimes, _, _) = workload();
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let mut cfg = tiny_cfg();
    cfg.predict_io = false;

    // First "process": train through the service, snapshot, shut down.
    let path = tmp_path("service");
    let _ = std::fs::remove_file(&path);
    let options = ServiceOptions {
        snapshot_path: Some(path.clone()),
        ..Default::default()
    };
    let svc = PrionnService::spawn_with_options(cfg, &refs, options).unwrap();
    svc.retrain_async(TrainingBatch {
        scripts: scripts.clone(),
        runtime_minutes: runtimes.clone(),
        ..Default::default()
    });
    assert!(svc.snapshot_async());
    let before = svc.predict(&scripts[..6]).unwrap(); // barrier + reference
    assert_eq!(svc.stats().snapshots_taken.load(Ordering::SeqCst), 1);
    svc.shutdown();

    // Second "process": warm restart. Identical predictions out of the box…
    let restored = PrionnService::spawn_from_checkpoint(&path, ServiceOptions::default())
        .expect("restore service");
    let after = restored.predict(&scripts[..6]).unwrap();
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.runtime_minutes.to_bits(), a.runtime_minutes.to_bits());
    }

    // …and the *next* retrain updates the restored weights: train the
    // restored model toward very different targets and watch the served
    // predictions move.
    let shifted: Vec<f64> = runtimes
        .iter()
        .map(|r| (r * 3.0 + 60.0).min(900.0))
        .collect();
    for _ in 0..4 {
        restored.retrain_async(TrainingBatch {
            scripts: scripts.clone(),
            runtime_minutes: shifted.clone(),
            ..Default::default()
        });
    }
    let moved = restored.predict(&scripts[..6]).unwrap(); // barrier
    assert!(restored.stats().retrains_done.load(Ordering::SeqCst) >= 1);
    assert!(
        restored.last_error().is_none(),
        "{:?}",
        restored.last_error()
    );
    assert!(
        moved
            .iter()
            .zip(&before)
            .any(|(m, b)| m.runtime_minutes != b.runtime_minutes),
        "retraining the restored service must update its weights"
    );
    restored.shutdown();
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Any single flipped byte in a real trained-model checkpoint is
    // reported as an error — never a panic, never a silently-wrong model.
    #[test]
    fn corrupting_a_trained_checkpoint_is_an_error_not_a_panic(
        offset_seed in 0usize..100_000_000,
        flip in 1u8..255,
    ) {
        let bytes = trained_checkpoint_bytes();
        let mut bad = bytes.to_vec();
        let offset = offset_seed % bad.len();
        bad[offset] ^= flip;
        let result = Checkpoint::from_bytes(&bad)
            .and_then(|ck| Prionn::from_checkpoint(&ck).map(|_| ()));
        prop_assert!(result.is_err(), "flip at byte {} went undetected", offset);
    }

    // Parsing and restoring the intact bytes keeps working no matter how
    // often it is repeated (no hidden state in the load path).
    #[test]
    fn intact_checkpoint_bytes_always_restore(_round in 0usize..4) {
        let ck = Checkpoint::from_bytes(trained_checkpoint_bytes()).expect("parse");
        let model = Prionn::from_checkpoint(&ck).expect("restore");
        prop_assert!(model.retrain_count() > 0, "restored model is warm");
    }
}
