//! Integration between the text mapping and the deep-learning substrate:
//! every (transform, model) combination flows end to end.

use prionn::nn::{ArchConfig, LossTarget, ModelKind, Sgd, SoftmaxCrossEntropy};
use prionn::text::{
    map_corpus_1d, map_corpus_2d, BinaryTransform, CharTransform, OneHotTransform, SimpleTransform,
    Word2vecConfig, Word2vecTransform,
};

fn scripts() -> Vec<&'static str> {
    vec![
        "#!/bin/bash\n#SBATCH -N 4\nsrun ./a\n",
        "#!/bin/bash\n#SBATCH -N 64\nsrun ./b --big 12\n",
        "#!/bin/bash\nmodule load x\nsrun ./c\n",
        "#!/bin/bash\n#SBATCH -t 08:00:00\nsrun ./d\n",
    ]
}

#[test]
fn every_transform_feeds_every_model() {
    let scripts = scripts();
    let w2v = Word2vecTransform::train(&scripts, &Word2vecConfig::default());
    let transforms: Vec<Box<dyn CharTransform>> = vec![
        Box::new(BinaryTransform),
        Box::new(SimpleTransform),
        Box::new(OneHotTransform),
        Box::new(w2v),
    ];
    for t in &transforms {
        let cfg = ArchConfig {
            emb_dim: t.dim(),
            grid_h: 16,
            grid_w: 16,
            classes: 8,
            base_width: 2,
            batch_norm: false,
            seed: 7,
        };
        for kind in ModelKind::ALL {
            let mut model = cfg.build(kind).unwrap();
            let x = match kind {
                ModelKind::Cnn2d => map_corpus_2d(&scripts, t.as_ref(), 16, 16).unwrap(),
                _ => map_corpus_1d(&scripts, t.as_ref(), 16, 16).unwrap(),
            };
            let y = model.forward(&x, false).unwrap();
            assert_eq!(y.dims(), &[scripts.len(), 8], "{} + {kind:?}", t.name());
        }
    }
}

#[test]
fn one_training_step_reduces_loss_on_mapped_scripts() {
    let scripts = scripts();
    let t = SimpleTransform;
    let x = map_corpus_2d(&scripts, &t, 16, 16).unwrap();
    let classes = [0usize, 1, 2, 3];
    let cfg = ArchConfig {
        emb_dim: 1,
        grid_h: 16,
        grid_w: 16,
        classes: 4,
        base_width: 2,
        batch_norm: false,
        seed: 3,
    };
    let mut model = cfg.build(ModelKind::Cnn2d).unwrap();
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    let mut losses = Vec::new();
    for _ in 0..30 {
        losses.push(
            model
                .train_batch(
                    &x,
                    &LossTarget::Classes(&classes),
                    &SoftmaxCrossEntropy,
                    &mut opt,
                )
                .unwrap(),
        );
    }
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "loss should fall: {:?} -> {:?}",
        losses.first(),
        losses.last()
    );
}

#[test]
fn word2vec_dim_controls_model_input_channels() {
    let scripts = scripts();
    for dim in [2usize, 4, 8] {
        let cfg = Word2vecConfig {
            dim,
            epochs: 1,
            ..Default::default()
        };
        let t = Word2vecTransform::train(&scripts, &cfg);
        let x = map_corpus_2d(&scripts, &t, 16, 16).unwrap();
        assert_eq!(x.dims(), &[scripts.len(), dim, 16, 16]);
    }
}
