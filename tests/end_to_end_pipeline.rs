//! End-to-end integration: synthetic trace → online PRIONN → predictions
//! that beat the user baseline, exercising every crate through the facade.

use prionn::core::baselines::user_predictions;
use prionn::core::{relative_accuracy, run_online_prionn, OnlineConfig, PrionnConfig};
use prionn::workload::{stats, Trace, TraceConfig, TracePreset};
use std::collections::HashMap;

fn tiny_trace(n: usize) -> Trace {
    let mut cfg = TraceConfig::preset(TracePreset::CabLike, n);
    cfg.n_users = 25;
    cfg.mean_interarrival_seconds = 240.0;
    Trace::generate(&cfg)
}

fn tiny_online() -> OnlineConfig {
    OnlineConfig {
        train_window: 60,
        retrain_every: 50,
        min_history: 40,
        cold_start: false,
        telemetry: None,
        drift: None,
        prionn: PrionnConfig {
            grid: (16, 16),
            base_width: 2,
            runtime_bins: 96,
            io_bins: 16,
            epochs: 4,
            batch_size: 8,
            ..Default::default()
        },
    }
}

#[test]
fn online_prionn_beats_user_requests_on_runtime() {
    let trace = tiny_trace(260);
    let preds = run_online_prionn(&trace.jobs, &tiny_online()).expect("online run");
    let user = user_predictions(&trace.jobs);
    let pr: HashMap<u64, _> = preds.iter().map(|p| (p.job_id, p)).collect();
    let us: HashMap<u64, _> = user.iter().map(|p| (p.job_id, p)).collect();

    let mut acc_pr = Vec::new();
    let mut acc_us = Vec::new();
    for j in trace.executed_jobs() {
        let p = pr[&j.id];
        if !p.model_trained {
            continue;
        }
        acc_pr.push(relative_accuracy(j.runtime_minutes(), p.runtime_minutes));
        acc_us.push(relative_accuracy(
            j.runtime_minutes(),
            us[&j.id].runtime_minutes,
        ));
    }
    assert!(
        acc_pr.len() > 50,
        "enough trained predictions ({})",
        acc_pr.len()
    );
    let (m_pr, m_us) = (stats::mean(&acc_pr), stats::mean(&acc_us));
    assert!(
        m_pr > m_us,
        "PRIONN ({m_pr:.3}) must beat padded user requests ({m_us:.3})"
    );
}

#[test]
fn predictions_cover_every_executed_job_exactly_once() {
    let trace = tiny_trace(150);
    let preds = run_online_prionn(&trace.jobs, &tiny_online()).expect("online run");
    let executed: Vec<u64> = trace.executed_jobs().map(|j| j.id).collect();
    let predicted: Vec<u64> = preds.iter().map(|p| p.job_id).collect();
    assert_eq!(
        executed, predicted,
        "aligned, in submission order, no cancelled jobs"
    );
}

#[test]
fn io_predictions_are_produced_and_positive_once_trained() {
    let trace = tiny_trace(200);
    let preds = run_online_prionn(&trace.jobs, &tiny_online()).expect("online run");
    let trained: Vec<_> = preds.iter().filter(|p| p.model_trained).collect();
    assert!(!trained.is_empty());
    assert!(trained
        .iter()
        .all(|p| p.read_bytes > 0.0 && p.write_bytes > 0.0));
}
