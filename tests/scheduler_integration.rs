//! Integration of the workload generator with the scheduler simulator:
//! conservation properties, turnaround prediction, and burst metrics.

use prionn::sched::engine::simulate;
use prionn::sched::{burst_metrics, io_timeline, predict_turnarounds, JobIoInterval, SimJob};
use prionn::workload::{Trace, TraceConfig, TracePreset};
use std::collections::HashMap;

fn sim_jobs(trace: &Trace) -> Vec<SimJob> {
    trace
        .executed_jobs()
        .map(|j| SimJob {
            id: j.id,
            submit: j.submit_time,
            nodes: j.nodes,
            runtime: j.runtime_seconds.max(1),
            estimate: j.requested_seconds.max(1),
        })
        .collect()
}

#[test]
fn every_executed_job_gets_scheduled_exactly_once() {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 500));
    let jobs = sim_jobs(&trace);
    let schedule = simulate(256, &jobs);
    assert_eq!(schedule.entries.len(), jobs.len());
    for e in &schedule.entries {
        assert!(e.start >= e.submit);
    }
}

#[test]
fn turnaround_never_less_than_runtime() {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 400));
    let jobs = sim_jobs(&trace);
    let by_id: HashMap<u64, &SimJob> = jobs.iter().map(|j| (j.id, j)).collect();
    let schedule = simulate(128, &jobs);
    for e in &schedule.entries {
        assert!(e.turnaround() >= by_id[&e.id].runtime, "job {}", e.id);
    }
}

#[test]
fn perfect_runtime_predictions_give_near_perfect_turnarounds() {
    // With exact runtime knowledge the only error source left is future
    // arrivals the snapshot cannot see (they can backfill ahead of queued
    // jobs) — the paper's predictor shares this property. On a contended
    // cluster the predictions should still be exact for most jobs and very
    // accurate on average.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 200));
    let jobs: Vec<SimJob> = sim_jobs(&trace)
        .into_iter()
        .map(|j| SimJob {
            estimate: j.runtime,
            ..j
        })
        .collect();
    let perfect: HashMap<u64, u64> = jobs.iter().map(|j| (j.id, j.runtime)).collect();
    let out = predict_turnarounds(96, &jobs, &perfect);
    let exact = out.iter().filter(|(a, p)| a == p).count();
    assert!(
        exact * 2 > out.len(),
        "majority exact: {exact}/{}",
        out.len()
    );
    let mean_acc: f64 = out
        .iter()
        .map(|&(a, p)| prionn::core::relative_accuracy(a as f64, p as f64))
        .sum::<f64>()
        / out.len() as f64;
    assert!(mean_acc > 0.85, "mean turnaround accuracy {mean_acc:.3}");
}

#[test]
fn perfect_predictions_are_exact_on_an_uncontended_cluster() {
    // With no queueing, turnaround == runtime and the snapshot sees it.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 120));
    let jobs: Vec<SimJob> = sim_jobs(&trace)
        .into_iter()
        .map(|j| SimJob {
            estimate: j.runtime,
            ..j
        })
        .collect();
    let perfect: HashMap<u64, u64> = jobs.iter().map(|j| (j.id, j.runtime)).collect();
    let out = predict_turnarounds(100_000, &jobs, &perfect);
    for (i, (actual, pred)) in out.iter().enumerate() {
        assert_eq!(actual, pred, "row {i}");
    }
}

#[test]
fn smaller_clusters_increase_turnarounds() {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 400));
    let jobs = sim_jobs(&trace);
    let total = |nodes: u32| {
        simulate(nodes, &jobs)
            .entries
            .iter()
            .map(|e| e.turnaround())
            .sum::<u64>()
    };
    assert!(
        total(64) >= total(1296),
        "contention grows on smaller machines"
    );
}

#[test]
fn io_timeline_from_schedule_conserves_bytes() {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 300));
    let jobs = sim_jobs(&trace);
    let by_id: HashMap<u64, _> = trace.executed_jobs().map(|j| (j.id, j)).collect();
    let schedule = simulate(256, &jobs);
    let intervals: Vec<JobIoInterval> = schedule
        .entries
        .iter()
        .map(|e| {
            let j = by_id[&e.id];
            JobIoInterval {
                start: e.start,
                end: e.end,
                bandwidth: j.read_bandwidth() + j.write_bandwidth(),
            }
        })
        .collect();
    let horizon = prionn::sched::io::horizon_minutes(&intervals);
    let timeline = io_timeline(&intervals, horizon);
    let timeline_bytes: f64 = timeline.iter().sum::<f64>() * 60.0;
    let trace_bytes: f64 = trace
        .executed_jobs()
        .map(|j| j.bytes_read + j.bytes_written)
        .sum();
    let rel_err = (timeline_bytes - trace_bytes).abs() / trace_bytes;
    assert!(
        rel_err < 0.02,
        "IO volume conserved within 2% (err {rel_err:.4})"
    );
}

#[test]
fn io_aware_policy_reduces_bursts_with_perfect_predictions() {
    use prionn::sched::{simulate_io_aware, IoAwareConfig};

    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 400));
    let jobs = sim_jobs(&trace);
    let true_bw: HashMap<u64, f64> = trace
        .executed_jobs()
        .map(|j| (j.id, j.read_bandwidth() + j.write_bandwidth()))
        .collect();

    let timeline_of = |schedule: &prionn::sched::Schedule| {
        let intervals: Vec<JobIoInterval> = schedule
            .entries
            .iter()
            .map(|e| JobIoInterval {
                start: e.start,
                end: e.end,
                bandwidth: true_bw[&e.id],
            })
            .collect();
        let horizon = prionn::sched::io::horizon_minutes(&intervals);
        io_timeline(&intervals, horizon)
    };

    let fcfs = simulate(256, &jobs);
    let fcfs_timeline = timeline_of(&fcfs);
    // A budget above every single job's bandwidth: all remaining bursts are
    // *stacked* bursts, which the admission cap provably prevents (a job
    // that fits the budget alone is only admitted while the stacked total
    // stays under it).
    let max_single = true_bw.values().cloned().fold(0.0f64, f64::max);
    let budget = max_single * 1.05;
    let fcfs_bursts = fcfs_timeline.iter().filter(|&&v| v > budget).count();
    assert!(
        fcfs_bursts > 0,
        "baseline must have stacked bursts for the test to mean anything"
    );

    let cfg = IoAwareConfig {
        bandwidth_budget: budget,
        max_io_delay: 365 * 24 * 3600,
    };
    let gated = simulate_io_aware(256, &jobs, cfg, true_bw.clone());
    assert_eq!(gated.entries.len(), jobs.len(), "every job still completes");
    let gated_timeline = timeline_of(&gated);
    let gated_bursts = gated_timeline.iter().filter(|&&v| v > budget).count();
    assert_eq!(
        gated_bursts, 0,
        "stacked bursts are fully prevented: {gated_bursts} remain"
    );

    // The price is throughput: total turnaround must not decrease.
    let tat = |s: &prionn::sched::Schedule| s.entries.iter().map(|e| e.turnaround()).sum::<u64>();
    assert!(tat(&gated) >= tat(&fcfs));
}

#[test]
fn identical_timelines_score_perfect_burst_metrics() {
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 300));
    let intervals: Vec<JobIoInterval> = trace
        .executed_jobs()
        .map(|j| JobIoInterval {
            start: j.submit_time,
            end: j.submit_time + j.runtime_seconds,
            bandwidth: j.read_bandwidth() + j.write_bandwidth(),
        })
        .collect();
    let horizon = prionn::sched::io::horizon_minutes(&intervals);
    let timeline = io_timeline(&intervals, horizon);
    let m = burst_metrics(&timeline, &timeline, 5);
    assert_eq!(m.sensitivity, 1.0);
    assert_eq!(m.precision, 1.0);
    assert!(m.actual_bursts > 0, "a Cab-like slice has IO bursts");
}
