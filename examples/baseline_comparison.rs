//! Compare PRIONN against the paper's traditional baselines (RF, DT, kNN on
//! manually parsed Table-1 features) and raw user requests, all under the
//! same online protocol.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use prionn::core::baselines::user_predictions;
use prionn::core::{
    relative_accuracy, run_online_baseline, run_online_prionn, BaselineKind, JobPrediction,
    OnlineConfig, PrionnConfig,
};
use prionn::workload::{stats, JobRecord, Trace, TraceConfig, TracePreset};
use std::collections::HashMap;

fn score(label: &str, jobs: &[JobRecord], preds: &[JobPrediction]) {
    let by_id: HashMap<u64, &JobPrediction> = preds.iter().map(|p| (p.job_id, p)).collect();
    let acc: Vec<f64> = jobs
        .iter()
        .filter(|j| !j.cancelled)
        .filter_map(|j| by_id.get(&j.id).map(|p| (j, p)))
        .map(|(j, p)| relative_accuracy(j.runtime_minutes(), p.runtime_minutes))
        .collect();
    println!(
        "  {label:<14} mean={:5.1}%  median={:5.1}%",
        stats::mean(&acc) * 100.0,
        stats::median(&acc) * 100.0
    );
}

fn main() {
    let mut trace_cfg = TraceConfig::preset(TracePreset::CabLike, 700);
    trace_cfg.n_users = 45;
    let trace = Trace::generate(&trace_cfg);
    println!(
        "runtime prediction accuracy over {} submissions:",
        trace.jobs.len()
    );

    score("user request", &trace.jobs, &user_predictions(&trace.jobs));
    for kind in [
        BaselineKind::Knn,
        BaselineKind::DecisionTree,
        BaselineKind::RandomForest,
    ] {
        let preds = run_online_baseline(&trace.jobs, kind, 150, 80, 60).expect("baseline run");
        score(kind.label(), &trace.jobs, &preds);
    }

    let online = OnlineConfig {
        train_window: 150,
        retrain_every: 80,
        min_history: 60,
        cold_start: false,
        telemetry: None,
        drift: None,
        prionn: PrionnConfig {
            base_width: 4,
            epochs: 10,
            batch_size: 8,
            predict_io: false,
            ..Default::default()
        },
    };
    let preds = run_online_prionn(&trace.jobs, &online).expect("PRIONN run");
    score("PRIONN", &trace.jobs, &preds);
}
