//! The fleet observability plane end to end: a 2-shard in-process fleet
//! with per-shard ops endpoints, a tracing router, a `FleetCollector`
//! federating both shards' metrics, one traced request driven through a
//! *forced failover* (its home shard is draining), the stitched
//! cross-shard span tree printed, and an SLO burn-rate alert firing
//! under an injected latency objective no real request can meet.
//!
//! ```text
//! cargo run --release --example fleet_observe_demo
//! ```
//!
//! Prints `FLEET_OBSERVE_DEMO_OK` when every phase checks out. See
//! `docs/OBSERVABILITY.md` § Fleet plane.

use prionn::fleet::router::{Router, RouterConfig};
use prionn::fleet::testkit::{demo_corpus, LocalFleet, ROUTER_TRACE_NAMESPACE};
use prionn::observe::{
    render_trace_tree, CollectorConfig, FleetCollector, FlightConfig, FlightRecorder, ShardTarget,
    SloSource, SloSpec, Tracer,
};
use prionn::telemetry::Telemetry;
use std::time::Duration;

fn main() {
    // 1. Boot an observed fleet: each shard gets its own telemetry
    //    registry, flight recorder, namespaced tracer, and ops endpoint
    //    — exactly what a multi-host shard process would expose.
    let scripts = demo_corpus();
    let mut fleet = LocalFleet::spawn_observed(2);
    let recorder = FlightRecorder::new(FlightConfig::default());
    let router = Router::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        down_backoff: Duration::from_millis(100),
        tracer: Some(Tracer::with_namespace(&recorder, ROUTER_TRACE_NAMESPACE)),
        ..RouterConfig::for_endpoints(fleet.endpoints())
    });
    println!(
        "observed fleet up: shards at {:?}, ops at {:?}",
        fleet.endpoints(),
        fleet.ops_endpoints()
    );

    // 2. A collector over both shards, with two SLOs: one sane (every
    //    predict under an hour) and one impossible (99% under 1ns) that
    //    any real traffic violates — the injected burn.
    let collector = FleetCollector::new(CollectorConfig {
        shards: fleet
            .ops_endpoints()
            .into_iter()
            .enumerate()
            .map(|(i, ops_addr)| ShardTarget {
                name: i.to_string(),
                ops_addr,
            })
            .collect(),
        telemetry: Some(Telemetry::new()),
        slos: vec![
            SloSpec::new(
                "predict_p99",
                0.99,
                SloSource::LatencyBuckets {
                    histogram: "serve_predict_seconds".into(),
                    threshold: 1e-9,
                },
            ),
            SloSpec::new(
                "predict_sane",
                0.99,
                SloSource::LatencyBuckets {
                    histogram: "serve_predict_seconds".into(),
                    threshold: 3600.0,
                },
            ),
        ],
        local_recorder: Some(recorder.clone()),
        ..CollectorConfig::default()
    });
    collector.scrape_once(); // cumulative baseline for the SLO deltas

    // 3. Force a failover: drain a user's home shard, then predict. The
    //    router's first hop gets the typed Draining refusal and walks
    //    the ring; the second hop serves. Both hops — and the serving
    //    shard's whole gateway span tree — share one trace id.
    let user = (0..u64::MAX).find(|&u| router.route(u) == Some(0)).unwrap();
    router.drain_shard(0).expect("drain shard 0");
    let reply = router
        .predict(user, &scripts[..1])
        .expect("failover predict");
    assert_ne!(reply.shard, 0, "drained shard must not serve");
    println!(
        "traced request for user {user}: home shard 0 draining, served by shard {} \
         (runtime {:.0} min)",
        reply.shard, reply.predictions[0].runtime_minutes
    );

    // 4. Stitch the trace: router spans from the local recorder, shard
    //    spans from each shard's recorder — one tree, one trace id.
    let router_spans = recorder.snapshot();
    let root = router_spans
        .iter()
        .find(|s| s.name == "fleet_predict")
        .expect("router root span");
    let trace_id = root.trace_id;
    let mut stitched = router_spans.clone();
    for i in 0..fleet.len() {
        if let Some(rec) = &fleet.shard(i).recorder {
            stitched.extend(rec.snapshot());
        }
    }
    println!("\nstitched span tree (trace id {trace_id:#x}):");
    print!("{}", render_trace_tree(&stitched, trace_id));
    let hops = stitched
        .iter()
        .filter(|s| s.trace_id == trace_id && s.name == "hop")
        .count();
    assert!(hops >= 2, "failover should record >= 2 hops, got {hops}");
    assert!(
        stitched
            .iter()
            .any(|s| s.trace_id == trace_id && s.name == "predict"),
        "serving shard's gateway spans adopt the router's trace id"
    );

    // The same tree is retrievable over HTTP by trace id (the CI fleet
    // job curls /fleet/traces on a collector ops endpoint for this).
    let doc = collector.trace_json(trace_id);
    assert!(doc.contains("fleet_predict") && doc.contains("\"hop\""));
    println!("/fleet/traces view: {} bytes of stitched JSON", doc.len());

    // 5. Burn the error budget: the violating traffic since the baseline
    //    scrape becomes the delta the next scrape judges. The impossible
    //    SLO pages (fast 5m/1h windows both past 14.4x); the sane one
    //    stays quiet.
    for u in 0..32u64 {
        let _ = router.predict(u, &scripts[..1]);
    }
    collector.scrape_once();
    let (healthy, detail) = collector.healthz();
    println!(
        "\nfleet health: {} ({detail})",
        if healthy { "ok" } else { "degraded" }
    );
    assert!(collector.slo().alert_active("predict_p99"));
    assert!(!collector.slo().alert_active("predict_sane"));
    println!("burning SLO: {:?}", collector.slo().any_alert());
    for line in collector
        .merged_prometheus()
        .lines()
        .filter(|l| l.starts_with("slo_alert") || l.starts_with("slo_burn_rate"))
    {
        println!("  {line}");
    }

    collector.shutdown();
    drop(router);
    fleet.shutdown();
    println!("\nFLEET_OBSERVE_DEMO_OK");
}
