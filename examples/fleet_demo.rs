//! The distributed serving fleet end to end: three gateway shards behind
//! the binary wire protocol, a consistent-hash router spreading users
//! across them, a staggered shard-by-shard weight rollout, and the
//! drain → failover → recovery lifecycle of losing a shard.
//!
//! ```text
//! cargo run --release --example fleet_demo
//! ```
//!
//! Everything runs in one process over real TCP loopback connections —
//! the same `ShardServer`/`Router`/`FleetCoordinator` types a multi-host
//! deployment uses (see `docs/SERVING.md` § Distributed fleet). Prints
//! `FLEET_DEMO_OK` when every phase checks out.

use prionn::fleet::coordinator::FleetCoordinator;
use prionn::fleet::router::{FleetError, Router, RouterConfig};
use prionn::fleet::testkit::{demo_checkpoint, demo_corpus, LocalFleet};
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
const USERS: u64 = 1_000;

fn main() {
    // 1. Boot a local fleet: each shard is a micro-batching Gateway
    //    wrapped in a ShardServer listening on its own TCP port.
    let scripts = demo_corpus();
    let mut fleet = LocalFleet::spawn(SHARDS);
    let router = Router::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        down_backoff: Duration::from_millis(100),
        ..RouterConfig::for_endpoints(fleet.endpoints())
    });
    println!("fleet up: {} shards at {:?}", SHARDS, fleet.endpoints());

    // 2. Route predictions for a population of users. The consistent-hash
    //    ring pins each user to a home shard; replies carry the serving
    //    shard and its weight epoch so clients can see both.
    let mut served_by = vec![0u64; SHARDS];
    let mut first = None;
    for user in 0..USERS {
        let one = std::slice::from_ref(&scripts[(user % scripts.len() as u64) as usize]);
        let reply = router.predict(user, one).expect("fleet predict");
        assert_eq!(
            Some(reply.shard),
            router.route(user),
            "reply from home shard"
        );
        served_by[reply.shard] += 1;
        first.get_or_insert_with(|| (reply.predictions[0], reply.epoch));
    }
    let (pred, epoch0) = first.unwrap();
    println!(
        "served {USERS} users, spread {served_by:?}; first prediction: \
         runtime {:.1} min (epoch {epoch0})",
        pred.runtime_minutes
    );
    assert!(
        served_by.iter().all(|&n| n > 0),
        "every shard takes traffic"
    );

    // 3. Roll new weights across the fleet shard by shard. The coordinator
    //    pushes the checkpoint over the wire and waits for each shard's
    //    swap ack, so at most two adjacent epochs ever coexist.
    let coordinator = FleetCoordinator::new(&router, Duration::from_secs(30));
    let report = coordinator.rollout(&demo_checkpoint());
    assert!(
        report.fully_applied(),
        "rollout failed: {:?}",
        report.failed_shards()
    );
    for s in &report.shards {
        println!("  rollout: shard {} now at epoch {:?}", s.shard, s.epoch);
        assert_eq!(s.epoch, Some(epoch0 + 1));
    }

    // 4. Drain shard 0: it answers new predicts with a typed `Draining`
    //    shed, and the router fails its users over to the survivors.
    router.drain_shard(0).expect("drain");
    let drained_user = (0..USERS)
        .find(|&u| router.route(u) == Some(0))
        .expect("some user homes on shard 0");
    let reply = router
        .predict(drained_user, &scripts[..1])
        .expect("failover serves the drained user");
    assert_ne!(reply.shard, 0, "drained shard must not serve");
    println!(
        "drained shard 0; user {drained_user} failed over to shard {}",
        reply.shard
    );

    // 5. Kill it outright, then bring up a replacement on a fresh address.
    //    `set_endpoint` + `mark_up` splice the new process into the same
    //    ring slot, and traffic returns without any client-visible churn.
    fleet.kill(0);
    match router.predict(drained_user, &scripts[..1]) {
        Ok(reply) => assert_ne!(reply.shard, 0),
        Err(FleetError::Rejected { code, .. }) => {
            panic!("availability failures must fail over, got typed {code}")
        }
        Err(e) => panic!("all-surviving-shards fleet must serve: {e}"),
    }
    let endpoint = fleet.respawn(0);
    router.set_endpoint(0, &endpoint);
    router.mark_up(0);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(reply) = router.predict(drained_user, &scripts[..1]) {
            if reply.shard == 0 {
                println!("replacement shard 0 at {endpoint} serving its users again");
                break;
            }
        }
        assert!(Instant::now() < deadline, "replacement never took traffic");
        std::thread::sleep(Duration::from_millis(50));
    }

    drop(router);
    fleet.shutdown();
    println!("FLEET_DEMO_OK");
}
