//! Dump the full telemetry surface: run a short train/predict session
//! through [`PrionnService`] and the instrumented cluster simulator, then
//! print the span-event log and both export formats (Prometheus text
//! exposition and JSON).
//!
//! ```text
//! cargo run --release --example metrics_dump
//! ```
//!
//! The output includes per-layer forward/backward timings
//! (`nn_layer_forward_seconds` / `nn_layer_backward_seconds`), the
//! predict-latency histogram with p50/p90/p99 estimates in the JSON view,
//! and the scheduler work counters. `docs/OBSERVABILITY.md` documents every
//! metric that appears here.

use prionn::core::{PrionnConfig, PrionnService, ServiceOptions, TrainingBatch};
use prionn::sched::{simulate_with_telemetry, SimJob};
use prionn::telemetry::Telemetry;
use prionn::workload::{Trace, TraceConfig, TracePreset};

fn main() {
    // One registry shared by the service, the model inside it, and the
    // simulator — exactly how an operator would wire a scrape endpoint.
    let telemetry = Telemetry::default();

    // 1. A small synthetic workload (stand-in for a live submission stream).
    let mut trace_cfg = TraceConfig::preset(TracePreset::CabLike, 200);
    trace_cfg.n_users = 25;
    let trace = Trace::generate(&trace_cfg);
    let jobs: Vec<_> = trace.executed_jobs().collect();
    let corpus: Vec<&str> = jobs.iter().map(|j| j.script.as_str()).collect();

    // 2. The service, sized so the example finishes in seconds on one core.
    let cfg = PrionnConfig {
        grid: (32, 32),
        base_width: 2,
        runtime_bins: 120,
        io_bins: 32,
        epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    let options = ServiceOptions {
        telemetry: Some(telemetry.clone()),
        ..Default::default()
    };
    let service = PrionnService::spawn_with_options(cfg, &corpus, options).expect("spawn service");

    // 3. One retraining event fills the backward-pass timers and the
    //    retrain histograms ...
    let (history, incoming) = jobs.split_at(jobs.len() - 40);
    service.retrain_async(TrainingBatch {
        scripts: history.iter().map(|j| j.script.clone()).collect(),
        runtime_minutes: history.iter().map(|j| j.runtime_minutes()).collect(),
        read_bytes: history.iter().map(|j| j.bytes_read).collect(),
        write_bytes: history.iter().map(|j| j.bytes_written).collect(),
    });

    // 4. ... then a stream of predict RPCs fills the latency histograms.
    //    (The first predict doubles as a barrier: it is served only after
    //    the queued batch has trained.)
    let mut predicted_minutes = Vec::with_capacity(incoming.len());
    for chunk in incoming.chunks(8) {
        let scripts: Vec<String> = chunk.iter().map(|j| j.script.clone()).collect();
        let preds = service.predict(&scripts).expect("predict");
        predicted_minutes.extend(preds.iter().map(|p| p.runtime_minutes));
    }

    // 5. Feed the predictions into the instrumented cluster simulator so
    //    the sched_* counters are populated too.
    let sim_jobs: Vec<SimJob> = incoming
        .iter()
        .zip(&predicted_minutes)
        .map(|(j, mins)| SimJob {
            id: j.id,
            submit: j.submit_time,
            nodes: j.nodes,
            runtime: j.runtime_seconds,
            estimate: (mins * 60.0).max(1.0) as u64,
        })
        .collect();
    let schedule = simulate_with_telemetry(64, &sim_jobs, &telemetry);
    println!(
        "simulated {} predicted jobs; makespan {} s",
        schedule.entries.len(),
        schedule.entries.iter().map(|e| e.end).max().unwrap_or(0)
    );

    // 6. The structured event log: timestamped spans for retrains and
    //    snapshots, drained through the service API.
    println!("\n== span events ==");
    for ev in service.drain_events() {
        println!(
            "  +{:>8} us  {:<10} {:>8} us  {}",
            ev.at_micros, ev.name, ev.duration_micros, ev.detail
        );
    }

    // 7. Both export formats, from the same registry.
    println!(
        "\n== prometheus text exposition ==\n{}",
        telemetry.prometheus()
    );
    println!("== json snapshot ==\n{}", telemetry.json());

    service.shutdown();
}
