//! Observability end to end: the serving gateway under concurrent load
//! with mid-traffic retrains, fully traced — request-scoped span trees
//! across micro-batch fusion, a flight recorder armed for crash dumps, a
//! drift monitor scoring completed jobs, and the embedded ops endpoint
//! serving `/metrics`, `/healthz`, `/readyz`, `/traces`, and `/flight`.
//!
//! ```text
//! cargo run --release --example observe_demo [-- --serve-seconds N]
//! ```
//!
//! Prints `OPS_ADDR=<ip:port>` as soon as the endpoint is up (CI curls
//! it), one request's full span tree — admission → batch fusion → the
//! fused forward with per-layer timings — and the drift readout.
//! `--serve-seconds N` keeps the process (and the endpoint) alive for N
//! extra seconds after the load so external scrapers can poke it.

use prionn::core::{Prionn, PrionnConfig, TrainingBatch};
use prionn::observe::{
    render_trace_tree, DriftConfig, DriftMonitor, FlightConfig, FlightRecorder, OpsOptions,
    OpsServer, Readiness, Tracer,
};
use prionn::serve::{Gateway, GatewayConfig, ServeError};
use prionn::telemetry::Telemetry;
use prionn::workload::{Trace, TraceConfig, TracePreset};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 30;

fn main() {
    let serve_seconds: u64 = std::env::args()
        .skip_while(|a| a != "--serve-seconds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    // 1. A synthetic workload and an initially-trained model.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 160));
    let jobs: Vec<_> = trace.executed_jobs().collect();
    let scripts: Vec<String> = jobs.iter().map(|j| j.script.clone()).collect();
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime_minutes()).collect();
    let reads: Vec<f64> = jobs.iter().map(|j| j.bytes_read).collect();
    let writes: Vec<f64> = jobs.iter().map(|j| j.bytes_written).collect();

    let cfg = PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 64,
        io_bins: 16,
        epochs: 1,
        batch_size: 32,
        ..Default::default()
    };
    let mut model = Prionn::new(cfg, &refs).unwrap();
    model.retrain(&refs, &runtimes, &reads, &writes).unwrap();

    // 2. The observability stack: one registry, one flight recorder (panic
    //    hook armed), one tracer, one drift monitor — shared by everything.
    let telemetry = Telemetry::default();
    let recorder = FlightRecorder::new(FlightConfig {
        // Room for every span of the demo's load, so the printed trees are
        // complete (production keeps the default and accepts eviction).
        per_thread_capacity: 16384,
        ..FlightConfig::default()
    });
    recorder.attach_telemetry(&telemetry);
    recorder.set_dump_dir(std::env::temp_dir().join("prionn-observe-demo"));
    recorder.install_panic_hook();
    let tracer = Tracer::new(&recorder);
    let drift = DriftMonitor::new(
        &telemetry,
        DriftConfig {
            min_samples: 16,
            ..DriftConfig::default()
        },
    );

    // 3. The gateway, traced and drift-monitored.
    let gateway = Arc::new(
        Gateway::spawn(
            model,
            GatewayConfig {
                replicas: 2,
                max_batch: CLIENTS,
                max_wait: Duration::from_micros(500),
                queue_cap: 64,
                telemetry: Some(telemetry.clone()),
                tracer: Some(tracer.clone()),
                drift: Some(drift.clone()),
                ..GatewayConfig::default()
            },
        )
        .unwrap(),
    );

    // 4. The ops endpoint: readiness reflects live replicas + queue depth.
    let probe_gw = Arc::clone(&gateway);
    let ops = OpsServer::start(
        "127.0.0.1:0",
        OpsOptions {
            telemetry: Some(telemetry.clone()),
            recorder: Some(recorder.clone()),
            drift: Some(drift.clone()),
            readiness: Some(Arc::new(move || {
                let (ready, detail) = probe_gw.readiness();
                Readiness { ready, detail }
            })),
            forecast: None,
            revise: None,
            fleet: None,
            max_traces: 64,
        },
    )
    .unwrap();
    println!("OPS_ADDR={}", ops.addr());

    // 5. Concurrent load with mid-traffic retrains. Each completed request
    //    is scored against its job's true usage — that feed is what moves
    //    the drift gauges.
    let started = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let gateway = &gateway;
                let scripts = &scripts;
                let (runtimes, reads, writes) = (&runtimes, &reads, &writes);
                s.spawn(move || {
                    for r in 0..REQUESTS_PER_CLIENT {
                        let idx = (c * 13 + r) % scripts.len();
                        let one = std::slice::from_ref(&scripts[idx]);
                        match gateway.predict_detailed(one, None) {
                            Ok(reply) => {
                                // The job "completes": truth arrives.
                                gateway.record_outcome(
                                    &reply.predictions[0],
                                    runtimes[idx],
                                    reads[idx],
                                    writes[idx],
                                );
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                std::thread::sleep(Duration::from_micros(200))
                            }
                            Err(e) => panic!("predict failed: {e}"),
                        }
                    }
                })
            })
            .collect();

        // Three completed-job windows land mid-traffic; each successful
        // retrain hot-swaps the replicas and marks the weights fresh.
        for window in 0..3 {
            let lo = (window * 32) % scripts.len();
            let hi = (lo + 32).min(scripts.len());
            gateway.retrain_async(TrainingBatch {
                scripts: scripts[lo..hi].to_vec(),
                runtime_minutes: runtimes[lo..hi].to_vec(),
                read_bytes: reads[lo..hi].to_vec(),
                write_bytes: writes[lo..hi].to_vec(),
            });
            std::thread::sleep(Duration::from_millis(10));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let deadline = Instant::now() + Duration::from_secs(30);
    while gateway.stats().retrains_pending.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    let stats = gateway.stats();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!("=== observe_demo ===");
    println!(
        "{total} requests from {CLIENTS} clients in {wall:.2} s  ->  {:.0} req/s  |  retrains: {} done, epoch {}",
        total as f64 / wall,
        stats.retrains_done.load(Ordering::SeqCst),
        gateway.epoch(),
    );

    // 6. One request, end to end: its own trace (admission → queue wait →
    //    fused stage) and the shared fused forward it rode, with per-layer
    //    timings. The `-> link` annotations are the fan-in edges.
    let spans = recorder.snapshot();
    if let Some(sample) = spans
        .iter()
        .rfind(|s| s.name == "fused" && !s.links.is_empty())
    {
        println!(
            "\n--- one request's span tree (trace {}) ---",
            sample.trace_id
        );
        print!("{}", render_trace_tree(&spans, sample.trace_id));
        let fused_trace = sample.links[0].trace_id;
        println!("--- the fused forward it joined (trace {fused_trace}) ---");
        print!("{}", render_trace_tree(&spans, fused_trace));
    }

    // 7. The drift readout an operator would alert on.
    println!("\n--- drift ---");
    println!("{}", drift.snapshot().render());

    // 8. The observe-specific metric surface.
    println!("--- prometheus (drift_* series) ---");
    for line in telemetry.prometheus().lines() {
        if line.contains("drift_") && !line.starts_with('#') {
            println!("{line}");
        }
    }

    if serve_seconds > 0 {
        println!("\nserving ops endpoint for {serve_seconds}s more (ctrl-c to stop) ...");
        std::thread::sleep(Duration::from_secs(serve_seconds));
    }
    ops.shutdown();
    gateway.shutdown();
}
