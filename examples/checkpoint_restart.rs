//! Checkpoint / warm-restart walkthrough: train a PRIONN model, persist it
//! with `Prionn::save`, restore it in a "new process" with `Prionn::load`,
//! and verify the restored predictor is bit-identical — then demonstrate
//! that a corrupted checkpoint is *rejected* (an `Err`, never a panic).
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use prionn::core::{Prionn, PrionnConfig};
use prionn::workload::{Trace, TraceConfig, TracePreset};
use std::path::PathBuf;

fn ckpt_path() -> PathBuf {
    std::env::temp_dir().join(format!("prionn-example-{}.ckpt", std::process::id()))
}

fn main() {
    // A small synthetic workload and a deliberately small model so the
    // example finishes in seconds.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 80));
    let jobs: Vec<_> = trace.executed_jobs().collect();
    let scripts: Vec<&str> = jobs.iter().map(|j| j.script.as_str()).collect();
    let runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime_minutes()).collect();
    let reads: Vec<f64> = jobs.iter().map(|j| j.bytes_read).collect();
    let writes: Vec<f64> = jobs.iter().map(|j| j.bytes_written).collect();

    let cfg = PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 64,
        io_bins: 24,
        epochs: 3,
        batch_size: 8,
        ..Default::default()
    };

    println!("training on {} completed jobs ...", scripts.len());
    let mut model = Prionn::new(cfg, &scripts).expect("build model");
    model
        .retrain(&scripts, &runtimes, &reads, &writes)
        .expect("train");
    let before = model.predict(&scripts[..5]).expect("predict");

    // ---- save ----------------------------------------------------------
    let path = ckpt_path();
    model.save(&path).expect("write checkpoint");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("checkpoint written: {} ({bytes} bytes)", path.display());

    // ---- drop all in-memory state, restore from disk -------------------
    drop(model);
    let mut restored = Prionn::load(&path).expect("read checkpoint");
    let after = restored.predict(&scripts[..5]).expect("predict restored");

    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert_eq!(
            (b.runtime_minutes, b.read_bytes, b.write_bytes),
            (a.runtime_minutes, a.read_bytes, a.write_bytes),
            "prediction {i} diverged after restart"
        );
        println!(
            "job {i}: runtime {:7.2} min, read {:9.3e} B, write {:9.3e} B  (identical)",
            a.runtime_minutes, a.read_bytes, a.write_bytes
        );
    }
    println!("restored predictions are bit-identical to the pre-restart model");

    // The restored model keeps learning — warm restart, not a frozen copy.
    restored
        .retrain(&scripts, &runtimes, &reads, &writes)
        .expect("retrain restored");
    println!(
        "restored model retrained: {} retrains total",
        restored.retrain_count()
    );

    // ---- corruption is detected, never a panic -------------------------
    let mut raw = std::fs::read(&path).expect("read bytes");
    let mid = raw.len() / 2;
    raw[mid] ^= 0xff;
    let bad_path = path.with_extension("corrupt");
    std::fs::write(&bad_path, &raw).expect("write corrupted copy");
    match Prionn::load(&bad_path) {
        Err(e) => println!("corrupted checkpoint rejected as expected: {e}"),
        Ok(_) => panic!("corrupted checkpoint must not load"),
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&bad_path);
    println!("done");
}
