//! The paper's phase 2 end-to-end: per-job predictions drive an IO-aware
//! scheduler simulation that forecasts system IO and IO bursts.
//!
//! ```text
//! cargo run --release --example io_aware_scheduling
//! ```

use prionn::core::{run_online_prionn, OnlineConfig, PrionnConfig};
use prionn::sched::{burst_metrics, io_timeline, predict_turnarounds, JobIoInterval, SimJob};
use prionn::workload::{stats, Trace, TraceConfig, TracePreset};
use std::collections::HashMap;

fn main() {
    // A 600-job Cab-like slice on a deliberately small simulated cluster so
    // the queue actually backs up (that is where turnaround prediction
    // matters).
    let mut trace_cfg = TraceConfig::preset(TracePreset::CabLike, 600);
    trace_cfg.n_users = 40;
    let trace = Trace::generate(&trace_cfg);

    // Per-job runtime + IO predictions under the online protocol.
    let online = OnlineConfig {
        train_window: 150,
        retrain_every: 80,
        min_history: 60,
        cold_start: false,
        telemetry: None,
        drift: None,
        prionn: PrionnConfig {
            base_width: 3,
            io_bins: 48,
            epochs: 6,
            batch_size: 8,
            ..Default::default()
        },
    };
    println!(
        "running PRIONN online over {} submissions ...",
        trace.jobs.len()
    );
    let preds = run_online_prionn(&trace.jobs, &online).expect("online protocol");
    let by_id: HashMap<u64, _> = preds.iter().map(|p| (p.job_id, *p)).collect();

    // Turnaround prediction by system snapshotting.
    let sim_jobs: Vec<SimJob> = trace
        .executed_jobs()
        .map(|j| SimJob {
            id: j.id,
            submit: j.submit_time,
            nodes: j.nodes,
            runtime: j.runtime_seconds.max(1),
            estimate: j.requested_seconds.max(1),
        })
        .collect();
    let predicted_runtime: HashMap<u64, u64> = preds
        .iter()
        .map(|p| (p.job_id, (p.runtime_minutes * 60.0).max(1.0) as u64))
        .collect();
    let nodes = 160;
    let tat = predict_turnarounds(nodes, &sim_jobs, &predicted_runtime);
    let acc: Vec<f64> = tat
        .iter()
        .map(|&(actual, pred)| prionn::core::relative_accuracy(actual as f64, pred as f64))
        .collect();
    println!(
        "turnaround prediction: mean accuracy {:.1}% over {} jobs",
        stats::mean(&acc) * 100.0,
        acc.len()
    );

    // System IO forecast: sum predicted bandwidths over predicted windows.
    let mut actual_iv = Vec::new();
    let mut predicted_iv = Vec::new();
    for j in trace.executed_jobs() {
        let p = by_id[&j.id];
        if !p.model_trained {
            continue;
        }
        let (start, end) = (j.submit_time, j.submit_time + j.runtime_seconds);
        actual_iv.push(JobIoInterval {
            start,
            end,
            bandwidth: j.read_bandwidth() + j.write_bandwidth(),
        });
        let secs = j.runtime_seconds.max(1) as f64;
        predicted_iv.push(JobIoInterval {
            start,
            end,
            bandwidth: (p.read_bytes + p.write_bytes) / secs,
        });
    }
    let horizon = prionn::sched::io::horizon_minutes(&actual_iv);
    let actual = io_timeline(&actual_iv, horizon);
    let predicted = io_timeline(&predicted_iv, horizon);

    println!("\nIO-burst forecast (threshold = mean + 1 sigma of actual system IO):");
    for window in [5usize, 15, 30, 60] {
        let m = burst_metrics(&actual, &predicted, window);
        println!(
            "  +/-{:>2} min window: sensitivity {:5.1}%  precision {:5.1}%  ({} actual bursts)",
            window / 2,
            m.sensitivity * 100.0,
            m.precision * 100.0,
            m.actual_bursts
        );
    }
}
