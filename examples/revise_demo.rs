//! Continuous in-flight re-prediction end to end: a bulk-plus-stragglers
//! trace replays through the cluster simulator while the revision engine
//! taps progress on a 60s cadence, blends each job's submission-time
//! prediction with its observed pace, wraps the result in split-conformal
//! `[lo, point, hi]` intervals calibrated on the drift monitor's outcome
//! window, and kills jobs whose calibrated lower bound proves they cannot
//! finish inside their requested walltime. The embedded ops endpoint
//! serves the `/revise` snapshot next to `/metrics`.
//!
//! ```text
//! cargo run --release --example revise_demo [-- --serve-seconds N]
//! ```
//!
//! Prints `OPS_ADDR=<ip:port>` as soon as the endpoint is up (CI curls
//! it), the first kill edge, hourly engine state, and the reclaimed
//! CPU-hours against the walltime-limit baseline. `--serve-seconds N`
//! keeps the endpoint alive for N extra seconds after the replay.

use prionn::core::ResourcePrediction;
use prionn::observe::{DriftHead, DriftMonitor, OpsOptions, OpsServer};
use prionn::revise::{JobTruth, ReviseConfig, ReviseEngine, TrackedJob};
use prionn::sched::{SimEngine, SimJob};
use prionn::telemetry::Telemetry;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Progress-tap cadence, seconds.
const CADENCE_SECONDS: u64 = 60;
/// Cluster size, nodes.
const NODES: u32 = 48;
/// Trace size, jobs.
const JOBS: usize = 300;

/// One trace job: ground truth, the (noisy) prediction served at
/// submission, and the user's padded walltime request.
#[derive(Clone, Copy)]
struct TraceJob {
    id: u64,
    submit: u64,
    nodes: u32,
    truth_seconds: u64,
    predicted_minutes: f64,
    requested_seconds: u64,
    io_truth: f64,
    io_predicted: f64,
}

impl TraceJob {
    /// Cannot finish inside its request: doomed to the walltime limit.
    fn hopeless(&self) -> bool {
        self.truth_seconds > self.requested_seconds
    }
}

/// The trace model's multiplicative runtime error: a well-calibrated bulk
/// (±23%) plus a 15% straggler tail running 3–8x past prediction — the
/// population the kill policy exists for.
fn runtime_error(rng: &mut ChaCha8Rng) -> f64 {
    if rng.gen_range(0.0..1.0) < 0.15 {
        rng.gen_range(3.0..8.0)
    } else {
        2.0f64.powf(rng.gen_range(-0.3..0.3))
    }
}

fn trace(rng: &mut ChaCha8Rng) -> Vec<TraceJob> {
    let mut jobs: Vec<TraceJob> = (0..JOBS)
        .map(|i| {
            let predicted_minutes = rng.gen_range(20.0..240.0f64);
            let truth_seconds = (predicted_minutes * 60.0 * runtime_error(rng)) as u64;
            let io_truth = rng.gen_range(1.0e9..5.0e10);
            let io_err = 2.0f64.powf(rng.gen_range(-0.25..0.25));
            TraceJob {
                id: i as u64 + 1,
                submit: rng.gen_range(0..7_200),
                nodes: rng.gen_range(1u32..8),
                truth_seconds,
                predicted_minutes,
                // Users pad their estimate by 50%.
                requested_seconds: (predicted_minutes * 60.0 * 1.5) as u64,
                io_truth,
                io_predicted: io_truth * io_err,
            }
        })
        .collect();
    jobs.sort_by_key(|j| j.submit);
    jobs
}

fn main() {
    let serve_seconds: u64 = std::env::args()
        .skip_while(|a| a != "--serve-seconds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let mut rng = ChaCha8Rng::seed_from_u64(0x7e15_e000);
    let jobs = trace(&mut rng);
    let hopeless = jobs.iter().filter(|j| j.hopeless()).count();
    let baseline_wasted: f64 = jobs
        .iter()
        .filter(|j| j.hopeless())
        .map(|j| j.nodes as f64 * j.requested_seconds as f64 / 3600.0)
        .sum();
    println!(
        "=== revise_demo ===\n{JOBS} jobs on {NODES} nodes, {hopeless} hopeless \
         (would burn {baseline_wasted:.1} CPU-hours at the walltime limit)"
    );

    // 1. The drift monitor is the calibration source: warm it with
    //    steady-state outcomes from the same bulk-plus-stragglers model.
    let telemetry = Telemetry::new();
    let drift = DriftMonitor::with_defaults(&telemetry);
    for _ in 0..256 {
        let predicted = rng.gen_range(20.0..240.0f64);
        let truth = predicted * runtime_error(&mut rng);
        drift.record(DriftHead::Runtime, truth, predicted);
    }

    // 2. The revision engine, ticking on a 60s progress cadence.
    let engine = ReviseEngine::new(
        &telemetry,
        ReviseConfig {
            cadence_seconds: CADENCE_SECONDS,
            ..ReviseConfig::default()
        },
    );
    engine.attach_drift(&drift);

    // 3. The ops endpoint: `/revise` serves the engine snapshot.
    let ops = OpsServer::start(
        "127.0.0.1:0",
        OpsOptions {
            telemetry: Some(telemetry.clone()),
            revise: Some(engine.ops_probe()),
            ..OpsOptions::default()
        },
    )
    .unwrap();
    println!("OPS_ADDR={}", ops.addr());

    // 4. Replay: submit jobs as they arrive, tick the engine each cadence,
    //    let the kill policy reclaim the stragglers' doomed allocations.
    let mut sim = SimEngine::new(NODES);
    let mut next = 0usize;
    let mut clock = 0u64;
    let mut first_kill = true;
    let mut next_report_hour = 1u64;
    loop {
        while next < jobs.len() && jobs[next].submit <= clock {
            let j = &jobs[next];
            engine.track(TrackedJob {
                id: j.id,
                prediction: ResourcePrediction {
                    runtime_minutes: j.predicted_minutes,
                    read_bytes: j.io_predicted * 0.6,
                    write_bytes: j.io_predicted * 0.4,
                },
                requested_seconds: j.requested_seconds,
                truth: JobTruth {
                    runtime_seconds: j.truth_seconds,
                    read_bytes: j.io_truth * 0.6,
                    write_bytes: j.io_truth * 0.4,
                },
            });
            sim.submit(SimJob {
                id: j.id,
                submit: j.submit,
                nodes: j.nodes,
                // The walltime limit would stop the job anyway; the kill
                // policy's value is stopping it *earlier*.
                runtime: j.truth_seconds.min(j.requested_seconds),
                estimate: j.requested_seconds,
            });
            next += 1;
        }
        let report = engine.tick(&mut sim);
        for rev in report.revisions.iter().filter(|r| r.killed) {
            if first_kill {
                first_kill = false;
                println!(
                    "first kill: job {} at {:.0} min elapsed — revised interval \
                     [{:.0}, {:.0}] min lower-bounds past its walltime request",
                    rev.job_id,
                    rev.elapsed_seconds / 60.0,
                    rev.runtime_interval.lo,
                    rev.runtime_interval.hi,
                );
            }
        }
        if next >= jobs.len()
            && sim.running_info().next().is_none()
            && sim.queued_jobs().next().is_none()
        {
            break;
        }
        clock = clock.max(sim.now()) + CADENCE_SECONDS;
        if clock >= next_report_hour * 3_600 {
            println!("t={:>2}h {}", next_report_hour, engine.snapshot().render());
            next_report_hour = clock / 3_600 + 1;
        }
        sim.advance_to(clock);
    }
    let snap = engine.snapshot();
    println!("final: {}", snap.render());
    println!(
        "kill policy reclaimed {:.1} of {:.1} doomed CPU-hours ({} kills)",
        snap.cpu_hours_saved, baseline_wasted, snap.kills_total
    );

    // 5. The revision-specific metric surface.
    println!("\n--- prometheus (revise_* series) ---");
    for line in telemetry.prometheus().lines() {
        if line.starts_with("revise_") {
            println!("{line}");
        }
    }
    println!("REVISE_DEMO_OK");

    if serve_seconds > 0 {
        println!("\nserving ops endpoint for {serve_seconds}s more (ctrl-c to stop) ...");
        std::thread::sleep(std::time::Duration::from_secs(serve_seconds));
    }
    ops.shutdown();
}
