//! Visualise the paper's data mapping: one job script rendered through all
//! four character transforms, plus the binary image as ASCII art.
//!
//! ```text
//! cargo run --example script_mapping
//! ```

use prionn::text::{
    map_script_2d, BinaryTransform, CharTransform, OneHotTransform, SimpleTransform,
    Word2vecConfig, Word2vecTransform,
};

const SCRIPT: &str = "#!/bin/bash
#SBATCH -J lammps_42
#SBATCH -N 16
#SBATCH -n 256
#SBATCH -t 04:00:00
#SBATCH -A phys_acct1
module load intel mvapich2
srun -n 256 ./lmp_mpi -in in.melt_42 -var scale 8.5
gzip -f log.lammps
";

fn main() {
    println!("input script:\n{SCRIPT}");

    let w2v = Word2vecTransform::train(&[SCRIPT], &Word2vecConfig::default());
    let transforms: Vec<(&str, Box<dyn CharTransform>)> = vec![
        ("binary", Box::new(BinaryTransform)),
        ("simple", Box::new(SimpleTransform)),
        ("one-hot", Box::new(OneHotTransform)),
        ("word2vec", Box::new(w2v)),
    ];

    println!(
        "{:<10} {:>9} {:>22}",
        "transform", "channels", "tensor shape"
    );
    for (name, t) in &transforms {
        let img = map_script_2d(SCRIPT, t.as_ref(), 64, 64).expect("mapping");
        println!(
            "{name:<10} {:>9} {:>22}",
            t.dim(),
            format!("{:?}", img.dims())
        );
    }

    // The binary mapping as ASCII art (cropped to the script's extent).
    let img = map_script_2d(SCRIPT, &BinaryTransform, 64, 64).expect("mapping");
    println!("\nbinary image (top-left 10x60 of the 64x64 grid; '#' = non-space):");
    for row in 0..10 {
        let line: String = (0..60)
            .map(|col| {
                if img.get(&[0, row, col]).unwrap() > 0.5 {
                    '#'
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {line}");
    }
}
