//! Quickstart: train PRIONN on a small synthetic trace and predict the
//! runtime and IO of new job scripts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prionn::core::{Prionn, PrionnConfig};
use prionn::workload::{Trace, TraceConfig, TracePreset};

fn main() {
    // 1. A workload: 400 Cab-like jobs (synthetic stand-in for the paper's
    //    LLNL trace). Each job carries its script and true resource usage.
    let mut trace_cfg = TraceConfig::preset(TracePreset::CabLike, 400);
    trace_cfg.n_users = 40;
    let trace = Trace::generate(&trace_cfg);
    let jobs: Vec<_> = trace.executed_jobs().collect();
    let (history, incoming) = jobs.split_at(jobs.len() - 5);
    println!(
        "trace: {} executed jobs, {} unique scripts",
        jobs.len(),
        trace.unique_scripts()
    );

    // 2. PRIONN: whole scripts -> 64x64 word2vec image -> 2D-CNN heads.
    //    (A narrow CNN so the example finishes in seconds on one core.)
    let cfg = PrionnConfig {
        base_width: 3,
        runtime_bins: 960,
        io_bins: 48,
        epochs: 6,
        batch_size: 8,
        ..Default::default()
    };
    let scripts: Vec<&str> = history.iter().map(|j| j.script.as_str()).collect();
    let mut model = Prionn::new(cfg, &scripts).expect("model construction");
    println!("\ntraining on {} completed jobs ...", scripts.len());
    let runtimes: Vec<f64> = history.iter().map(|j| j.runtime_minutes()).collect();
    let reads: Vec<f64> = history.iter().map(|j| j.bytes_read).collect();
    let writes: Vec<f64> = history.iter().map(|j| j.bytes_written).collect();
    model
        .retrain(&scripts, &runtimes, &reads, &writes)
        .expect("training");

    // 3. Predict resources for newly submitted scripts.
    println!(
        "\n{:<14} {:>12} {:>12} {:>14} {:>14}",
        "job", "true(min)", "pred(min)", "true read(B)", "pred read(B)"
    );
    let new_scripts: Vec<&str> = incoming.iter().map(|j| j.script.as_str()).collect();
    let preds = model.predict(&new_scripts).expect("prediction");
    for (job, pred) in incoming.iter().zip(&preds) {
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>14.3e} {:>14.3e}",
            job.app,
            job.runtime_minutes(),
            pred.runtime_minutes,
            job.bytes_read,
            pred.read_bytes,
        );
    }
}
