//! Cluster-scale IO burst forecasting end to end: a synthetic workload's
//! per-job predicted IO intervals stream through the incremental
//! aggregator as jobs start and finish, the live aggregate feeds the
//! forecaster family, edge-triggered pre-burst alerts fire ahead of the
//! bursts, and the embedded ops endpoint serves the `/forecast` snapshot
//! next to `/metrics`.
//!
//! ```text
//! cargo run --release --example forecast_demo [-- --serve-seconds N]
//! ```
//!
//! Prints `OPS_ADDR=<ip:port>` as soon as the endpoint is up (CI curls
//! it), the live walk's alert edges, and the paper's Fig. 10-style burst
//! sensitivity/precision table for EWMA, Holt, and seasonal-naive across
//! the standard ±window sweep. `--serve-seconds N` keeps the endpoint
//! alive for N extra seconds after the walk.

use prionn::forecast::{
    evaluate, AlertTransition, Ewma, ForecastConfig, ForecastEngine, Forecaster, Holt,
    SeasonalNaive,
};
use prionn::observe::{OpsOptions, OpsServer};
use prionn::sched::{horizon_minutes, io_timeline, JobIoInterval};
use prionn::telemetry::Telemetry;
use prionn::workload::{Trace, TraceConfig, TracePreset};

/// The standard burst window sweep (minutes), as in Figs 13/15.
const WINDOWS: [usize; 6] = [5, 10, 20, 30, 45, 60];
/// Forecast lead times swept in the table (minutes).
const HORIZONS: [usize; 3] = [5, 10, 30];
/// Lead time of the live engine walk (minutes).
const LEAD_MINUTES: u64 = 10;

fn main() {
    let serve_seconds: u64 = std::env::args()
        .skip_while(|a| a != "--serve-seconds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    // 1. A synthetic Cab-like workload. Each executed job contributes one
    //    predicted IO interval: constant bandwidth across its runtime —
    //    exactly the shape `sched::io_timeline` aggregates in batch.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 400));
    let intervals: Vec<JobIoInterval> = trace
        .jobs
        .iter()
        .filter(|j| !j.cancelled)
        .map(|j| JobIoInterval {
            start: j.submit_time,
            end: j.submit_time + j.runtime_seconds,
            bandwidth: j.read_bandwidth() + j.write_bandwidth(),
        })
        .collect();
    let horizon = horizon_minutes(&intervals);
    println!(
        "=== forecast_demo ===\n{} jobs over a {horizon}-minute horizon",
        intervals.len()
    );

    // 2. The live engine, fed event-driven: each job's interval is added
    //    the minute it starts and withdrawn the minute it ends, the clock
    //    ticks once per minute, and alert edges are collected.
    let telemetry = Telemetry::new();
    let engine = ForecastEngine::new(
        &telemetry,
        ForecastConfig {
            horizon_minutes: horizon,
            lead_minutes: LEAD_MINUTES,
            ..ForecastConfig::default()
        },
    );

    // 3. The ops endpoint: `/forecast` serves the engine snapshot.
    let ops = OpsServer::start(
        "127.0.0.1:0",
        OpsOptions {
            telemetry: Some(telemetry.clone()),
            forecast: Some(engine.ops_probe()),
            ..OpsOptions::default()
        },
    )
    .unwrap();
    println!("OPS_ADDR={}", ops.addr());

    let mut starts: Vec<(u64, usize)> = intervals
        .iter()
        .enumerate()
        .map(|(i, iv)| (iv.start / 60, i))
        .collect();
    let mut ends: Vec<(u64, usize)> = intervals
        .iter()
        .enumerate()
        .map(|(i, iv)| (iv.end / 60 + 1, i))
        .collect();
    starts.sort_unstable();
    ends.sort_unstable();
    let (mut si, mut ei) = (0usize, 0usize);
    let mut raised = 0usize;
    let mut cleared = 0usize;
    let mut first_alert: Option<u64> = None;
    for minute in 0..horizon as u64 {
        while si < starts.len() && starts[si].0 <= minute {
            engine.job_started(&intervals[starts[si].1]);
            si += 1;
        }
        while ei < ends.len() && ends[ei].0 <= minute {
            engine.job_finished(&intervals[ends[ei].1]);
            ei += 1;
        }
        let tick = engine.tick();
        match tick.transition {
            Some(AlertTransition::Raised) => {
                raised += 1;
                if first_alert.is_none() {
                    first_alert = Some(minute);
                    println!("first alert edge: {}", engine.snapshot().render());
                }
            }
            Some(AlertTransition::Cleared) => cleared += 1,
            None => {}
        }
    }
    println!("live walk: {raised} burst alerts raised, {cleared} cleared over {horizon} minutes");
    println!("final state: {}", engine.snapshot().render());

    // 4. The Fig. 10-style table: each forecaster's h-minute-ahead series
    //    scored against the actual aggregate with the paper's burst
    //    sensitivity/precision at the standard ±window sweep.
    let actual = io_timeline(&intervals, horizon);
    let mut forecasters: Vec<Box<dyn Forecaster>> = vec![
        Box::new(Ewma::new(0.5)),
        Box::new(Holt::new(0.5, 0.3)),
        Box::new(SeasonalNaive::new(1440)),
    ];
    println!("\n--- burst forecast quality (sensitivity / precision by ±window) ---");
    print!("{:<16}{:>8}", "forecaster", "lead");
    for w in WINDOWS {
        print!("{:>12}", format!("±{w}m"));
    }
    println!();
    for f in forecasters.iter_mut() {
        for h in HORIZONS {
            let rows = evaluate(f.as_mut(), &actual, &[h], &WINDOWS);
            print!("{:<16}{:>7}m", rows[0].forecaster, h);
            for row in &rows {
                print!(
                    "{:>12}",
                    format!(
                        "{:.2}/{:.2}",
                        row.metrics.sensitivity, row.metrics.precision
                    )
                );
            }
            println!();
        }
    }

    // 5. The forecast-specific metric surface.
    println!("\n--- prometheus (forecast_* series) ---");
    for line in telemetry.prometheus().lines() {
        if line.starts_with("forecast_") {
            println!("{line}");
        }
    }
    println!("FORECAST_DEMO_OK");

    if serve_seconds > 0 {
        println!("\nserving ops endpoint for {serve_seconds}s more (ctrl-c to stop) ...");
        std::thread::sleep(std::time::Duration::from_secs(serve_seconds));
    }
    ops.shutdown();
}
