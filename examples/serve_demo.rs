//! The serving gateway end to end: a trained model behind
//! [`prionn::serve::Gateway`], eight client threads submitting jobs one at
//! a time, and background retrains hot-swapping the weights mid-traffic.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! Prints the sustained throughput, the batch-fusion profile, the weight
//! epochs the clients observed, and the gateway's Prometheus metric
//! surface (`docs/SERVING.md` walks through the architecture).

use prionn::core::{Prionn, PrionnConfig, TrainingBatch};
use prionn::serve::{Gateway, GatewayConfig, ServeError};
use prionn::telemetry::Telemetry;
use prionn::workload::{Trace, TraceConfig, TracePreset};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 40;

fn main() {
    // 1. A synthetic workload and an initially-trained model.
    let trace = Trace::generate(&TraceConfig::preset(TracePreset::CabLike, 160));
    let jobs: Vec<_> = trace.executed_jobs().collect();
    let scripts: Vec<String> = jobs.iter().map(|j| j.script.clone()).collect();
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime_minutes()).collect();

    let cfg = PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 64,
        predict_io: false,
        epochs: 1,
        batch_size: 32,
        ..Default::default()
    };
    let mut model = Prionn::new(cfg, &refs).unwrap();
    model.retrain(&refs, &runtimes, &[], &[]).unwrap();

    // 2. The gateway: one replica per "socket" (two here), micro-batching
    //    up to 8 scripts per fused forward pass.
    let telemetry = Telemetry::default();
    let gateway = Gateway::spawn(
        model,
        GatewayConfig {
            replicas: 2,
            max_batch: CLIENTS,
            max_wait: Duration::from_micros(500),
            queue_cap: 64,
            telemetry: Some(telemetry.clone()),
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    // 3. Eight clients hammer the gateway with single-job requests while
    //    the main thread feeds completed-job batches to the background
    //    trainer; each successful retrain hot-swaps every replica.
    let started = Instant::now();
    let epochs_seen: BTreeSet<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let gateway = &gateway;
                let scripts = &scripts;
                s.spawn(move || {
                    let mut seen = BTreeSet::new();
                    for r in 0..REQUESTS_PER_CLIENT {
                        let idx = (c * 13 + r) % scripts.len();
                        let one = std::slice::from_ref(&scripts[idx]);
                        match gateway.predict_detailed(one, None) {
                            Ok(reply) => {
                                seen.insert(reply.epoch);
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                // Real clients back off; the demo just retries.
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("predict failed: {e}"),
                        }
                    }
                    seen
                })
            })
            .collect();

        // Completed jobs arrive in windows of 32 (the paper retrains on
        // recent history); three windows land mid-traffic.
        for window in 0..3 {
            let lo = (window * 32) % scripts.len();
            let hi = (lo + 32).min(scripts.len());
            gateway.retrain_async(TrainingBatch {
                scripts: scripts[lo..hi].to_vec(),
                runtime_minutes: runtimes[lo..hi].to_vec(),
                read_bytes: Vec::new(),
                write_bytes: Vec::new(),
            });
            std::thread::sleep(Duration::from_millis(10));
        }

        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    // Let the trainer finish any queued window so the final stats settle.
    let deadline = Instant::now() + Duration::from_secs(30);
    while gateway.stats().retrains_pending.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    let stats = gateway.stats();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let batches = stats.batches_served.load(Ordering::SeqCst);
    println!("=== serve_demo ===");
    println!(
        "{total} requests from {CLIENTS} clients in {:.2} s  ->  {:.0} req/s",
        wall,
        total as f64 / wall
    );
    println!(
        "fused into {batches} forward passes ({:.1} scripts/batch mean)",
        stats.scripts_predicted.load(Ordering::SeqCst) as f64 / batches.max(1) as f64
    );
    println!(
        "retrains: {} done, {} dropped (latest-wins)  |  swaps: {} published, {} applied",
        stats.retrains_done.load(Ordering::SeqCst),
        stats.retrains_dropped.load(Ordering::SeqCst),
        stats.swaps_published.load(Ordering::SeqCst),
        stats.swaps_applied.load(Ordering::SeqCst),
    );
    println!(
        "weight epochs observed by clients: {:?} (latest published: {})",
        epochs_seen,
        gateway.epoch()
    );
    if let Some(err) = gateway.last_error() {
        println!("last background error: {err}");
    }

    // 4. The metric surface an operator would scrape.
    println!("\n--- prometheus (serve_* series) ---");
    for line in telemetry.prometheus().lines() {
        if line.contains("serve_") {
            println!("{line}");
        }
    }

    gateway.shutdown();
}
