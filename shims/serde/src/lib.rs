//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and record
//! types but all actual JSON IO goes through explicit conversions in
//! `serde_json` (in-tree shim) or the binary `prionn-store` format, so the
//! traits here are empty markers and the derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; see crate docs.
pub trait Serialize {}

/// Marker trait; see crate docs.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
