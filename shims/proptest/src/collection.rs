//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Sizes accepted by the collection strategies: an exact length or a range.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut ChaCha8Rng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut ChaCha8Rng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut ChaCha8Rng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

pub struct BTreeSetStrategy<S, L> {
    element: S,
    size: L,
}

impl<S, L> Strategy for BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: SizeRange,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut ChaCha8Rng) -> BTreeSet<S::Value> {
        let target = self.size.sample_len(rng);
        let mut set = BTreeSet::new();
        // Inserting duplicates shrinks the set; retry a bounded number of
        // times to reach the requested size like upstream does.
        let mut attempts = 0;
        while set.len() < target && attempts < target * 32 + 64 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

/// `proptest::collection::btree_set(element, size)`.
pub fn btree_set<S, L>(element: S, size: L) -> BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: SizeRange,
{
    BTreeSetStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = case_rng("vec");
        let exact = vec(0.0f32..1.0, 12usize).sample(&mut rng);
        assert_eq!(exact.len(), 12);
        for _ in 0..50 {
            let ranged = vec(0u64..100, 1usize..20).sample(&mut rng);
            assert!((1..20).contains(&ranged.len()));
        }
    }

    #[test]
    fn btree_set_hits_target_size() {
        let mut rng = case_rng("btree");
        for _ in 0..50 {
            let s = btree_set(0usize..500, 1usize..12).sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 12);
            assert!(s.iter().all(|&v| v < 500));
        }
    }
}
