//! Runner plumbing for the `proptest!` macro.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Subset of upstream's config the in-tree tests set.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this sample out; redraw.
    Reject(&'static str),
    /// `prop_assert*` failed.
    Fail(String),
}

/// Deterministic per-test RNG: seeded from the test name so every run
/// explores the same cases.
pub fn case_rng(test_name: &str) -> ChaCha8Rng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h)
}
