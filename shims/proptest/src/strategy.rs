//! Strategies: deterministic samplers with a `prop_map` combinator.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// A source of random values of one type. Upstream proptest separates
/// strategies from value trees (for shrinking); this shim samples directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut ChaCha8Rng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Pattern strategies: `"[<lo>-<hi>]{m,n}"` character classes (the only
/// regex shape the in-tree tests use). Anything else panics loudly at
/// sample time rather than silently generating the wrong distribution.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut ChaCha8Rng) -> String {
        let (lo, hi, min_len, max_len) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported proptest string pattern: {self:?}"));
        let len = rng.gen_range(min_len..=max_len);
        (0..len)
            .map(|_| rng.gen_range(lo as u32..=hi as u32))
            .filter_map(char::from_u32)
            .collect()
    }
}

fn parse_char_class_pattern(pattern: &str) -> Option<(char, char, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let mut chars = rest.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    let rest = chars.as_str().strip_prefix(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min_s, max_s) = counts.split_once(',')?;
    let min_len = min_s.trim().parse().ok()?;
    let max_len = max_s.trim().parse().ok()?;
    if lo > hi || min_len > max_len {
        return None;
    }
    Some((lo, hi, min_len, max_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = case_rng("ranges");
        for _ in 0..200 {
            let v = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_sampling() {
        let mut rng = case_rng("strings");
        for _ in 0..100 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ -~]{0,64}".sample(&mut rng);
            assert!(t.len() <= 64);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn prop_map_and_tuples() {
        let mut rng = case_rng("combos");
        let strat =
            (0u64..10, 0.5f64..1.0, 1usize..4).prop_map(|(a, b, c)| a as f64 * b + c as f64);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v.is_finite());
        }
    }
}
