//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use: range strategies, tuples, `collection::vec`/`btree_set`,
//! simple character-class string patterns, `prop_map`, the `proptest!`
//! macro with `#![proptest_config]`, and `prop_assert*`/`prop_assume!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! values but is not minimized) and string strategies support exactly the
//! `[<lo>-<hi>]{m,n}` single-range character-class pattern used in-tree.
//! Cases are generated from a ChaCha stream seeded by the test name, so
//! runs are deterministic.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// One deterministic test harness: runs `cases` samples of a body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::case_rng(stringify!($name));
                let mut case: u32 = 0;
                let mut rejects: u32 = 0;
                while case < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => { case += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            if rejects > config.cases * 64 {
                                panic!("proptest: too many prop_assume! rejections");
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} of {} failed: {}", case, stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
