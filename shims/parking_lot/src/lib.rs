//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns a
//! guard directly (no `Result`), and a poisoned std lock is recovered rather
//! than propagated, mirroring parking_lot's no-poisoning semantics.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
