//! Offline stand-in for the `crossbeam` crate: the `channel` module only.
//!
//! Implements MPMC bounded/unbounded channels over `Mutex<VecDeque>` +
//! `Condvar`. Semantics mirror crossbeam-channel where the workspace
//! depends on them: FIFO order, cloneable senders *and* receivers,
//! disconnect on last-handle drop, non-blocking `try_send`/`try_recv`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    /// Channel with capacity `cap`; `send` blocks and `try_send` fails with
    /// `Full` when the queue holds `cap` messages. `cap == 0` is treated as
    /// capacity 1 (this shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_roundtrip() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn blocking_send_unblocks_after_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap();
        }
    }
}
