//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`), [`SeedableRng`], and
//! [`seq::SliceRandom::shuffle`]. Distribution quality matches what the
//! callers need (uniform ints/floats); it does not bit-match upstream
//! `rand`, but every generator in the workspace is seeded explicitly so
//! determinism is preserved within this tree.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 32/64-bit words plus byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (the workspace always seeds explicitly).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed with SplitMix64, like
    /// `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    //! Placeholder module mirroring `rand::rngs` (nothing needed from it).
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so low bits vary too
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = self.0;
            x ^ (x >> 33)
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn int_ranges_respected() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(2u32..=5);
            assert!((2..=5).contains(&w));
            let n = r.gen_range(-4i32..4);
            assert!((-4..4).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Counter(1);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
