//! Recursive-descent JSON parser for the shim's [`Value`] type.

use super::{Error, Map, Number, Result, Value};

pub fn from_str(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Error::new(msg, line, column)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected '{word}'")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require a paired \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.error("invalid utf-8"))?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.error("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Number(Number::Float(v))),
            _ => Err(self.error("invalid number")),
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}
