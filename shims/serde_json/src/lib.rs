//! Offline stand-in for `serde_json`.
//!
//! Unlike the marker-only `serde` shim, this is a functional JSON library:
//! [`Value`]/[`Map`]/[`Number`], the [`json!`] macro (object literals,
//! nested objects, arrays, expressions), a compact and a pretty printer,
//! and a recursive-descent [`from_str`] parser. It covers everything the
//! experiment harness and the trace round-trip need, minus serde's generic
//! `Serialize`/`Deserialize` dispatch.

use std::collections::BTreeMap;
use std::fmt;

mod parse;

pub use parse::from_str;

/// A JSON number: integers keep exact 64-bit representations so ids and
/// timestamps survive a round-trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

/// String-keyed object map. Like upstream serde_json's default, keys are
/// ordered (BTreeMap), so output is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.values()
    }
}

/// Any JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Error for parse failures (and, for API parity, serialization — which in
/// this shim never fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }

    /// Build an application-level error (mirrors `serde::de::Error::custom`).
    pub fn custom(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.msg, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // `{}` on f64 prints the shortest decimal that round-trips;
                // force a fractional part so the value re-parses as a float.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // Upstream errors on non-finite floats; printing null keeps
                // the output valid JSON instead.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push('}');
        }
    }
}

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Pretty serialization with 2-space indent.
pub fn to_string_pretty(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

/// Build a [`Value`] from a JSON-ish literal: `null`, `[..]` arrays, `{..}`
/// objects with literal string keys, or any expression convertible via
/// `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let array: ::std::vec::Vec<$crate::Value> = {
            let mut array = ::std::vec::Vec::new();
            $crate::json_array_items!(array; $($tt)*);
            array
        };
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        let mut map = $crate::Map::new();
        $crate::json_object_items!(map; $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_items {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_items!($map; $($rest)*);
    };
    ($map:ident; $key:literal : { $($inner:tt)* }) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_items!($map; $($rest)*);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ]) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
    };
    ($map:ident; $key:literal : null , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_items!($map; $($rest)*);
    };
    ($map:ident; $key:literal : null) => {
        $map.insert($key.to_string(), $crate::Value::Null);
    };
    ($map:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::from($value));
        $crate::json_object_items!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::Value::from($value));
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ($array:ident;) => {};
    ($array:ident; { $($inner:tt)* } , $($rest:tt)*) => {
        $array.push($crate::json!({ $($inner)* }));
        $crate::json_array_items!($array; $($rest)*);
    };
    ($array:ident; { $($inner:tt)* }) => {
        $array.push($crate::json!({ $($inner)* }));
    };
    ($array:ident; [ $($inner:tt)* ] , $($rest:tt)*) => {
        $array.push($crate::json!([ $($inner)* ]));
        $crate::json_array_items!($array; $($rest)*);
    };
    ($array:ident; [ $($inner:tt)* ]) => {
        $array.push($crate::json!([ $($inner)* ]));
    };
    ($array:ident; null , $($rest:tt)*) => {
        $array.push($crate::Value::Null);
        $crate::json_array_items!($array; $($rest)*);
    };
    ($array:ident; null) => {
        $array.push($crate::Value::Null);
    };
    ($array:ident; $value:expr , $($rest:tt)*) => {
        $array.push($crate::Value::from($value));
        $crate::json_array_items!($array; $($rest)*);
    };
    ($array:ident; $value:expr) => {
        $array.push($crate::Value::from($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1,
            "b": 2.5,
            "nested": {"x": "hi", "deep": {"y": true}},
            "arr": [1, 2, 3],
            "none": null,
        });
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("nested").unwrap().get("x").unwrap().as_str(),
            Some("hi")
        );
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("none").unwrap().is_null());
    }

    #[test]
    fn compact_roundtrip() {
        let v = json!({
            "id": 18446744073709551615u64,
            "neg": -42,
            "f": 1.5,
            "s": "line\nbreak \"q\"",
            "list": [1.0, 2.0],
        });
        let s = to_string(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"outer": {"inner": [1, 2]}, "k": "v"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn float_without_fraction_stays_float() {
        let v = json!(3.0f64);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(from_str(&s).unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn parse_errors_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "{}extra",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }
}
