//! No-op derive macros standing in for `serde_derive`.
//!
//! Nothing in the workspace serializes through serde's generic machinery
//! (the only JSON path goes through the in-tree `serde_json` Value type and
//! hand-written conversions), so `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` attributes only need to be *accepted*, not expanded.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
