//! Offline stand-in for `rand_chacha` carrying a genuine ChaCha8 block
//! function (8 rounds, RFC 7539 state layout, 64-bit block counter).
//!
//! Beyond `RngCore`/`SeedableRng` this exposes the same stream-position
//! accessors as upstream (`get_seed`, `get_word_pos`, `set_word_pos`),
//! which the checkpointing subsystem uses to snapshot and resume a
//! generator mid-stream.

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: u64 = 16;

/// ChaCha with 8 rounds: fast, and statistically strong for simulation use.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    /// Index of the block the buffer currently holds.
    block: u64,
    /// Next word to hand out from `buf` (0..=16; 16 means "refill needed").
    word_idx: usize,
    buf: [u32; 16],
}

impl ChaCha8Rng {
    /// The 32-byte key this generator was created from.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    /// Absolute stream position in 32-bit words.
    pub fn get_word_pos(&self) -> u128 {
        self.block as u128 * WORDS_PER_BLOCK as u128 + self.word_idx as u128
    }

    /// Seek to an absolute stream position in 32-bit words.
    pub fn set_word_pos(&mut self, pos: u128) {
        self.block = (pos / WORDS_PER_BLOCK as u128) as u64;
        self.word_idx = (pos % WORDS_PER_BLOCK as u128) as usize;
        self.refill();
    }

    fn refill(&mut self) {
        self.buf = chacha8_block(&self.seed, self.block);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut rng = ChaCha8Rng {
            seed,
            block: 0,
            word_idx: 0,
            buf: [0; 16],
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx == WORDS_PER_BLOCK as usize {
            self.block = self.block.wrapping_add(1);
            self.word_idx = 0;
            self.refill();
        }
        let w = self.buf[self.word_idx];
        self.word_idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha8_block(seed: &[u8; 32], block: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for (i, chunk) in seed.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
    }
    state[12] = block as u32;
    state[13] = (block >> 32) as u32;
    state[14] = 0;
    state[15] = 0;

    let mut work = state;
    for _ in 0..4 {
        // 4 double rounds = 8 rounds
        quarter_round(&mut work, 0, 4, 8, 12);
        quarter_round(&mut work, 1, 5, 9, 13);
        quarter_round(&mut work, 2, 6, 10, 14);
        quarter_round(&mut work, 3, 7, 11, 15);
        quarter_round(&mut work, 0, 5, 10, 15);
        quarter_round(&mut work, 1, 6, 11, 12);
        quarter_round(&mut work, 2, 7, 8, 13);
        quarter_round(&mut work, 3, 4, 9, 14);
    }
    for (w, s) in work.iter_mut().zip(&state) {
        *w = w.wrapping_add(*s);
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn word_pos_roundtrip_resumes_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..37 {
            a.next_u32();
        }
        let pos = a.get_word_pos();
        let tail: Vec<u32> = (0..50).map(|_| a.next_u32()).collect();

        let mut b = ChaCha8Rng::from_seed(a.get_seed());
        b.set_word_pos(pos);
        let tail2: Vec<u32> = (0..50).map(|_| b.next_u32()).collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn crosses_block_boundaries() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(r.next_u32());
        }
        assert!(seen.len() > 60, "stream should not repeat across blocks");
    }

    #[test]
    fn float_sampling_compiles_through_rand_traits() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let n = r.gen_range(0usize..10);
        assert!(n < 10);
    }
}
