//! Offline stand-in for `rayon` covering the workspace's usage:
//! `par_iter()` on slices, `into_par_iter()` on ranges and vectors,
//! `par_chunks_mut()`, plus `enumerate`/`map`/`for_each`/`collect`
//! (collecting into both `Vec<T>` and `Result<Vec<T>, E>`).
//!
//! Work is genuinely parallel: items are split into contiguous chunks and
//! fanned out over `std::thread::scope` threads (one per available core),
//! preserving input order in the collected output. There is no work
//! stealing, which is fine for the near-uniform batch workloads here.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSliceMut,
    };
}

fn n_threads(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Run `f` over `items` on multiple threads, preserving order.
fn parallel_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = n_threads(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);

    // Carve the input into owned per-thread chunks up front.
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut start = 0;
    while !rest.is_empty() {
        let take = chunk.min(rest.len());
        let tail = rest.split_off(take);
        chunks.push((start, rest));
        start += take;
        rest = tail;
    }

    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(offset, part)| {
                scope.spawn(move || (offset, part.into_iter().map(f).collect::<Vec<U>>()))
            })
            .collect();
        for handle in handles {
            let (offset, vals) = handle.join().expect("rayon shim worker panicked");
            for (i, v) in vals.into_iter().enumerate() {
                out[offset + i] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("rayon shim lost an item"))
        .collect()
}

/// Targets of `ParallelIterator::collect`.
pub trait FromParallelIterator<U>: Sized {
    fn from_ordered_vec(items: Vec<U>) -> Self;
}

impl<U> FromParallelIterator<U> for Vec<U> {
    fn from_ordered_vec(items: Vec<U>) -> Self {
        items
    }
}

impl<U, E> FromParallelIterator<Result<U, E>> for Result<Vec<U>, E> {
    fn from_ordered_vec(items: Vec<Result<U, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// An in-memory parallel iterator: a materialized list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Everything chains through these inherent-style trait methods.
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn into_items(self) -> Vec<Self::Item>;

    fn map<U, F>(self, f: F) -> ParMap<Self::Item, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        ParMap {
            items: self.into_items(),
            f,
        }
    }

    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        parallel_map_vec(self.into_items(), f);
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_vec(self.into_items())
    }
}

/// Marker mirroring rayon's indexed iterators (ordering is always preserved
/// in this shim, so it adds nothing beyond the name).
pub trait IndexedParallelIterator: ParallelIterator {}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IndexedParallelIterator for ParIter<T> {}

/// A mapped parallel iterator; evaluation happens (in parallel) at
/// `collect`/`for_each` time.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParallelIterator for ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    type Item = U;

    fn into_items(self) -> Vec<U> {
        parallel_map_vec(self.items, self.f)
    }
}

impl<T, U, F> IndexedParallelIterator for ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` on anything that view-iterates (slices, Vec via deref).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_to_err() {
        let ok: Result<Vec<usize>, String> = (0..10usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);

        let err: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|i| {
                if i == 7 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn slice_par_iter_with_enumerate() {
        let data = vec![10, 20, 30];
        let out: Vec<usize> = data.par_iter().enumerate().map(|(i, &v)| i + v).collect();
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut buf = vec![0u32; 64];
        buf.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, (i / 8) as u32);
        }
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..500usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }
}
