//! Offline stand-in for `criterion`.
//!
//! Keeps the API the in-tree benches use (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) but measures with
//! a plain wall-clock loop: warmup, then `sample_size` timed samples, then
//! a one-line median/mean report. No statistics files, no HTML output.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measures one closure repeatedly.
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per iteration for each sample.
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that takes ~2ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.per_iter_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.per_iter_ns.push(elapsed / iters as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, throughput: Option<Throughput>, per_iter_ns: &[f64]) {
    if per_iter_ns.is_empty() {
        return;
    }
    let mut sorted = per_iter_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.2} Melem/s", n as f64 / median * 1_000.0 / 1_000_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.2} MiB/s",
                n as f64 / median * 1.0e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "bench {name:<48} median {:>12}  mean {:>12}{rate}",
        format_ns(median),
        format_ns(mean)
    );
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            &b.per_iter_ns,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            &b.per_iter_ns,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.default_sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut b);
        report(name, None, &b.per_iter_ns);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
