//! Mergeable metric snapshots: parse the registry's own Prometheus text
//! exposition back into typed series and combine snapshots from many
//! processes into one fleet-wide view.
//!
//! The fleet collector scrapes every shard's `/metrics` endpoint — each a
//! [`Telemetry::prometheus`](crate::Telemetry::prometheus) rendering — and
//! needs a *merged* surface to evaluate SLOs against. Merge semantics per
//! instrument kind:
//!
//! * **counters** — summed across shards (totals are totals);
//! * **histograms** — bucket-wise sum when the `le` layouts match exactly
//!   (every shard runs the same code, so layouts agree unless versions
//!   are mixed mid-rollout; mismatches are reported, never half-merged);
//! * **gauges** — last-write-wins values cannot be meaningfully summed,
//!   so each shard's gauge is re-exported with a `shard` label and the
//!   consumer picks its own aggregation.
//!
//! The parser only targets the exposition this workspace produces (one
//! sample per line, `# HELP`/`# TYPE` headers, escaped label values); it
//! is not a general Prometheus parser.

use std::collections::BTreeMap;

use crate::registry::Labels;

/// One counter or gauge sample: a name, its labels, a value.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarSeries {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// The sample value.
    pub value: f64,
}

/// One histogram family instance: the `_bucket`/`_sum`/`_count` series
/// sharing a name and label set (minus `le`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSeries {
    /// Family name (without the `_bucket` suffix).
    pub name: String,
    /// Sorted label pairs, `le` excluded.
    pub labels: Labels,
    /// Ascending bucket upper bounds; the last entry is `+Inf`
    /// (`f64::INFINITY`).
    pub les: Vec<f64>,
    /// Cumulative counts, one per bound (Prometheus `_bucket` semantics).
    pub cumulative: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observation count (the `+Inf` cumulative bucket).
    pub count: u64,
}

impl HistogramSeries {
    /// Per-bucket (non-cumulative) counts, same length as
    /// [`les`](Self::les).
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut prev = 0u64;
        self.cumulative
            .iter()
            .map(|&c| {
                let d = c.saturating_sub(prev);
                prev = c;
                d
            })
            .collect()
    }

    /// Observations with value ≤ `bound`: the cumulative count of the
    /// first bucket whose upper bound is ≥ `bound`. With `bound` equal to
    /// a bucket edge this is exact; between edges it rounds up to the
    /// enclosing bucket (the conservative direction for an SLO's "good"
    /// count is to pick a bound that is a bucket edge).
    pub fn count_le(&self, bound: f64) -> u64 {
        for (le, &cum) in self.les.iter().zip(&self.cumulative) {
            if *le >= bound {
                return cum;
            }
        }
        self.count
    }

    /// Estimate the `q`-quantile by geometric interpolation inside the
    /// bucket containing the rank — the same estimator the live
    /// [`Histogram`](crate::Histogram) uses, so federated and local
    /// quantiles agree on identical data. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count.max(self.cumulative.last().copied().unwrap_or(0));
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let counts = self.bucket_counts();
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let next = seen + c;
            if (next as f64) >= rank && c > 0 {
                let finite_last = self
                    .les
                    .iter()
                    .rev()
                    .find(|b| b.is_finite())
                    .copied()
                    .unwrap_or(1.0);
                let lo = if i == 0 {
                    self.les.first().map_or(0.0, |b| {
                        if b.is_finite() {
                            b / 2.0
                        } else {
                            finite_last / 2.0
                        }
                    })
                } else {
                    self.les[i - 1]
                };
                let hi = if self.les[i].is_finite() {
                    self.les[i]
                } else {
                    finite_last * 2.0
                };
                let frac = (rank - seen as f64) / c as f64;
                return lo.max(1e-12) * (hi / lo.max(1e-12)).powf(frac);
            }
            seen = next;
        }
        self.les
            .iter()
            .rev()
            .find(|b| b.is_finite())
            .copied()
            .unwrap_or(0.0)
    }
}

/// Bucket-wise sum of two same-layout histograms. Returns `None` when the
/// `le` layouts differ (different lengths or any bound mismatching beyond
/// f64 round-trip noise) — mixed layouts must be surfaced, not blended.
/// Counts saturate at `u64::MAX` instead of wrapping.
pub fn merge_histograms(a: &HistogramSeries, b: &HistogramSeries) -> Option<HistogramSeries> {
    if a.les.len() != b.les.len() {
        return None;
    }
    for (x, y) in a.les.iter().zip(&b.les) {
        let same_inf = x.is_infinite() && y.is_infinite();
        if !same_inf && x != y {
            return None;
        }
    }
    Some(HistogramSeries {
        name: a.name.clone(),
        labels: a.labels.clone(),
        les: a.les.clone(),
        cumulative: a
            .cumulative
            .iter()
            .zip(&b.cumulative)
            .map(|(x, y)| x.saturating_add(*y))
            .collect(),
        sum: a.sum + b.sum,
        count: a.count.saturating_add(b.count),
    })
}

/// A parsed metrics exposition: typed series plus the HELP text seen.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter samples.
    pub counters: Vec<ScalarSeries>,
    /// Gauge samples.
    pub gauges: Vec<ScalarSeries>,
    /// Histogram families.
    pub histograms: Vec<HistogramSeries>,
    /// `# HELP` text by metric name.
    pub help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Parse a Prometheus text exposition produced by
    /// [`Telemetry::prometheus`](crate::Telemetry::prometheus). Unknown
    /// or malformed lines are skipped — a partially-garbled scrape
    /// degrades to the parseable subset rather than failing wholesale.
    pub fn parse(text: &str) -> MetricsSnapshot {
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut snap = MetricsSnapshot::default();
        // Histogram families under assembly, keyed by (family, labels).
        let mut hists: BTreeMap<(String, Labels), HistogramSeries> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.splitn(2, ' ');
                if let (Some(name), Some(ty)) = (it.next(), it.next()) {
                    types.insert(name.to_string(), ty.trim().to_string());
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let mut it = rest.splitn(2, ' ');
                if let (Some(name), Some(help)) = (it.next(), it.next()) {
                    snap.help.insert(name.to_string(), help.to_string());
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let Some((name, labels, value)) = parse_sample(line) else {
                continue;
            };
            // Histogram component lines reference the family's TYPE entry.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| name.strip_suffix(suf).map(|f| (f.to_string(), *suf)));
            if let Some((fam, suffix)) = family {
                if types.get(&fam).map(String::as_str) == Some("histogram") {
                    let (le, labels_sans_le) = split_le(labels);
                    let entry = hists
                        .entry((fam.clone(), labels_sans_le.clone()))
                        .or_insert_with(|| HistogramSeries {
                            name: fam,
                            labels: labels_sans_le,
                            les: Vec::new(),
                            cumulative: Vec::new(),
                            sum: 0.0,
                            count: 0,
                        });
                    match suffix {
                        "_bucket" => {
                            if let Some(le) = le {
                                entry.les.push(le);
                                entry.cumulative.push(value.max(0.0) as u64);
                            }
                        }
                        "_sum" => entry.sum = value,
                        _ => entry.count = value.max(0.0) as u64,
                    }
                    continue;
                }
            }
            match types.get(&name).map(String::as_str) {
                Some("counter") => snap.counters.push(ScalarSeries {
                    name,
                    labels,
                    value,
                }),
                Some("gauge") => snap.gauges.push(ScalarSeries {
                    name,
                    labels,
                    value,
                }),
                _ => {}
            }
        }
        snap.histograms = hists.into_values().collect();
        snap
    }

    /// Find a histogram family by name and an exact label subset match
    /// (every `(k, v)` in `labels` present on the series).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSeries> {
        self.histograms
            .iter()
            .find(|h| h.name == name && labels_superset(&h.labels, labels))
    }

    /// Sum of every counter sample matching `name` and the label subset.
    pub fn counter_sum(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.counters
            .iter()
            .filter(|c| c.name == name && labels_superset(&c.labels, labels))
            .map(|c| c.value)
            .sum()
    }

    /// The first gauge sample matching `name` and the label subset.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_superset(&g.labels, labels))
            .map(|g| g.value)
    }
}

fn labels_superset(have: &Labels, want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

/// A fleet-wide merged view plus what could not be merged.
#[derive(Debug, Clone, Default)]
pub struct MergedMetrics {
    /// The merged snapshot (counters summed, histograms bucket-summed,
    /// gauges re-labelled per shard).
    pub snapshot: MetricsSnapshot,
    /// Histogram families dropped because shards disagreed on layout.
    pub skipped: Vec<String>,
    /// How many shard snapshots went into the merge.
    pub shards_merged: usize,
}

/// Merge per-shard snapshots into one fleet view. `shards` pairs a stable
/// shard label (attached to gauges) with that shard's parsed scrape.
pub fn merge_shards(shards: &[(String, MetricsSnapshot)]) -> MergedMetrics {
    let mut counters: BTreeMap<(String, Labels), f64> = BTreeMap::new();
    let mut hists: BTreeMap<(String, Labels), Option<HistogramSeries>> = BTreeMap::new();
    let mut gauges: Vec<ScalarSeries> = Vec::new();
    let mut help: BTreeMap<String, String> = BTreeMap::new();
    let mut skipped: Vec<String> = Vec::new();
    for (shard, snap) in shards {
        for (name, h) in &snap.help {
            help.entry(name.clone()).or_insert_with(|| h.clone());
        }
        for c in &snap.counters {
            *counters
                .entry((c.name.clone(), c.labels.clone()))
                .or_insert(0.0) += c.value;
        }
        for g in &snap.gauges {
            let mut labels = g.labels.clone();
            labels.push(("shard".to_string(), shard.clone()));
            labels.sort();
            gauges.push(ScalarSeries {
                name: g.name.clone(),
                labels,
                value: g.value,
            });
        }
        for h in &snap.histograms {
            let key = (h.name.clone(), h.labels.clone());
            match hists.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Some(h.clone()));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let slot = e.get_mut();
                    if let Some(acc) = slot.take() {
                        match merge_histograms(&acc, h) {
                            Some(merged) => *slot = Some(merged),
                            None => {
                                // Poison the key: a half-merged histogram
                                // would silently misreport quantiles.
                                skipped.push(format!(
                                    "{} (shard {shard}: bucket layout mismatch)",
                                    h.name
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    let snapshot = MetricsSnapshot {
        counters: counters
            .into_iter()
            .map(|((name, labels), value)| ScalarSeries {
                name,
                labels,
                value,
            })
            .collect(),
        gauges,
        histograms: hists.into_values().flatten().collect(),
        help,
    };
    MergedMetrics {
        snapshot,
        skipped,
        shards_merged: shards.len(),
    }
}

impl MergedMetrics {
    /// Render the merged view back into Prometheus text exposition,
    /// grouped and sorted by metric name like the live registry's output.
    pub fn to_prometheus(&self) -> String {
        #[derive(Clone)]
        enum Row<'a> {
            Scalar(&'a ScalarSeries, &'static str),
            Hist(&'a HistogramSeries),
        }
        let snap = &self.snapshot;
        let mut rows: Vec<(&str, Row<'_>)> = Vec::new();
        for c in &snap.counters {
            rows.push((&c.name, Row::Scalar(c, "counter")));
        }
        for g in &snap.gauges {
            rows.push((&g.name, Row::Scalar(g, "gauge")));
        }
        for h in &snap.histograms {
            rows.push((&h.name, Row::Hist(h)));
        }
        rows.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::new();
        let mut last = "";
        for (name, row) in &rows {
            if *name != last {
                if let Some(help) = snap.help.get(*name) {
                    out.push_str(&format!("# HELP {name} {help}\n"));
                }
                let ty = match row {
                    Row::Scalar(_, ty) => ty,
                    Row::Hist(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {name} {ty}\n"));
                last = name;
            }
            match row {
                Row::Scalar(s, _) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        render_labels(&s.labels, None),
                        fmt_value(s.value)
                    ));
                }
                Row::Hist(h) => {
                    for (le, cum) in h.les.iter().zip(&h.cumulative) {
                        let le = if le.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            fmt_value(*le)
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            h.name,
                            render_labels(&h.labels, Some(&le)),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        h.name,
                        render_labels(&h.labels, None),
                        fmt_value(h.sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        h.name,
                        render_labels(&h.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    format!("{v}")
}

fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{k}=\"{}\"",
                v.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Split the `le` label out of a bucket line's label set.
fn split_le(labels: Labels) -> (Option<f64>, Labels) {
    let mut le = None;
    let mut rest = Vec::with_capacity(labels.len());
    for (k, v) in labels {
        if k == "le" {
            le = if v == "+Inf" {
                Some(f64::INFINITY)
            } else {
                v.parse::<f64>().ok()
            };
        } else {
            rest.push((k, v));
        }
    }
    (le, rest)
}

/// Parse one sample line: `name{k="v",...} value` or `name value`.
fn parse_sample(line: &str) -> Option<(String, Labels, f64)> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let name = &line[..brace];
            let close = find_label_close(&line[brace..])? + brace;
            (name, (&line[brace + 1..close], &line[close + 1..]))
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next()?;
            return Some((
                name.to_string(),
                Vec::new(),
                it.next()?.trim().parse().ok()?,
            ));
        }
    };
    let (label_text, value_text) = rest;
    let value: f64 = value_text.trim().parse().ok()?;
    let mut labels = parse_labels(label_text)?;
    labels.sort();
    Some((name_part.to_string(), labels, value))
}

/// Find the index (relative to `s`, which starts at `{`) of the matching
/// `}` — label values are quoted strings with backslash escapes, so a
/// literal `}` inside a value must not close the block.
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '}' {
            return Some(i);
        }
    }
    None
}

fn parse_labels(text: &str) -> Option<Labels> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return None;
        }
        // Scan the quoted value, honouring escapes.
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (i, c) in after[1..].char_indices() {
            if escaped {
                match c {
                    'n' => value.push('\n'),
                    other => value.push(other),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end?;
        labels.push((key, value));
        rest = after[1 + end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, Telemetry};

    fn hist(name: &str, les: &[f64], cumulative: &[u64], sum: f64) -> HistogramSeries {
        HistogramSeries {
            name: name.to_string(),
            labels: Vec::new(),
            les: les.to_vec(),
            cumulative: cumulative.to_vec(),
            sum,
            count: cumulative.last().copied().unwrap_or(0),
        }
    }

    #[test]
    fn parse_roundtrips_the_live_registry_output() {
        let t = Telemetry::new();
        t.counter("req_total", "Requests").add(7);
        t.counter_with("shed_total", "Sheds", &[("reason", "overload")])
            .add(2);
        t.gauge_with("up", "Shard up", &[("shard", "0")]).set(1.0);
        let h = t.histogram_custom("lat_seconds", "Latency", &[], || {
            Histogram::with_log_buckets(0.5, 2.0, 1)
        });
        h.observe(0.4);
        h.observe(64.0);
        let snap = MetricsSnapshot::parse(&t.prometheus());
        assert_eq!(snap.counter_sum("req_total", &[]), 7.0);
        assert_eq!(
            snap.counter_sum("shed_total", &[("reason", "overload")]),
            2.0
        );
        assert_eq!(snap.gauge("up", &[("shard", "0")]), Some(1.0));
        let hs = snap.histogram("lat_seconds", &[]).unwrap();
        assert_eq!(hs.les, vec![0.5, 1.0, 2.0, f64::INFINITY]);
        assert_eq!(hs.cumulative, vec![1, 1, 1, 2]);
        assert_eq!(hs.count, 2);
        assert!((hs.sum - 64.4).abs() < 1e-9);
        assert_eq!(hs.bucket_counts(), vec![1, 0, 0, 1]);
    }

    #[test]
    fn escaped_label_values_parse_back() {
        let t = Telemetry::new();
        t.counter_with("weird_total", "", &[("path", "a\"b\\c\nd}e")])
            .inc();
        let snap = MetricsSnapshot::parse(&t.prometheus());
        let weird = snap
            .counters
            .iter()
            .find(|c| c.name == "weird_total")
            .unwrap();
        assert_eq!(weird.labels[0].1, "a\"b\\c\nd}e");
        assert_eq!(
            snap.counter_sum("weird_total", &[("path", "a\"b\\c\nd}e")]),
            1.0
        );
    }

    #[test]
    fn merge_sums_counters_and_labels_gauges_per_shard() {
        let mk = |reqs: u64, up: f64| {
            let t = Telemetry::new();
            t.counter("req_total", "").add(reqs);
            t.gauge("queue_depth", "").set(up);
            MetricsSnapshot::parse(&t.prometheus())
        };
        let merged = merge_shards(&[("0".into(), mk(3, 5.0)), ("1".into(), mk(4, 9.0))]);
        assert_eq!(merged.snapshot.counter_sum("req_total", &[]), 7.0);
        assert_eq!(
            merged.snapshot.gauge("queue_depth", &[("shard", "0")]),
            Some(5.0)
        );
        assert_eq!(
            merged.snapshot.gauge("queue_depth", &[("shard", "1")]),
            Some(9.0)
        );
        assert!(merged.skipped.is_empty());
        // Rendered output parses back to the same totals.
        let reparsed = MetricsSnapshot::parse(&merged.to_prometheus());
        assert_eq!(reparsed.counter_sum("req_total", &[]), 7.0);
    }

    #[test]
    fn histogram_merge_is_bucket_exact() {
        let a = hist("h", &[1.0, 2.0, f64::INFINITY], &[1, 3, 4], 5.0);
        let b = hist("h", &[1.0, 2.0, f64::INFINITY], &[0, 2, 7], 20.0);
        let m = merge_histograms(&a, &b).unwrap();
        assert_eq!(m.cumulative, vec![1, 5, 11]);
        assert_eq!(m.count, 11);
        assert_eq!(m.sum, 25.0);
        assert_eq!(m.bucket_counts(), vec![1, 4, 6]);
    }

    #[test]
    fn empty_merges_with_nonempty_as_identity() {
        let empty = hist("h", &[1.0, 2.0, f64::INFINITY], &[0, 0, 0], 0.0);
        let full = hist("h", &[1.0, 2.0, f64::INFINITY], &[2, 5, 9], 12.5);
        let m = merge_histograms(&empty, &full).unwrap();
        assert_eq!(m.cumulative, full.cumulative);
        assert_eq!(m.sum, full.sum);
        assert_eq!(m.count, full.count);
        // Quantiles of the merge equal the non-empty side's.
        assert_eq!(m.quantile(0.5), full.quantile(0.5));
    }

    #[test]
    fn disjoint_populated_buckets_union() {
        // a fills only the first bucket, b only the overflow bucket.
        let a = hist("h", &[1.0, 2.0, f64::INFINITY], &[4, 4, 4], 2.0);
        let b = hist("h", &[1.0, 2.0, f64::INFINITY], &[0, 0, 6], 60.0);
        let m = merge_histograms(&a, &b).unwrap();
        assert_eq!(m.bucket_counts(), vec![4, 0, 6]);
        // Median sits in the low bucket, p99 in the overflow.
        assert!(m.quantile(0.4) <= 1.0);
        assert!(m.quantile(0.99) >= 2.0);
    }

    #[test]
    fn overflow_counts_saturate_instead_of_wrapping() {
        let a = hist("h", &[1.0, f64::INFINITY], &[u64::MAX - 1, u64::MAX], 1.0);
        let b = hist("h", &[1.0, f64::INFINITY], &[5, 10], 1.0);
        let m = merge_histograms(&a, &b).unwrap();
        assert_eq!(m.cumulative, vec![u64::MAX, u64::MAX]);
        assert_eq!(m.count, u64::MAX);
    }

    #[test]
    fn layout_mismatch_refuses_to_merge() {
        let a = hist("h", &[1.0, 2.0, f64::INFINITY], &[1, 2, 3], 1.0);
        let b = hist("h", &[1.0, 4.0, f64::INFINITY], &[1, 2, 3], 1.0);
        assert!(merge_histograms(&a, &b).is_none());
        let c = hist("h", &[1.0, f64::INFINITY], &[1, 2], 1.0);
        assert!(merge_histograms(&a, &c).is_none());
        // And merge_shards reports the family instead of half-merging it.
        let snap_of = |h: &HistogramSeries| MetricsSnapshot {
            histograms: vec![h.clone()],
            ..MetricsSnapshot::default()
        };
        let merged = merge_shards(&[("0".into(), snap_of(&a)), ("1".into(), snap_of(&b))]);
        assert!(merged.snapshot.histograms.is_empty());
        assert_eq!(merged.skipped.len(), 1);
        assert!(merged.skipped[0].contains('h'), "{:?}", merged.skipped);
    }

    mod quantile_bound_prop {
        use super::*;
        use proptest::prelude::*;

        /// The bucket index a quantile estimate falls in (les are shared).
        fn qbucket(h: &HistogramSeries, q: f64) -> usize {
            let v = h.quantile(q);
            h.les
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(h.les.len() - 1)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn merged_quantiles_are_bounded_bucketwise(
                counts_a in proptest::collection::vec(0u64..1000, 5),
                counts_b in proptest::collection::vec(0u64..1000, 5),
                qi in 1u32..100,
            ) {
                let les = [0.5, 1.0, 2.0, 4.0, f64::INFINITY];
                let cum = |counts: &[u64]| {
                    let mut acc = 0u64;
                    counts.iter().map(|c| { acc += c; acc }).collect::<Vec<_>>()
                };
                let a = hist("h", &les, &cum(&counts_a), 0.0);
                let b = hist("h", &les, &cum(&counts_b), 0.0);
                prop_assume!(a.count > 0 && b.count > 0);
                let m = merge_histograms(&a, &b).unwrap();
                let q = qi as f64 / 100.0;
                // Merging cannot move a quantile outside the bucket range
                // spanned by the two inputs' quantiles.
                let (qa, qb, qm) = (qbucket(&a, q), qbucket(&b, q), qbucket(&m, q));
                prop_assert!(qm >= qa.min(qb), "q{qi}: merged bucket {qm} < min({qa},{qb})");
                prop_assert!(qm <= qa.max(qb), "q{qi}: merged bucket {qm} > max({qa},{qb})");
            }
        }
    }
}
