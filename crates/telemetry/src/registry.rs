//! The [`Telemetry`] registry: named instruments plus the span log, with
//! snapshot export to JSON and Prometheus text exposition format.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a short mutex on
//! a flat entry list and is expected to happen once, at wiring time; the
//! returned handles are then updated lock-free on the hot path. The same
//! (name, labels) pair always resolves to the same underlying instrument,
//! so independent components can share a metric safely.

use crate::events::SpanLog;
use crate::instrument::{Counter, Gauge, Histogram};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A metric's label set: `(key, value)` pairs, order-insensitive.
pub type Labels = Vec<(String, String)>;

#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Labels,
    inst: Instrument,
}

struct RegistryInner {
    start: Instant,
    entries: Mutex<Vec<Entry>>,
    events: SpanLog,
}

/// The telemetry registry handle. Cloning is cheap and shares all state, so
/// one registry can thread through every layer of the stack.
///
/// ```
/// use prionn_telemetry::Telemetry;
/// let t = Telemetry::new();
/// let served = t.counter("predictions_served_total", "Prediction requests served");
/// served.inc();
/// // The same (name, labels) pair resolves to the same counter:
/// t.counter("predictions_served_total", "").inc();
/// assert_eq!(served.value(), 2);
/// let text = t.prometheus();
/// assert!(text.contains("# TYPE predictions_served_total counter"));
/// assert!(text.contains("predictions_served_total 2"));
/// ```
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<RegistryInner>,
}

impl Telemetry {
    /// An empty registry with a default-capacity span log.
    pub fn new() -> Self {
        Self::with_event_capacity(SpanLog::DEFAULT_CAPACITY)
    }

    /// An empty registry whose span log holds at most `cap` events.
    ///
    /// When the log fills, the oldest event is evicted (recent history
    /// wins) and the always-registered `telemetry_events_dropped_total`
    /// counter is incremented, so span loss shows up on `/metrics`.
    pub fn with_event_capacity(cap: usize) -> Self {
        let t = Telemetry {
            inner: Arc::new(RegistryInner {
                start: Instant::now(),
                entries: Mutex::new(Vec::new()),
                events: SpanLog::with_capacity(cap),
            }),
        };
        let dropped = t.counter(
            "telemetry_events_dropped_total",
            "Span events evicted from the bounded event log",
        );
        t.inner.events.set_drop_counter(dropped);
        t
    }

    /// Get or register the counter `name` with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or register the counter `name` with the given labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, help, labels, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Get or register the gauge `name` with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or register the gauge `name` with the given labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, labels, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Get or register a latency histogram (default log-bucket layout, 1 µs
    /// – 64 s) named `name` with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Get or register a latency histogram with the given labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_custom(name, help, labels, Histogram::latency)
    }

    /// Get or register a histogram with a caller-chosen bucket layout
    /// (used for non-latency quantities such as losses or norms).
    pub fn histogram_custom(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Histogram,
    ) -> Histogram {
        match self.get_or_insert(name, help, labels, || Instrument::Histogram(make())) {
            Instrument::Histogram(h) => h,
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let name = sanitize_name(name);
        let mut labels: Labels = labels
            .iter()
            .map(|(k, v)| (sanitize_name(k), v.to_string()))
            .collect();
        labels.sort();
        let mut entries = self.inner.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return e.inst.clone();
        }
        let inst = make();
        entries.push(Entry {
            name,
            help: help.to_string(),
            labels,
            inst: inst.clone(),
        });
        inst
    }

    /// The registry's span log (shared; record from anywhere, drain from
    /// the operator side).
    pub fn events(&self) -> &SpanLog {
        &self.inner.events
    }

    /// Seconds since the registry was created.
    pub fn uptime_seconds(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64()
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` headers per metric name,
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count` for
    /// histograms.
    pub fn prometheus(&self) -> String {
        let entries = self.inner.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_name = "";
        // Entries registered under one name share HELP/TYPE headers; sort a
        // copy of indices by name to group them without disturbing
        // registration order inside a group.
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| entries[a].name.cmp(&entries[b].name).then(a.cmp(&b)));
        for &i in &order {
            let e = &entries[i];
            if e.name != last_name {
                if !e.help.is_empty() {
                    out.push_str(&format!("# HELP {} {}\n", e.name, escape_help(&e.help)));
                }
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.inst.type_name()));
                last_name = &e.name;
            }
            match &e.inst {
                Instrument::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        c.value()
                    ));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        fmt_f64(g.value())
                    ));
                }
                Instrument::Histogram(h) => {
                    let counts = h.merged_counts();
                    let mut cum = 0u64;
                    for (bound, count) in h.bounds().iter().zip(&counts) {
                        cum += count;
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.name,
                            label_block(&e.labels, Some(&fmt_f64(*bound))),
                            cum
                        ));
                    }
                    cum += counts.last().copied().unwrap_or(0);
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        label_block(&e.labels, Some("+Inf")),
                        cum
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        fmt_f64(h.sum())
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        cum
                    ));
                }
            }
        }
        out
    }

    /// Render a point-in-time snapshot as a JSON object: uptime, every
    /// metric (histograms include p50/p90/p99 estimates), and a *peek* of
    /// the span log (events are not drained).
    pub fn json(&self) -> String {
        let entries = self.inner.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"uptime_seconds\":{},\"metrics\":[",
            fmt_f64(self.inner.start.elapsed().as_secs_f64())
        ));
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"type\":\"{}\",\"labels\":{{",
                json_str(&e.name),
                e.inst.type_name()
            ));
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
            }
            out.push_str("},");
            match &e.inst {
                Instrument::Counter(c) => out.push_str(&format!("\"value\":{}", c.value())),
                Instrument::Gauge(g) => out.push_str(&format!("\"value\":{}", fmt_f64(g.value()))),
                Instrument::Histogram(h) => {
                    out.push_str(&format!(
                        "\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                        h.count(),
                        fmt_f64(h.sum()),
                        fmt_f64(h.mean()),
                        fmt_f64(h.quantile(0.5)),
                        fmt_f64(h.quantile(0.9)),
                        fmt_f64(h.quantile(0.99)),
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("],\"events\":[");
        for (i, ev) in self.inner.events.peek().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_micros\":{},\"name\":{},\"detail\":{},\"duration_micros\":{}}}",
                ev.at_micros,
                json_str(&ev.name),
                json_str(&ev.detail),
                ev.duration_micros
            ));
        }
        out.push_str("]}");
        out
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self
            .inner
            .entries
            .lock()
            .map(|e| e.len())
            .unwrap_or_default();
        f.debug_struct("Telemetry")
            .field("metrics", &n)
            .field("events", &self.inner.events.len())
            .finish()
    }
}

/// Replace characters outside `[a-zA-Z0-9_:]` with `_` (Prometheus metric
/// name charset); prefix a digit-leading name with `_`.
fn sanitize_name(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    if s.is_empty() {
        s.push('_');
    }
    s
}

/// Render `{k="v",...}` (with `le` appended for histogram buckets), or the
/// empty string when there is nothing to render.
fn label_block(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Format an `f64` the way both Prometheus and JSON accept: finite shortest
/// round-trip form, never `NaN`/`inf` (mapped to 0).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    format!("{v}")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_golden_output() {
        let t = Telemetry::new();
        t.counter("requests_total", "Requests served").add(3);
        t.gauge_with("queue_depth", "Waiting batches", &[("queue", "retrain")])
            .set(2.0);
        let h = t.histogram_custom("latency_seconds", "Latency", &[], || {
            Histogram::with_log_buckets(0.5, 2.0, 1)
        });
        h.observe(0.4);
        h.observe(0.9);
        h.observe(64.0);
        let got = t.prometheus();
        let want = "\
# HELP latency_seconds Latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le=\"0.5\"} 1
latency_seconds_bucket{le=\"1\"} 2
latency_seconds_bucket{le=\"2\"} 2
latency_seconds_bucket{le=\"+Inf\"} 3
latency_seconds_sum 65.3
latency_seconds_count 3
# HELP queue_depth Waiting batches
# TYPE queue_depth gauge
queue_depth{queue=\"retrain\"} 2
# HELP requests_total Requests served
# TYPE requests_total counter
requests_total 3
# HELP telemetry_events_dropped_total Span events evicted from the bounded event log
# TYPE telemetry_events_dropped_total counter
telemetry_events_dropped_total 0
";
        assert_eq!(got, want);
    }

    #[test]
    fn event_eviction_is_visible_on_the_metric_surface() {
        let t = Telemetry::with_event_capacity(2);
        for i in 0..5 {
            t.events().record("e", format!("{i}"), 0);
        }
        assert!(t.prometheus().contains("telemetry_events_dropped_total 3"));
    }

    #[test]
    fn same_name_different_labels_are_distinct_series() {
        let t = Telemetry::new();
        t.counter_with("layer_ops_total", "ops", &[("layer", "0.dense")])
            .inc();
        t.counter_with("layer_ops_total", "ops", &[("layer", "1.relu")])
            .add(2);
        let text = t.prometheus();
        assert!(text.contains("layer_ops_total{layer=\"0.dense\"} 1"));
        assert!(text.contains("layer_ops_total{layer=\"1.relu\"} 2"));
        assert_eq!(text.matches("# TYPE layer_ops_total").count(), 1);
    }

    #[test]
    fn json_snapshot_contains_quantiles_and_events() {
        let t = Telemetry::new();
        let h = t.histogram("predict_seconds", "Predict latency");
        h.observe(0.01);
        t.events().record("retrain", "batch=10", 1234);
        let json = t.json();
        assert!(json.contains("\"name\":\"predict_seconds\""));
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"name\":\"retrain\""));
        assert!(json.contains("\"duration_micros\":1234"));
        // Snapshot must not drain the event log.
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn names_and_labels_are_sanitized() {
        let t = Telemetry::new();
        t.counter("bad name-1", "").inc();
        let text = t.prometheus();
        assert!(text.contains("bad_name_1 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let t = Telemetry::new();
        t.counter("m", "");
        t.gauge("m", "");
    }
}
