//! # prionn-telemetry
//!
//! Lock-light metrics and tracing for PRIONN's train/predict hot paths.
//!
//! PRIONN is an *online* system — it retrains every hundred submissions and
//! serves predictions on the scheduler's critical path — so "is it fast" and
//! "is it healthy" are questions about a live process, not a benchmark run.
//! This crate provides the measurement substrate the rest of the workspace
//! wires through:
//!
//! * [`Counter`] — monotonic totals (predictions served, retrains, sim
//!   steps), striped across cache-padded atomic shards;
//! * [`Gauge`] — last-write-wins values (queue depth, parameter norms,
//!   last epoch loss);
//! * [`Histogram`] — fixed log-scale-bucket latency distributions with
//!   mergeable shards and quantile estimates;
//! * [`SpanLog`] — a bounded ring of timestamped span events (one retrain,
//!   one snapshot), drainable from the service API;
//! * [`Telemetry`] — the registry tying them together, exporting snapshots
//!   as JSON and Prometheus text exposition format.
//!
//! Design constraints, in order: hot-path updates must be allocation-free
//! and lock-free (one striped atomic add); the whole crate must stand on
//! `std` alone; exports are pull-based snapshots so there is no background
//! thread to manage. See `docs/OBSERVABILITY.md` for the metric inventory
//! and `DESIGN.md` §10 for the architecture rationale.
//!
//! ```
//! use prionn_telemetry::Telemetry;
//!
//! let t = Telemetry::new();
//! let lat = t.histogram("predict_seconds", "Predict latency");
//! {
//!     let _timer = lat.start_timer(); // records on drop
//! }
//! t.counter("predictions_served_total", "Requests").inc();
//! t.events().record("retrain", "batch=500", 120_000);
//!
//! let prom = t.prometheus(); // scrape-ready text
//! assert!(prom.contains("predict_seconds_bucket"));
//! let json = t.json(); // snapshot with p50/p90/p99 estimates
//! assert!(json.contains("\"p90\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod events;
mod instrument;
pub mod merge;
mod registry;

pub use events::{SpanEvent, SpanGuard, SpanLog};
pub use instrument::{Counter, Gauge, HistTimer, Histogram};
pub use merge::{merge_histograms, merge_shards, MergedMetrics, MetricsSnapshot};
pub use registry::{Labels, Telemetry};
