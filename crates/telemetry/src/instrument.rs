//! The three instrument kinds: [`Counter`], [`Gauge`], and [`Histogram`].
//!
//! All instruments are cheap cloneable handles over shared atomic state, so
//! a hot path can capture its instruments once and update them without any
//! registry lookup, allocation, or lock. Counters and histograms stripe
//! their state across cache-line-padded shards indexed by a per-thread slot,
//! which keeps concurrent writers off each other's cache lines.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of write shards per instrument. Eight covers the worker-thread
/// counts this workspace ever spawns while keeping snapshot merges trivial.
pub(crate) const SHARDS: usize = 8;

/// A cache-line-padded atomic cell: adjacent shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread claims a stable shard slot on first use.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn thread_shard() -> usize {
    THREAD_SLOT.with(|s| *s)
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` counter.
///
/// Increments go to a thread-striped shard with `Relaxed` ordering — the
/// cost is one uncontended atomic add. Reads merge the shards.
///
/// ```
/// use prionn_telemetry::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.value(), 42);
/// ```
#[derive(Clone, Default)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The merged total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A last-write-wins `f64` gauge (queue depths, norms, losses).
///
/// Stored as raw `f64` bits in one atomic word; `set` is a plain store, so
/// gauges are safe on hot paths but—unlike counters—concurrent `add`s use a
/// compare-exchange loop and are meant for low-frequency updates.
///
/// ```
/// use prionn_telemetry::Gauge;
/// let g = Gauge::new();
/// g.set(2.5);
/// g.add(0.5);
/// assert_eq!(g.value(), 3.0);
/// ```
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add a delta (compare-exchange loop; use for low-frequency updates).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// One shard of histogram state: per-bucket counts plus a sum accumulator.
struct HistShard {
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Running sum of observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
}

struct HistInner {
    /// Ascending bucket upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    shards: Vec<HistShard>,
}

/// A fixed-bucket histogram with logarithmically spaced bounds.
///
/// The bucket layout is frozen at construction — observation is a binary
/// search over ~tens of bounds plus one striped atomic add, allocation-free
/// and lock-free. Log-scale buckets give constant *relative* error across
/// the huge dynamic range of the quantities PRIONN tracks (layer timings of
/// microseconds next to retrains of seconds), which uniform buckets cannot.
///
/// ```
/// use prionn_telemetry::Histogram;
/// let h = Histogram::with_log_buckets(1e-3, 1e3, 2);
/// h.observe(0.25);
/// h.observe(4.0);
/// assert_eq!(h.count(), 2);
/// assert!(h.sum() > 4.2 && h.sum() < 4.3);
/// let p50 = h.quantile(0.5);
/// assert!(p50 > 0.0);
/// ```
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// A histogram whose bucket bounds double from `min` upward until they
    /// cover `max`, with `per_octave` geometrically spaced bounds per
    /// doubling (1 = powers of two). Bounds are clamped to at most 64
    /// buckets per octave and the total layout to 512 buckets.
    pub fn with_log_buckets(min: f64, max: f64, per_octave: u32) -> Self {
        let min = if min > 0.0 && min.is_finite() {
            min
        } else {
            1e-9
        };
        let max = if max > min { max } else { min * 2.0 };
        let per_octave = per_octave.clamp(1, 64);
        let step = 2f64.powf(1.0 / per_octave as f64);
        let mut bounds = Vec::new();
        let mut b = min;
        while b < max * (1.0 + 1e-12) && bounds.len() < 512 {
            bounds.push(b);
            b *= step;
        }
        let shards = (0..SHARDS)
            .map(|_| HistShard {
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })
            .collect();
        Histogram {
            inner: Arc::new(HistInner { bounds, shards }),
        }
    }

    /// A histogram with `count` uniformly spaced bucket bounds starting at
    /// `start` and stepping by `width` (plus the implicit `+Inf` overflow
    /// bucket). Built for small-integer quantities with a known range —
    /// micro-batch sizes, queue depths — where log buckets would smear
    /// adjacent values together. `count` is clamped to 512 bounds; a
    /// non-positive `width` falls back to 1.
    ///
    /// ```
    /// use prionn_telemetry::Histogram;
    /// let h = Histogram::with_linear_buckets(1.0, 1.0, 4);
    /// assert_eq!(h.bounds(), &[1.0, 2.0, 3.0, 4.0]);
    /// h.observe(3.0);
    /// assert_eq!(h.count(), 1);
    /// ```
    pub fn with_linear_buckets(start: f64, width: f64, count: usize) -> Self {
        let width = if width > 0.0 && width.is_finite() {
            width
        } else {
            1.0
        };
        let start = if start.is_finite() { start } else { 0.0 };
        let bounds: Vec<f64> = (0..count.clamp(1, 512))
            .map(|i| start + width * i as f64)
            .collect();
        let shards = (0..SHARDS)
            .map(|_| HistShard {
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })
            .collect();
        Histogram {
            inner: Arc::new(HistInner { bounds, shards }),
        }
    }

    /// The default latency layout: 1 µs to ~64 s, two bounds per octave
    /// (≈41% bucket width). 52 buckets, ~3.3 KiB of counters per shard.
    pub fn latency() -> Self {
        Histogram::with_log_buckets(1e-6, 64.0, 2)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let idx = self.inner.bounds.partition_point(|&b| b < v);
        let shard = &self.inner.shards[thread_shard()];
        shard.counts[idx].fetch_add(1, Ordering::Relaxed);
        // Relaxed CAS loop on the shard-local sum; contention is bounded by
        // the (small) number of threads mapped to this shard.
        let mut cur = shard.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match shard.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Record a duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Start a timer that records the elapsed seconds when dropped.
    ///
    /// ```
    /// use prionn_telemetry::Histogram;
    /// let h = Histogram::latency();
    /// {
    ///     let _t = h.start_timer();
    ///     // ... timed work ...
    /// }
    /// assert_eq!(h.count(), 1);
    /// ```
    pub fn start_timer(&self) -> HistTimer {
        HistTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.merged_counts().iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.inner
            .shards
            .iter()
            .map(|s| f64::from_bits(s.sum_bits.load(Ordering::Relaxed)))
            .sum()
    }

    /// The bucket upper bounds (exclusive of the implicit `+Inf` bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket counts merged across shards; one entry per bound plus the
    /// trailing overflow bucket.
    pub fn merged_counts(&self) -> Vec<u64> {
        let n = self.inner.bounds.len() + 1;
        let mut out = vec![0u64; n];
        for shard in &self.inner.shards {
            for (o, c) in out.iter_mut().zip(&shard.counts) {
                *o += c.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) by geometric interpolation
    /// inside the bucket containing the rank. Returns 0 when empty. The
    /// estimate's relative error is bounded by the bucket width (≈41% for
    /// the default latency layout) — enough to spot a regression, not a
    /// substitute for exact traces.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.merged_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let next = seen + c;
            if (next as f64) >= rank && c > 0 {
                let lo = if i == 0 {
                    // First bucket: its lower edge is implicit; fall back to
                    // half the first bound for the interpolation base.
                    self.inner.bounds.first().map_or(0.0, |b| b / 2.0)
                } else {
                    self.inner.bounds[i - 1]
                };
                let hi = self
                    .inner
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.inner.bounds.last().map_or(1.0, |b| b * 2.0));
                let frac = (rank - seen as f64) / c as f64;
                // Geometric interpolation matches the log-spaced layout.
                return lo.max(1e-12) * (hi / lo.max(1e-12)).powf(frac);
            }
            seen = next;
        }
        self.inner.bounds.last().copied().unwrap_or(0.0)
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// RAII timer from [`Histogram::start_timer`]: records elapsed seconds into
/// its histogram on drop.
pub struct HistTimer {
    hist: Histogram,
    start: Instant,
}

impl HistTimer {
    /// Stop early and return the elapsed seconds that were recorded.
    pub fn stop(self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.hist.observe(secs);
        std::mem::forget(self);
        secs
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10.0);
        g.add(-2.5);
        assert_eq!(g.value(), 7.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_half_open() {
        // Bounds 1,2,4,8: an observation equal to a bound lands in the
        // bucket whose upper bound it is (le semantics: v <= bound).
        let h = Histogram::with_log_buckets(1.0, 8.0, 1);
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0, 8.0]);
        h.observe(1.0); // -> bucket le=1
        h.observe(1.5); // -> bucket le=2
        h.observe(2.0); // -> bucket le=2
        h.observe(9.0); // -> overflow
        assert_eq!(h.merged_counts(), vec![1, 2, 0, 0, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_concurrent_observations_all_land() {
        let h = Histogram::latency();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..5_000 {
                        h.observe(1e-6 * ((t * 5_000 + i) % 100 + 1) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert!(h.sum() > 0.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::with_log_buckets(1e-3, 1e3, 4);
        for i in 1..=1000 {
            h.observe(i as f64 / 10.0); // 0.1 .. 100.0
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 > 30.0 && p50 < 80.0, "p50 {p50}");
        assert!(p99 > 80.0 && p99 < 130.0, "p99 {p99}");
        assert!(h.quantile(0.0) <= p50 && p50 <= p99);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn timer_records_once() {
        let h = Histogram::latency();
        let t = h.start_timer();
        let secs = t.stop();
        assert!(secs >= 0.0);
        assert_eq!(h.count(), 1);
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn non_finite_observations_do_not_poison() {
        let h = Histogram::latency();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-1.0);
        assert_eq!(h.count(), 3);
        assert!(h.sum().is_finite());
    }

    #[test]
    fn linear_buckets_keep_adjacent_integers_distinct() {
        let h = Histogram::with_linear_buckets(1.0, 1.0, 8);
        assert_eq!(h.bounds().len(), 8);
        for v in 1..=8 {
            h.observe(v as f64);
        }
        // Every observation lands in its own bucket (bounds are inclusive
        // upper edges: partition_point(|b| b < v)).
        let counts = h.merged_counts();
        assert!(counts[..8].iter().all(|&c| c == 1), "{counts:?}");
        h.observe(100.0); // overflow bucket
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn degenerate_linear_layouts_are_clamped() {
        let h = Histogram::with_linear_buckets(f64::NAN, -3.0, 0);
        assert_eq!(h.bounds(), &[0.0]);
        h.observe(0.5);
        assert_eq!(h.count(), 1);
    }
}
