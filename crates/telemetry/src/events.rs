//! The structured event log: a bounded ring of timestamped spans.
//!
//! Metrics aggregate; spans narrate. A [`SpanLog`] keeps the most recent N
//! completed spans (a retrain, a snapshot, a prediction burst) so an
//! operator can ask "what just happened" without scraping a time series.
//!
//! # Drop policy
//!
//! The ring is bounded at construction time ([`SpanLog::with_capacity`];
//! [`SpanLog::DEFAULT_CAPACITY`] otherwise). When a new span arrives and
//! the ring is full, the **oldest** span is evicted — recent history always
//! wins, the log never grows, and a recording thread is never blocked for
//! more than a short mutex hold. Every eviction increments the
//! [`SpanLog::dropped`] tally, and — when the log is owned by a
//! [`crate::Telemetry`] registry — the `telemetry_events_dropped_total`
//! counter, so silent loss is observable from the metric surface itself.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::instrument::Counter;

/// One completed, timestamped span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Microseconds since the owning log was created, at span *end*.
    pub at_micros: u64,
    /// Span name, e.g. `retrain` or `snapshot`.
    pub name: String,
    /// Free-form detail, e.g. `batch=500 loss=0.41`.
    pub detail: String,
    /// Span duration in microseconds (0 for instantaneous events).
    pub duration_micros: u64,
}

struct LogInner {
    start: Instant,
    cap: usize,
    ring: Mutex<RingState>,
}

struct RingState {
    events: VecDeque<SpanEvent>,
    /// Spans evicted because the ring was full (operators can detect loss).
    dropped: u64,
    /// Optional metric mirror of `dropped`, bumped on every eviction.
    drop_counter: Option<Counter>,
}

/// A bounded, drainable ring buffer of [`SpanEvent`]s. Cloning shares the
/// underlying ring.
///
/// ```
/// use prionn_telemetry::SpanLog;
/// let log = SpanLog::with_capacity(2);
/// log.record("a", "", 0);
/// log.record("b", "", 0);
/// log.record("c", "", 0); // evicts "a"
/// let drained = log.drain();
/// assert_eq!(drained.len(), 2);
/// assert_eq!(drained[0].name, "b");
/// assert_eq!(log.dropped(), 1);
/// assert!(log.drain().is_empty());
/// ```
#[derive(Clone)]
pub struct SpanLog {
    inner: Arc<LogInner>,
}

impl SpanLog {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A log holding at most [`SpanLog::DEFAULT_CAPACITY`] spans.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A log holding at most `cap` spans (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        SpanLog {
            inner: Arc::new(LogInner {
                start: Instant::now(),
                cap,
                ring: Mutex::new(RingState {
                    events: VecDeque::with_capacity(cap),
                    dropped: 0,
                    drop_counter: None,
                }),
            }),
        }
    }

    /// Record a completed span with an explicit duration.
    pub fn record(&self, name: &str, detail: impl Into<String>, duration_micros: u64) {
        self.push(SpanEvent {
            at_micros: self.inner.start.elapsed().as_micros() as u64,
            name: name.to_string(),
            detail: detail.into(),
            duration_micros,
        });
    }

    /// Mirror evictions into `counter` (used by the registry to expose
    /// `telemetry_events_dropped_total`). Last call wins.
    pub fn set_drop_counter(&self, counter: Counter) {
        let mut ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.drop_counter = Some(counter);
    }

    fn push(&self, ev: SpanEvent) {
        let mut ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() >= self.inner.cap {
            ring.events.pop_front();
            ring.dropped += 1;
            if let Some(c) = &ring.drop_counter {
                c.inc();
            }
        }
        ring.events.push_back(ev);
    }

    /// Test hook: record with an explicit timestamp, bypassing the clock.
    #[cfg(test)]
    fn record_at(&self, name: &str, at_micros: u64) {
        self.push(SpanEvent {
            at_micros,
            name: name.to_string(),
            detail: String::new(),
            duration_micros: 0,
        });
    }

    /// Open a span; the guard records it (with its wall duration) on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            log: self.clone(),
            name,
            detail: String::new(),
            started: Instant::now(),
        }
    }

    /// Remove and return all buffered spans, oldest first by `at_micros`.
    ///
    /// Concurrent writers stamp `at_micros` *before* taking the ring lock,
    /// so insertion order can interleave out of timestamp order under
    /// contention; the drain re-sorts (stably) so consumers always see a
    /// timeline.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = {
            let mut ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
            ring.events.drain(..).collect()
        };
        out.sort_by_key(|e| e.at_micros);
        out
    }

    /// Copy the buffered spans without draining, oldest first by
    /// `at_micros` (same re-sort as [`SpanLog::drain`]).
    pub fn peek(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = {
            let ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
            ring.events.iter().cloned().collect()
        };
        out.sort_by_key(|e| e.at_micros);
        out
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        let ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.events.len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        let ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.dropped
    }
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog")
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// RAII guard from [`SpanLog::span`]; records the span on drop.
pub struct SpanGuard {
    log: SpanLog,
    name: &'static str,
    detail: String,
    started: Instant,
}

impl SpanGuard {
    /// Attach free-form detail to the span (last call wins).
    pub fn detail(&mut self, detail: impl Into<String>) {
        self.detail = detail.into();
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let micros = self.started.elapsed().as_micros() as u64;
        self.log
            .record(self.name, std::mem::take(&mut self.detail), micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_on_drop() {
        let log = SpanLog::new();
        {
            let mut g = log.span("work");
            g.detail("n=3");
        }
        let evs = log.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "work");
        assert_eq!(evs[0].detail, "n=3");
    }

    #[test]
    fn ring_is_bounded_under_concurrency() {
        let log = SpanLog::with_capacity(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        log.record("e", format!("{t}:{i}"), 1);
                    }
                });
            }
        });
        assert_eq!(log.len(), 64);
        assert_eq!(log.dropped(), 4 * 500 - 64);
    }

    #[test]
    fn drain_sorts_interleaved_timestamps() {
        // Writers stamp `at_micros` before taking the ring lock, so under
        // contention the ring can hold events out of timestamp order.
        // Inject that interleaving directly and check drain repairs it.
        let log = SpanLog::new();
        log.record_at("c", 30);
        log.record_at("a", 10);
        log.record_at("b", 20);
        let peeked = log.peek();
        assert_eq!(
            peeked.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        let drained = log.drain();
        assert_eq!(
            drained.iter().map(|e| e.at_micros).collect::<Vec<_>>(),
            [10, 20, 30]
        );
    }

    #[test]
    fn drain_sort_is_stable_for_equal_timestamps() {
        let log = SpanLog::new();
        log.record_at("first", 5);
        log.record_at("second", 5);
        let drained = log.drain();
        assert_eq!(drained[0].name, "first");
        assert_eq!(drained[1].name, "second");
    }

    #[test]
    fn concurrent_drain_is_timestamp_ordered() {
        let log = SpanLog::with_capacity(4096);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let log = log.clone();
                s.spawn(move || {
                    for _ in 0..256 {
                        log.record("e", "", 0);
                    }
                });
            }
        });
        let drained = log.drain();
        assert_eq!(drained.len(), 4 * 256);
        assert!(drained.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
    }

    #[test]
    fn eviction_bumps_drop_counter() {
        let log = SpanLog::with_capacity(2);
        let c = Counter::default();
        log.set_drop_counter(c.clone());
        log.record("a", "", 0);
        log.record("b", "", 0);
        assert_eq!(c.value(), 0);
        log.record("c", "", 0);
        assert_eq!(c.value(), 1);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn peek_does_not_drain() {
        let log = SpanLog::new();
        log.record("x", "", 0);
        assert_eq!(log.peek().len(), 1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.drain().len(), 1);
        assert!(log.is_empty());
    }
}
