//! Character-level word2vec: skip-gram with negative sampling
//! (Mikolov et al., NIPS 2013), applied at the granularity PRIONN uses —
//! individual script characters, embedding their surrounding context.

use crate::transform::{CharTransform, VOCAB};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Training configuration for the skip-gram model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Word2vecConfig {
    /// Embedding width. The paper settles on 4 for PRIONN (§2.4) after
    /// describing an 8-wide variant (§2.1).
    pub dim: usize,
    /// Context window radius (characters either side of the centre).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2vecConfig {
    fn default() -> Self {
        Word2vecConfig {
            dim: 4,
            window: 2,
            negatives: 4,
            lr: 0.05,
            epochs: 2,
            seed: 0x77,
        }
    }
}

/// A trained character embedding table: one `dim`-wide vector per ASCII
/// character.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CharEmbedding {
    dim: usize,
    table: Vec<f32>, // VOCAB * dim, row per character
}

impl CharEmbedding {
    /// Train on a corpus of scripts with skip-gram + negative sampling.
    ///
    /// Both the input (centre) and output (context) tables are learned; the
    /// input table becomes the embedding, per standard practice.
    pub fn train(corpus: &[&str], cfg: &Word2vecConfig) -> Self {
        assert!(cfg.dim > 0, "embedding dim must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let scale = 0.5 / cfg.dim as f32;
        let mut input: Vec<f32> = (0..VOCAB * cfg.dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let mut output = vec![0.0f32; VOCAB * cfg.dim];

        // Unigram distribution (3/4 power) for negative sampling.
        let mut counts = [1.0f64; VOCAB];
        for s in corpus {
            for b in s.bytes() {
                counts[(b as usize) % VOCAB] += 1.0;
            }
        }
        let weights: Vec<f64> = counts.iter().map(|c| c.powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        // Cumulative table for inverse-CDF sampling.
        let mut cdf = Vec::with_capacity(VOCAB);
        let mut acc = 0.0f64;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let sample_negative = |rng: &mut ChaCha8Rng| -> usize {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u).min(VOCAB - 1)
        };

        let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
        let dim = cfg.dim;
        let mut grad_centre = vec![0.0f32; dim];

        for _ in 0..cfg.epochs.max(1) {
            for s in corpus {
                let bytes: Vec<usize> = s.bytes().map(|b| (b as usize) % VOCAB).collect();
                for (i, &centre) in bytes.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window + 1).min(bytes.len());
                    for (j, &context) in bytes.iter().enumerate().take(hi).skip(lo) {
                        if j == i {
                            continue;
                        }
                        grad_centre.iter_mut().for_each(|g| *g = 0.0);
                        // One positive + k negative logistic updates.
                        for k in 0..=cfg.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (sample_negative(&mut rng), 0.0f32)
                            };
                            let (ci, oi) = (centre * dim, target * dim);
                            let dot: f32 = (0..dim).map(|d| input[ci + d] * output[oi + d]).sum();
                            let err = (sigmoid(dot) - label) * cfg.lr;
                            for d in 0..dim {
                                grad_centre[d] += err * output[oi + d];
                                output[oi + d] -= err * input[ci + d];
                            }
                        }
                        let ci = centre * dim;
                        for d in 0..dim {
                            input[ci + d] -= grad_centre[d];
                        }
                    }
                }
            }
        }
        CharEmbedding { dim, table: input }
    }

    /// Rebuild an embedding from a persisted table (`VOCAB × dim`,
    /// row-major, one row per ASCII character).
    pub fn from_parts(dim: usize, table: Vec<f32>) -> Option<Self> {
        (dim > 0 && table.len() == VOCAB * dim).then_some(CharEmbedding { dim, table })
    }

    /// The raw row-major `VOCAB × dim` table.
    pub fn table(&self) -> &[f32] {
        &self.table
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding vector for a character.
    pub fn vector(&self, c: u8) -> &[f32] {
        let i = (c as usize % VOCAB) * self.dim;
        &self.table[i..i + self.dim]
    }

    /// Cosine similarity between two characters' embeddings.
    pub fn cosine(&self, a: u8, b: u8) -> f32 {
        let (va, vb) = (self.vector(a), self.vector(b));
        let dot: f32 = va.iter().zip(vb).map(|(&x, &y)| x * y).sum();
        let na: f32 = va.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|v| v * v).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// A [`CharTransform`] backed by a trained [`CharEmbedding`].
#[derive(Debug, Clone)]
pub struct Word2vecTransform {
    emb: CharEmbedding,
}

impl Word2vecTransform {
    /// Wrap a trained embedding.
    pub fn new(emb: CharEmbedding) -> Self {
        Word2vecTransform { emb }
    }

    /// Train an embedding on `corpus` and wrap it.
    pub fn train(corpus: &[&str], cfg: &Word2vecConfig) -> Self {
        Word2vecTransform {
            emb: CharEmbedding::train(corpus, cfg),
        }
    }

    /// The underlying embedding table.
    pub fn embedding(&self) -> &CharEmbedding {
        &self.emb
    }
}

impl CharTransform for Word2vecTransform {
    fn dim(&self) -> usize {
        self.emb.dim()
    }

    fn encode(&self, c: u8, out: &mut [f32]) {
        out.copy_from_slice(self.emb.vector(c));
    }

    fn name(&self) -> &'static str {
        "word2vec"
    }

    fn export_table(&self) -> Option<(usize, Vec<f32>)> {
        Some((self.emb.dim(), self.emb.table().to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Vec<&'static str> {
        vec![
            "#!/bin/bash\n#SBATCH -N 4\n#SBATCH -t 02:00:00\nsrun ./app input.nml\n",
            "#!/bin/bash\n#SBATCH -N 8\n#SBATCH -t 01:30:00\nsrun ./sim run.cfg\n",
            "#!/bin/bash\n#SBATCH -N 2\n#SBATCH -t 00:45:00\nsrun python train.py\n",
        ]
    }

    #[test]
    fn trains_and_exposes_vectors_of_right_width() {
        let cfg = Word2vecConfig {
            dim: 4,
            epochs: 1,
            ..Default::default()
        };
        let emb = CharEmbedding::train(&tiny_corpus(), &cfg);
        assert_eq!(emb.dim(), 4);
        assert_eq!(emb.vector(b'a').len(), 4);
    }

    #[test]
    fn training_is_deterministic_for_seed() {
        let cfg = Word2vecConfig::default();
        let a = CharEmbedding::train(&tiny_corpus(), &cfg);
        let b = CharEmbedding::train(&tiny_corpus(), &cfg);
        assert_eq!(a.vector(b'S'), b.vector(b'S'));
    }

    #[test]
    fn digits_in_shared_context_are_more_similar_than_unrelated_chars() {
        // Digits appear in interchangeable contexts (node counts), so
        // skip-gram should place them closer to each other on average than
        // to letters that never share context with them.
        let mut corpus = String::new();
        for d in 0..10 {
            for _ in 0..20 {
                corpus.push_str(&format!("#SBATCH -N {d}\n"));
            }
        }
        for _ in 0..50 {
            corpus.push_str("echo hello_world\n");
        }
        let scripts = [corpus.as_str()];
        let cfg = Word2vecConfig {
            epochs: 4,
            ..Default::default()
        };
        let emb = CharEmbedding::train(&scripts, &cfg);
        let digits = [b'1', b'3', b'5', b'7', b'9'];
        let letters = [b'e', b'h', b'l', b'o', b'w'];
        let mut digit_sim = 0.0f32;
        let mut cross_sim = 0.0f32;
        let mut pairs = 0;
        for (i, &a) in digits.iter().enumerate() {
            for &b in &digits[i + 1..] {
                digit_sim += emb.cosine(a, b);
                pairs += 1;
            }
        }
        digit_sim /= pairs as f32;
        for &a in &digits {
            for &b in &letters {
                cross_sim += emb.cosine(a, b);
            }
        }
        cross_sim /= (digits.len() * letters.len()) as f32;
        assert!(
            digit_sim > cross_sim,
            "mean digit-digit {digit_sim} should exceed mean digit-letter {cross_sim}"
        );
    }

    #[test]
    fn embedding_changes_with_training() {
        let cfg = Word2vecConfig::default();
        let trained = CharEmbedding::train(&tiny_corpus(), &cfg);
        let blank = CharEmbedding::train(&[], &cfg);
        assert_ne!(trained.vector(b'S'), blank.vector(b'S'));
    }

    #[test]
    fn transform_encodes_via_table() {
        let cfg = Word2vecConfig::default();
        let t = Word2vecTransform::train(&tiny_corpus(), &cfg);
        let mut out = vec![0.0f32; t.dim()];
        t.encode(b'N', &mut out);
        assert_eq!(out.as_slice(), t.embedding().vector(b'N'));
    }

    #[test]
    fn exported_table_rebuilds_an_identical_transform() {
        let cfg = Word2vecConfig::default();
        let t = Word2vecTransform::train(&tiny_corpus(), &cfg);
        let (dim, table) = t.export_table().expect("word2vec has a table");
        let rebuilt =
            Word2vecTransform::new(CharEmbedding::from_parts(dim, table).expect("valid table"));
        for c in 0u8..128 {
            let mut a = vec![0.0f32; t.dim()];
            let mut b = vec![0.0f32; rebuilt.dim()];
            t.encode(c, &mut a);
            rebuilt.encode(c, &mut b);
            assert_eq!(a, b, "char {c}");
        }
    }

    #[test]
    fn from_parts_rejects_bad_lengths() {
        assert!(CharEmbedding::from_parts(4, vec![0.0; VOCAB * 4]).is_some());
        assert!(CharEmbedding::from_parts(4, vec![0.0; VOCAB * 4 - 1]).is_none());
        assert!(CharEmbedding::from_parts(0, Vec::new()).is_none());
    }

    #[test]
    fn cosine_is_bounded() {
        let cfg = Word2vecConfig {
            epochs: 1,
            ..Default::default()
        };
        let emb = CharEmbedding::train(&tiny_corpus(), &cfg);
        for a in [b'a', b'0', b'#'] {
            for b in [b'z', b'9', b' '] {
                let c = emb.cosine(a, b);
                assert!((-1.01..=1.01).contains(&c), "cosine {c}");
            }
        }
    }
}
