//! PRIONN's job-script data processing (paper §2.1).
//!
//! The paper's novelty is mapping *whole job scripts* to image-like tensors
//! so a CNN can consume them without any manual feature extraction:
//!
//! 1. [`grid`] — crop/pad the raw script text to a fixed `64×64` character
//!    grid (scripts shorter than 64 rows/columns are padded with spaces,
//!    longer ones are cropped);
//! 2. [`transform`] — encode each character as a pixel via one of four
//!    transforms: **binary** (space vs non-space), **simple** (unique scalar
//!    per character), **one-hot** (128-wide indicator), and **word2vec**
//!    (learned dense embedding);
//! 3. [`word2vec`] — the character-level skip-gram with negative sampling
//!    that learns the word2vec embedding table from a corpus of scripts;
//! 4. [`mapping`] — assemble per-script tensors (`[dim, H, W]` for the
//!    2-D-preserving mapping, `[dim, H·W]` for the flattened 1-D mapping)
//!    and rayon-parallel corpus batches.

pub mod grid;
pub mod mapping;
pub mod transform;
pub mod word2vec;

pub use grid::ScriptGrid;
pub use mapping::{map_corpus_1d, map_corpus_2d, map_script_1d, map_script_2d};
pub use transform::{
    BinaryTransform, CharTransform, OneHotTransform, SimpleTransform, TransformKind,
};
pub use word2vec::{CharEmbedding, Word2vecConfig, Word2vecTransform};

/// Errors bubbled up from the tensor substrate.
pub type Result<T> = prionn_tensor::Result<T>;

/// The paper's fixed script image size: 64 rows × 64 columns.
pub const GRID_ROWS: usize = 64;
/// See [`GRID_ROWS`].
pub const GRID_COLS: usize = 64;
