//! Fixed-size character grids: the paper's crop/pad step (§2.4).

/// A script cropped/padded to a fixed `rows × cols` ASCII character grid.
///
/// * Lines beyond `rows` are cropped; missing lines are space-padded.
/// * Characters beyond `cols` on a line are cropped; short lines are
///   space-padded.
/// * Tabs count as space characters (relevant to the binary transform);
///   other control characters and non-ASCII bytes normalise to `'?'`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptGrid {
    rows: usize,
    cols: usize,
    cells: Vec<u8>,
}

impl ScriptGrid {
    /// Build a grid from raw script text.
    pub fn from_text(text: &str, rows: usize, cols: usize) -> Self {
        let mut cells = vec![b' '; rows * cols];
        for (r, line) in text.lines().take(rows).enumerate() {
            for (c, ch) in line.chars().take(cols).enumerate() {
                cells[r * cols + c] = normalise_char(ch);
            }
        }
        ScriptGrid { rows, cols, cells }
    }

    /// Grid height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cell at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> u8 {
        self.cells[row * self.cols + col]
    }

    /// Row-major cells.
    pub fn cells(&self) -> &[u8] {
        &self.cells
    }

    /// The grid flattened to a single sequence, row by row — the paper's
    /// 1-D mapping concatenates all lines into one line.
    pub fn flattened(&self) -> &[u8] {
        &self.cells
    }

    /// Fraction of cells that are padding/whitespace.
    pub fn whitespace_fraction(&self) -> f64 {
        let spaces = self
            .cells
            .iter()
            .filter(|&&c| c == b' ' || c == b'\t')
            .count();
        spaces as f64 / self.cells.len().max(1) as f64
    }
}

/// Normalise a char to the 7-bit ASCII alphabet the transforms expect.
#[inline]
pub fn normalise_char(ch: char) -> u8 {
    let c = ch as u32;
    if ch == '\t' {
        b'\t'
    } else if (0x20..0x7f).contains(&c) {
        c as u8
    } else {
        b'?'
    }
}

/// Corpus statistics the paper reports for the crop decision: the share of
/// scripts taller than `rows` lines and of lines wider than `cols` chars.
pub fn crop_statistics(scripts: &[&str], rows: usize, cols: usize) -> (f64, f64) {
    if scripts.is_empty() {
        return (0.0, 0.0);
    }
    let tall = scripts.iter().filter(|s| s.lines().count() > rows).count();
    let mut lines = 0usize;
    let mut wide = 0usize;
    for s in scripts {
        for line in s.lines() {
            lines += 1;
            if line.chars().count() > cols {
                wide += 1;
            }
        }
    }
    (
        tall as f64 / scripts.len() as f64,
        wide as f64 / lines.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_short_scripts_with_spaces() {
        let g = ScriptGrid::from_text("ab\ncd", 4, 3);
        assert_eq!(g.at(0, 0), b'a');
        assert_eq!(g.at(0, 2), b' ');
        assert_eq!(g.at(2, 0), b' ');
        assert_eq!(g.at(3, 2), b' ');
    }

    #[test]
    fn crops_long_lines_and_extra_rows() {
        let g = ScriptGrid::from_text("abcdef\nxyz\nrow3", 2, 4);
        assert_eq!(&g.cells()[0..4], b"abcd");
        assert_eq!(g.at(1, 0), b'x');
        assert_eq!(g.rows(), 2);
    }

    #[test]
    fn normalises_non_ascii_to_question_mark() {
        let g = ScriptGrid::from_text("é\u{1}x", 1, 4);
        assert_eq!(g.at(0, 0), b'?');
        assert_eq!(g.at(0, 1), b'?');
        assert_eq!(g.at(0, 2), b'x');
    }

    #[test]
    fn tabs_survive_as_tabs() {
        let g = ScriptGrid::from_text("a\tb", 1, 4);
        assert_eq!(g.at(0, 1), b'\t');
    }

    #[test]
    fn empty_script_is_all_spaces() {
        let g = ScriptGrid::from_text("", 2, 2);
        assert_eq!(g.cells(), b"    ");
        assert_eq!(g.whitespace_fraction(), 1.0);
    }

    #[test]
    fn flattened_is_row_major() {
        let g = ScriptGrid::from_text("ab\ncd", 2, 2);
        assert_eq!(g.flattened(), b"abcd");
    }

    #[test]
    fn crop_statistics_counts_tall_and_wide() {
        let scripts = ["a\nb\nc", "x", "one-very-long-line"];
        let (tall, wide) = crop_statistics(&scripts, 2, 5);
        assert!((tall - 1.0 / 3.0).abs() < 1e-9);
        assert!((wide - 1.0 / 5.0).abs() < 1e-9); // 1 of 5 lines wide
    }

    #[test]
    fn crop_statistics_empty_corpus() {
        assert_eq!(crop_statistics(&[], 64, 64), (0.0, 0.0));
    }
}
