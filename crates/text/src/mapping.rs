//! Assemble image-like tensors from scripts (the paper's "data mapping").
//!
//! Channel-major layout: the 2-D mapping of a script is `[dim, rows, cols]`
//! (embedding channels first, like image feature maps), and the 1-D mapping
//! flattens the grid row-major into `[dim, rows·cols]`.

use crate::grid::ScriptGrid;
use crate::transform::CharTransform;
use crate::Result;
use prionn_tensor::Tensor;
use rayon::prelude::*;

/// Map one script to the 2-D-preserving representation `[dim, rows, cols]`.
///
/// Pixels are *centred on the padding character*: the encoding of the space
/// character is subtracted from every pixel, so the (typically dominant)
/// padding regions are exactly zero. This keeps every lossless transform
/// lossless while conditioning the input far better for the convolutional
/// trunk — without it, three quarters of each image is a constant non-zero
/// background that swamps the text signal.
pub fn map_script_2d(
    text: &str,
    transform: &dyn CharTransform,
    rows: usize,
    cols: usize,
) -> Result<Tensor> {
    let grid = ScriptGrid::from_text(text, rows, cols);
    let dim = transform.dim();
    let plane = rows * cols;
    let mut data = vec![0.0f32; dim * plane];

    // Precompute the centred encoding of every ASCII character as a sparse
    // (channel, value) list. One-hot encodings touch 2 of 128 channels, so
    // writing only the non-zero deltas avoids a 64× cache-hostile blowup.
    let mut space = vec![0.0f32; dim];
    transform.encode(b' ', &mut space);
    let mut enc = vec![0.0f32; dim];
    let sparse: Vec<Vec<(usize, f32)>> = (0u8..128)
        .map(|c| {
            transform.encode(c, &mut enc);
            enc.iter()
                .zip(&space)
                .enumerate()
                .filter_map(|(d, (&v, &s))| (v != s).then_some((d, v - s)))
                .collect()
        })
        .collect();

    for (i, &c) in grid.cells().iter().enumerate() {
        if c == b' ' {
            continue; // centred padding is exactly zero
        }
        for &(d, v) in &sparse[(c as usize) % 128] {
            data[d * plane + i] = v;
        }
    }
    Tensor::from_vec([dim, rows, cols], data)
}

/// Map one script to the flattened 1-D representation `[dim, rows·cols]`.
///
/// The flattening concatenates all lines into a single sequence first, as
/// the paper describes, so the spatial structure is lost but the character
/// order is preserved.
pub fn map_script_1d(
    text: &str,
    transform: &dyn CharTransform,
    rows: usize,
    cols: usize,
) -> Result<Tensor> {
    map_script_2d(text, transform, rows, cols)?.reshape([transform.dim(), rows * cols])
}

/// Map a corpus to a `[n, dim, rows, cols]` batch tensor, in parallel.
pub fn map_corpus_2d(
    scripts: &[&str],
    transform: &dyn CharTransform,
    rows: usize,
    cols: usize,
) -> Result<Tensor> {
    let mapped: Result<Vec<Tensor>> = scripts
        .par_iter()
        .map(|s| map_script_2d(s, transform, rows, cols))
        .collect();
    Tensor::stack(&mapped?)
}

/// Map a corpus to a `[n, dim, rows·cols]` batch tensor, in parallel.
pub fn map_corpus_1d(
    scripts: &[&str],
    transform: &dyn CharTransform,
    rows: usize,
    cols: usize,
) -> Result<Tensor> {
    let mapped: Result<Vec<Tensor>> = scripts
        .par_iter()
        .map(|s| map_script_1d(s, transform, rows, cols))
        .collect();
    Tensor::stack(&mapped?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{BinaryTransform, OneHotTransform, SimpleTransform};

    #[test]
    fn binary_2d_marks_text_positions() {
        let t = map_script_2d("ab\n c", &BinaryTransform, 2, 2).unwrap();
        assert_eq!(t.dims(), &[1, 2, 2]);
        assert_eq!(t.as_slice(), &[1., 1., 0., 1.]);
    }

    #[test]
    fn one_hot_2d_has_dim_128_channels_centred_on_space() {
        let t = map_script_2d("x", &OneHotTransform, 2, 2).unwrap();
        assert_eq!(t.dims(), &[128, 2, 2]);
        // Channel for 'x' fires at (0,0); padding cells are all-zero; the
        // space channel carries -1 at text positions (centred encoding).
        assert_eq!(t.get(&[b'x' as usize, 0, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[b' ' as usize, 0, 0]).unwrap(), -1.0);
        assert_eq!(t.get(&[b' ' as usize, 0, 1]).unwrap(), 0.0);
        assert_eq!(t.get(&[b'x' as usize, 1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn padding_cells_are_exactly_zero_for_every_transform() {
        let transforms: Vec<Box<dyn crate::transform::CharTransform>> = vec![
            Box::new(BinaryTransform),
            Box::new(SimpleTransform),
            Box::new(OneHotTransform),
        ];
        for t in &transforms {
            let m = map_script_2d("a", t.as_ref(), 2, 2).unwrap();
            let plane = 4;
            for d in 0..t.dim() {
                for i in 1..4 {
                    assert_eq!(
                        m.as_slice()[d * plane + i],
                        0.0,
                        "{} channel {d} cell {i}",
                        t.name()
                    );
                }
            }
        }
    }

    #[test]
    fn one_d_mapping_is_flattened_two_d() {
        let a = map_script_2d("ab\ncd", &SimpleTransform, 2, 2).unwrap();
        let b = map_script_1d("ab\ncd", &SimpleTransform, 2, 2).unwrap();
        assert_eq!(b.dims(), &[1, 4]);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn corpus_mapping_stacks_scripts() {
        let scripts = ["a", "b", "c"];
        let t = map_corpus_2d(&scripts, &BinaryTransform, 4, 4).unwrap();
        assert_eq!(t.dims(), &[3, 1, 4, 4]);
    }

    #[test]
    fn corpus_mapping_matches_individual_maps() {
        let scripts = ["#SBATCH -N 4", "srun ./app"];
        let batch = map_corpus_1d(&scripts, &SimpleTransform, 4, 16).unwrap();
        for (i, s) in scripts.iter().enumerate() {
            let single = map_script_1d(s, &SimpleTransform, 4, 16).unwrap();
            assert_eq!(
                batch.slice_axis0(i, i + 1).unwrap().as_slice(),
                single.as_slice(),
                "script {i}"
            );
        }
    }

    #[test]
    fn identical_scripts_map_identically() {
        let s = "#!/bin/bash\nsrun app\n";
        let a = map_script_2d(s, &SimpleTransform, 8, 8).unwrap();
        let b = map_script_2d(s, &SimpleTransform, 8, 8).unwrap();
        assert_eq!(a, b);
    }
}
