//! The four character-to-pixel transforms (paper §2.1).

use serde::{Deserialize, Serialize};

/// Number of distinct input symbols: 7-bit ASCII.
pub const VOCAB: usize = 128;

/// A character-to-pixel encoding. `dim()` is the number of pixel channels a
/// single character produces (1 for scalar transforms, 128 for one-hot, the
/// embedding width for word2vec).
pub trait CharTransform: Send + Sync {
    /// Channels per character.
    fn dim(&self) -> usize;

    /// Write the encoding of `c` into `out` (length `dim()`).
    fn encode(&self, c: u8, out: &mut [f32]);

    /// Paper-style transform name.
    fn name(&self) -> &'static str;

    /// Learned lookup table backing the transform, if any, as
    /// `(dim, row-major VOCAB × dim weights)`. Parameter-free transforms
    /// return `None`; word2vec returns its embedding table so checkpoints
    /// can persist the trained encoder instead of retraining it on load.
    fn export_table(&self) -> Option<(usize, Vec<f32>)> {
        None
    }
}

/// Which transform to use; mirrors the paper's four options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransformKind {
    /// Lossy space/non-space indicator.
    Binary,
    /// Lossless unique scalar per character.
    Simple,
    /// Lossless 128-wide indicator vector.
    OneHot,
    /// Lossless learned embedding (see [`crate::word2vec`]).
    Word2vec,
}

impl TransformKind {
    /// The three parameter-free transforms plus word2vec, in paper order.
    pub const ALL: [TransformKind; 4] = [
        TransformKind::Binary,
        TransformKind::Simple,
        TransformKind::OneHot,
        TransformKind::Word2vec,
    ];

    /// Paper-style display label.
    pub fn label(&self) -> &'static str {
        match self {
            TransformKind::Binary => "binary",
            TransformKind::Simple => "simple",
            TransformKind::OneHot => "one-hot",
            TransformKind::Word2vec => "word2vec",
        }
    }
}

/// Lossy transform: spaces/tabs → 0, everything else → 1.
#[derive(Debug, Default, Clone, Copy)]
pub struct BinaryTransform;

impl CharTransform for BinaryTransform {
    fn dim(&self) -> usize {
        1
    }

    fn encode(&self, c: u8, out: &mut [f32]) {
        out[0] = if c == b' ' || c == b'\t' { 0.0 } else { 1.0 };
    }

    fn name(&self) -> &'static str {
        "binary"
    }
}

/// Lossless transform: each character maps to a unique scalar, normalised to
/// `[0, 1]` so it plays well with He-initialised layers.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimpleTransform;

impl CharTransform for SimpleTransform {
    fn dim(&self) -> usize {
        1
    }

    fn encode(&self, c: u8, out: &mut [f32]) {
        out[0] = (c as usize % VOCAB) as f32 / (VOCAB - 1) as f32;
    }

    fn name(&self) -> &'static str {
        "simple"
    }
}

/// Lossless transform: 128-wide one-hot indicator.
#[derive(Debug, Default, Clone, Copy)]
pub struct OneHotTransform;

impl CharTransform for OneHotTransform {
    fn dim(&self) -> usize {
        VOCAB
    }

    fn encode(&self, c: u8, out: &mut [f32]) {
        out.fill(0.0);
        out[c as usize % VOCAB] = 1.0;
    }

    fn name(&self) -> &'static str {
        "one-hot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_separates_space_from_text() {
        let t = BinaryTransform;
        let mut out = [9.0f32];
        t.encode(b' ', &mut out);
        assert_eq!(out[0], 0.0);
        t.encode(b'\t', &mut out);
        assert_eq!(out[0], 0.0);
        t.encode(b'x', &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn simple_is_injective_over_ascii() {
        let t = SimpleTransform;
        let mut seen = std::collections::HashSet::new();
        for c in 0u8..128 {
            let mut out = [0.0f32];
            t.encode(c, &mut out);
            assert!((0.0..=1.0).contains(&out[0]));
            assert!(seen.insert(out[0].to_bits()), "collision at {c}");
        }
    }

    #[test]
    fn one_hot_has_single_unit_component() {
        let t = OneHotTransform;
        let mut out = [0.5f32; VOCAB];
        t.encode(b'A', &mut out);
        assert_eq!(out.iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(out.iter().filter(|&&v| v == 0.0).count(), VOCAB - 1);
        assert_eq!(out[b'A' as usize], 1.0);
    }

    #[test]
    fn kind_labels_match_paper() {
        assert_eq!(TransformKind::Binary.label(), "binary");
        assert_eq!(TransformKind::Word2vec.label(), "word2vec");
        assert_eq!(TransformKind::ALL.len(), 4);
    }
}
