//! Evaluation metrics, foremost the paper's Equation 1.

/// Relative accuracy (Equation 1):
///
/// ```text
/// relativeAccuracy = 1 − |true − pred| / (max(true, pred) + ε)
/// ```
///
/// Bounded to `[0, 1]` for non-negative inputs; the `max` in the denominator
/// penalises underprediction more than overprediction (an underpredicted IO
/// budget causes contention), and ε guards `true = pred = 0`.
pub fn relative_accuracy(truth: f64, pred: f64) -> f64 {
    let denom = truth.max(pred) + f64::EPSILON;
    1.0 - (truth - pred).abs() / denom
}

/// Relative accuracy over paired slices.
pub fn relative_accuracy_vec(truth: &[f64], pred: &[f64]) -> Vec<f64> {
    truth
        .iter()
        .zip(pred)
        .map(|(&t, &p)| relative_accuracy(t, p))
        .collect()
}

/// Mean absolute error (Table 2's metric).
pub fn mean_absolute_error(truth: &[f64], pred: &[f64]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(pred)
        .map(|(&t, &p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_prediction_scores_one() {
        assert!((relative_accuracy(42.0, 42.0) - 1.0).abs() < 1e-12);
        assert!((relative_accuracy(0.0, 0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_miss_scores_zero() {
        assert!(relative_accuracy(0.0, 100.0).abs() < 1e-12);
        assert!(relative_accuracy(100.0, 0.0).abs() < 1e-12);
    }

    #[test]
    fn is_bounded_and_symmetric_in_ratio() {
        // Equation 1 is symmetric under swapping true/pred (both divide by
        // the max), even though *scheduling* consequences differ.
        for &(t, p) in &[(10.0, 25.0), (25.0, 10.0), (1.0, 1000.0)] {
            let acc = relative_accuracy(t, p);
            assert!((0.0..=1.0).contains(&acc));
            assert!((acc - relative_accuracy(p, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_values() {
        // Predicting 10 MB/s for a 25 MB/s job: 1 - 15/25 = 0.4.
        assert!((relative_accuracy(25.0, 10.0) - 0.4).abs() < 1e-9);
        // A 30-minute error on a 60-minute job is worse than on a 720-minute
        // job — the paper's motivation for a relative metric.
        assert!(relative_accuracy(60.0, 90.0) < relative_accuracy(720.0, 750.0));
    }

    #[test]
    fn underprediction_penalised_as_much_as_scaled_overprediction() {
        // 1 - |t-p|/max: overpredicting by 2x scores 0.5, underpredicting
        // to half scores 0.5 — the max() keeps the scale ratio-based.
        assert!((relative_accuracy(10.0, 20.0) - 0.5).abs() < 1e-9);
        assert!((relative_accuracy(10.0, 5.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mae_basics() {
        assert_eq!(mean_absolute_error(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    fn vectorised_matches_scalar() {
        let t = [1.0, 5.0, 9.0];
        let p = [1.5, 4.0, 9.0];
        let v = relative_accuracy_vec(&t, &p);
        for i in 0..3 {
            assert_eq!(v[i], relative_accuracy(t[i], p[i]));
        }
    }
}
