//! Wire encoding of predictor state into [`prionn_store`] checkpoint
//! sections.
//!
//! This module owns the translation between in-memory structures
//! ([`PrionnConfig`], state dicts, [`OptimizerState`], [`ValueBins`]) and
//! their little-endian section payloads. [`crate::predictor::Prionn::save`]
//! and [`crate::predictor::Prionn::load`] assemble/disassemble whole
//! checkpoints from these pieces.
//!
//! Every decoder is bounds-checked through [`wire::Reader`] and ends with
//! [`wire::Reader::expect_end`], so a corrupted payload that slips past the
//! section CRC (or a version skew in a hand-edited file) surfaces as a
//! [`StoreError`] rather than a panic or a silently misparsed model.

use crate::bins::ValueBins;
use crate::predictor::{HeadKind, PrionnConfig};
use prionn_nn::{ModelKind, OptimizerState};
use prionn_store::wire::{self, Reader};
use prionn_store::StoreError;
use prionn_tensor::Tensor;
use prionn_text::{TransformKind, Word2vecConfig};

/// Result alias for checkpoint (de)serialisation.
pub type CkptResult<T> = std::result::Result<T, StoreError>;

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    wire::put_u32(buf, v.to_bits());
}

fn get_f32(r: &mut Reader<'_>, what: &'static str) -> CkptResult<f32> {
    Ok(f32::from_bits(r.get_u32(what)?))
}

fn transform_tag(kind: TransformKind) -> u8 {
    match kind {
        TransformKind::Binary => 0,
        TransformKind::Simple => 1,
        TransformKind::OneHot => 2,
        TransformKind::Word2vec => 3,
    }
}

fn transform_from_tag(tag: u8) -> CkptResult<TransformKind> {
    Ok(match tag {
        0 => TransformKind::Binary,
        1 => TransformKind::Simple,
        2 => TransformKind::OneHot,
        3 => TransformKind::Word2vec,
        t => return Err(StoreError::Corrupt(format!("unknown transform tag {t}"))),
    })
}

fn model_tag(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::Nn => 0,
        ModelKind::Cnn1d => 1,
        ModelKind::Cnn2d => 2,
    }
}

fn model_from_tag(tag: u8) -> CkptResult<ModelKind> {
    Ok(match tag {
        0 => ModelKind::Nn,
        1 => ModelKind::Cnn1d,
        2 => ModelKind::Cnn2d,
        t => return Err(StoreError::Corrupt(format!("unknown model tag {t}"))),
    })
}

fn head_tag(kind: HeadKind) -> u8 {
    match kind {
        HeadKind::Classifier => 0,
        HeadKind::Regressor => 1,
    }
}

fn head_from_tag(tag: u8) -> CkptResult<HeadKind> {
    Ok(match tag {
        0 => HeadKind::Classifier,
        1 => HeadKind::Regressor,
        t => return Err(StoreError::Corrupt(format!("unknown head tag {t}"))),
    })
}

/// Serialise the full [`PrionnConfig`] (including the nested word2vec
/// training config) into the `config` section payload.
pub fn encode_config(cfg: &PrionnConfig) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u8(&mut buf, transform_tag(cfg.transform));
    wire::put_u8(&mut buf, model_tag(cfg.model));
    wire::put_u64(&mut buf, cfg.grid.0 as u64);
    wire::put_u64(&mut buf, cfg.grid.1 as u64);
    wire::put_u64(&mut buf, cfg.base_width as u64);
    wire::put_bool(&mut buf, cfg.batch_norm);
    wire::put_u64(&mut buf, cfg.runtime_bins as u64);
    wire::put_u8(&mut buf, head_tag(cfg.head));
    wire::put_u64(&mut buf, cfg.io_bins as u64);
    wire::put_bool(&mut buf, cfg.predict_io);
    wire::put_bool(&mut buf, cfg.predict_power);
    wire::put_u64(&mut buf, cfg.epochs as u64);
    wire::put_u64(&mut buf, cfg.batch_size as u64);
    put_f32(&mut buf, cfg.lr);
    wire::put_u64(&mut buf, cfg.w2v.dim as u64);
    wire::put_u64(&mut buf, cfg.w2v.window as u64);
    wire::put_u64(&mut buf, cfg.w2v.negatives as u64);
    put_f32(&mut buf, cfg.w2v.lr);
    wire::put_u64(&mut buf, cfg.w2v.epochs as u64);
    wire::put_u64(&mut buf, cfg.w2v.seed);
    wire::put_u64(&mut buf, cfg.seed);
    buf
}

/// Decode a `config` section payload written by [`encode_config`].
pub fn decode_config(payload: &[u8]) -> CkptResult<PrionnConfig> {
    let mut r = Reader::new(payload);
    let cfg = PrionnConfig {
        transform: transform_from_tag(r.get_u8("config.transform")?)?,
        model: model_from_tag(r.get_u8("config.model")?)?,
        grid: (r.get_usize("config.grid.0")?, r.get_usize("config.grid.1")?),
        base_width: r.get_usize("config.base_width")?,
        batch_norm: r.get_bool("config.batch_norm")?,
        runtime_bins: r.get_usize("config.runtime_bins")?,
        head: head_from_tag(r.get_u8("config.head")?)?,
        io_bins: r.get_usize("config.io_bins")?,
        predict_io: r.get_bool("config.predict_io")?,
        predict_power: r.get_bool("config.predict_power")?,
        epochs: r.get_usize("config.epochs")?,
        batch_size: r.get_usize("config.batch_size")?,
        lr: get_f32(&mut r, "config.lr")?,
        w2v: Word2vecConfig {
            dim: r.get_usize("config.w2v.dim")?,
            window: r.get_usize("config.w2v.window")?,
            negatives: r.get_usize("config.w2v.negatives")?,
            lr: get_f32(&mut r, "config.w2v.lr")?,
            epochs: r.get_usize("config.w2v.epochs")?,
            seed: r.get_u64("config.w2v.seed")?,
        },
        seed: r.get_u64("config.seed")?,
    };
    r.expect_end("config")?;
    Ok(cfg)
}

/// Serialise one [`ValueBins`] (tag + bounds + bin count).
pub fn encode_bins(buf: &mut Vec<u8>, bins: &ValueBins) {
    match *bins {
        ValueBins::Linear { lo, hi, n } => {
            wire::put_u8(buf, 0);
            wire::put_f64(buf, lo);
            wire::put_f64(buf, hi);
            wire::put_u64(buf, n as u64);
        }
        ValueBins::Log { lo, hi, n } => {
            wire::put_u8(buf, 1);
            wire::put_f64(buf, lo);
            wire::put_f64(buf, hi);
            wire::put_u64(buf, n as u64);
        }
    }
}

/// Decode one [`ValueBins`] written by [`encode_bins`].
pub fn decode_bins(r: &mut Reader<'_>) -> CkptResult<ValueBins> {
    let tag = r.get_u8("bins.tag")?;
    let lo = r.get_f64("bins.lo")?;
    let hi = r.get_f64("bins.hi")?;
    let n = r.get_usize("bins.n")?;
    if n == 0 {
        return Err(StoreError::Corrupt("bins with zero bins".into()));
    }
    match tag {
        0 => Ok(ValueBins::Linear { lo, hi, n }),
        1 => Ok(ValueBins::Log { lo, hi, n }),
        t => Err(StoreError::Corrupt(format!("unknown bins tag {t}"))),
    }
}

/// Serialise a model state dict (`Sequential::state_dict` output): entry
/// count, then per entry the layer path, the shape, and the raw weights.
pub fn encode_state_dict(dict: &[(String, Tensor)]) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u64(&mut buf, dict.len() as u64);
    for (key, tensor) in dict {
        wire::put_str(&mut buf, key);
        let dims: Vec<u64> = tensor.dims().iter().map(|&d| d as u64).collect();
        wire::put_u64_slice(&mut buf, &dims);
        wire::put_f32_slice(&mut buf, tensor.as_slice());
    }
    buf
}

/// Decode a state dict written by [`encode_state_dict`].
pub fn decode_state_dict(payload: &[u8]) -> CkptResult<Vec<(String, Tensor)>> {
    let mut r = Reader::new(payload);
    let count = r.get_usize("state_dict.count")?;
    let mut dict = Vec::new();
    for _ in 0..count {
        let key = r.get_str("state_dict.key")?.to_string();
        let dims: Vec<usize> = r
            .get_u64_vec("state_dict.dims")?
            .iter()
            .map(|&d| d as usize)
            .collect();
        let data = r.get_f32_vec("state_dict.data")?;
        let tensor = Tensor::from_vec(dims, data)
            .map_err(|e| StoreError::Corrupt(format!("state_dict entry {key}: {e}")))?;
        dict.push((key, tensor));
    }
    r.expect_end("state_dict")?;
    Ok(dict)
}

/// Serialise an [`OptimizerState`] (step + per-slot moment buffers).
pub fn encode_opt_state(state: &OptimizerState) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_u64(&mut buf, state.step);
    wire::put_u64(&mut buf, state.slots.len() as u64);
    for slot in &state.slots {
        wire::put_u64(&mut buf, slot.len() as u64);
        for buffer in slot {
            wire::put_f32_slice(&mut buf, buffer);
        }
    }
    buf
}

/// Decode an [`OptimizerState`] written by [`encode_opt_state`].
pub fn decode_opt_state(payload: &[u8]) -> CkptResult<OptimizerState> {
    let mut r = Reader::new(payload);
    let step = r.get_u64("opt.step")?;
    let n_slots = r.get_usize("opt.slots")?;
    let mut slots = Vec::new();
    for _ in 0..n_slots {
        let n_buffers = r.get_usize("opt.slot.buffers")?;
        let mut buffers = Vec::new();
        for _ in 0..n_buffers {
            buffers.push(r.get_f32_vec("opt.slot.buffer")?);
        }
        slots.push(buffers);
    }
    r.expect_end("opt")?;
    Ok(OptimizerState { step, slots })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_every_field() {
        let mut cfg = PrionnConfig::reduced();
        cfg.transform = TransformKind::OneHot;
        cfg.model = ModelKind::Cnn1d;
        cfg.head = HeadKind::Regressor;
        cfg.batch_norm = true;
        cfg.predict_power = true;
        cfg.lr = 2.5e-4;
        cfg.seed = 0xfeed_beef;
        cfg.w2v.window = 5;
        let back = decode_config(&encode_config(&cfg)).unwrap();
        // PrionnConfig has no PartialEq (it holds nested config structs);
        // compare via the encoded form, which covers every field.
        assert_eq!(encode_config(&cfg), encode_config(&back));
    }

    #[test]
    fn config_decode_rejects_trailing_bytes_and_bad_tags() {
        let cfg = PrionnConfig::default();
        let mut long = encode_config(&cfg);
        long.push(0);
        assert!(decode_config(&long).is_err());
        let mut bad_tag = encode_config(&cfg);
        bad_tag[0] = 99;
        assert!(decode_config(&bad_tag).is_err());
    }

    #[test]
    fn bins_round_trip_both_variants() {
        for bins in [ValueBins::runtime_minutes(), ValueBins::io_bytes(64)] {
            let mut buf = Vec::new();
            encode_bins(&mut buf, &bins);
            let mut r = Reader::new(&buf);
            assert_eq!(decode_bins(&mut r).unwrap(), bins);
            r.expect_end("bins").unwrap();
        }
    }

    #[test]
    fn bins_decode_rejects_zero_bins() {
        let mut buf = Vec::new();
        encode_bins(
            &mut buf,
            &ValueBins::Linear {
                lo: 0.0,
                hi: 1.0,
                n: 0,
            },
        );
        assert!(decode_bins(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn state_dict_round_trips_bitwise() {
        let dict = vec![
            (
                "0.dense.w".to_string(),
                Tensor::from_vec([2, 3], vec![1.0, -0.0, 2.5, 3e-8, -7.0, 0.1]).unwrap(),
            ),
            (
                "0.dense.b".to_string(),
                Tensor::from_slice(&[0.5, -0.5, 9.0]),
            ),
        ];
        let encoded = encode_state_dict(&dict);
        let back = decode_state_dict(&encoded).unwrap();
        assert_eq!(back.len(), 2);
        for ((ka, ta), (kb, tb)) in dict.iter().zip(&back) {
            assert_eq!(ka, kb);
            assert_eq!(ta.dims(), tb.dims());
            for (a, b) in ta.as_slice().iter().zip(tb.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Re-encoding is byte-identical (save -> load -> save stability).
        assert_eq!(encode_state_dict(&back), encoded);
    }

    #[test]
    fn state_dict_rejects_shape_data_mismatch() {
        let dict = vec![("k".to_string(), Tensor::from_slice(&[1.0, 2.0]))];
        let mut encoded = encode_state_dict(&dict);
        // Shrink the declared dim without touching the data length.
        // Layout: count u64, key len u32 + "k", dims len u64, dims[0] u64...
        let dims0_offset = 8 + 4 + 1 + 8;
        encoded[dims0_offset] = 3;
        assert!(decode_state_dict(&encoded).is_err());
    }

    #[test]
    fn opt_state_round_trips() {
        let state = OptimizerState {
            step: 42,
            slots: vec![
                vec![vec![1.0, -2.0], vec![0.5, 0.25]],
                Vec::new(),
                vec![vec![3.0]],
            ],
        };
        let back = decode_opt_state(&encode_opt_state(&state)).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn opt_state_decode_rejects_truncation() {
        let state = OptimizerState {
            step: 1,
            slots: vec![vec![vec![1.0, 2.0, 3.0]]],
        };
        let encoded = encode_opt_state(&state);
        for len in 0..encoded.len() {
            assert!(decode_opt_state(&encoded[..len]).is_err(), "prefix {len}");
        }
    }
}
