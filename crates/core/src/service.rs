//! The PRIONN *service*: Figure 1's deployment shape.
//!
//! The paper runs PRIONN "on a single dedicated node … asynchronously to
//! the scheduling of jobs": the scheduler's critical path only ever asks
//! for predictions, while (re)training happens in the background as jobs
//! complete. This module provides that process structure:
//!
//! * a dedicated worker thread owns the [`Prionn`] model;
//! * [`PrionnService::predict`] is a synchronous RPC (the scheduler blocks
//!   only for a forward pass);
//! * [`PrionnService::retrain_async`] enqueues a training batch and returns
//!   immediately — retraining never blocks a scheduling decision;
//! * shared [`ServiceStats`] report queue depth and training activity.

use crate::predictor::{Prionn, PrionnConfig, ResourcePrediction, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A training batch: completed jobs' scripts and resource usage.
#[derive(Debug, Clone, Default)]
pub struct TrainingBatch {
    /// Job scripts.
    pub scripts: Vec<String>,
    /// True runtimes, minutes.
    pub runtime_minutes: Vec<f64>,
    /// True bytes read (empty when the IO heads are disabled).
    pub read_bytes: Vec<f64>,
    /// True bytes written (empty when the IO heads are disabled).
    pub write_bytes: Vec<f64>,
}

/// Live counters for the service.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Completed retraining events.
    pub retrains_done: AtomicUsize,
    /// Retraining batches waiting in the queue.
    pub retrains_pending: AtomicUsize,
    /// Prediction requests served.
    pub predictions_served: AtomicUsize,
}

enum Request {
    Predict {
        scripts: Vec<String>,
        reply: Sender<Result<Vec<ResourcePrediction>>>,
    },
    Retrain(TrainingBatch),
    Shutdown,
}

/// Handle to the background PRIONN worker.
pub struct PrionnService {
    tx: Sender<Request>,
    stats: Arc<ServiceStats>,
    last_error: Arc<Mutex<Option<String>>>,
    handle: Option<JoinHandle<()>>,
}

impl PrionnService {
    /// Spawn the worker thread with a fresh model.
    pub fn spawn(cfg: PrionnConfig, w2v_corpus: &[&str]) -> Result<Self> {
        let model = Prionn::new(cfg, w2v_corpus)?;
        let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
        let stats = Arc::new(ServiceStats::default());
        let last_error = Arc::new(Mutex::new(None));
        let worker_stats = Arc::clone(&stats);
        let worker_error = Arc::clone(&last_error);
        let handle = std::thread::Builder::new()
            .name("prionn-service".into())
            .spawn(move || worker_loop(model, rx, worker_stats, worker_error))
            .map_err(|e| {
                prionn_tensor::TensorError::InvalidArgument(format!("spawn failed: {e}"))
            })?;
        Ok(PrionnService { tx, stats, last_error, handle: Some(handle) })
    }

    /// Predict resources for newly submitted scripts (synchronous RPC).
    pub fn predict(&self, scripts: &[String]) -> Result<Vec<ResourcePrediction>> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Request::Predict { scripts: scripts.to_vec(), reply: reply_tx })
            .map_err(|_| {
                prionn_tensor::TensorError::InvalidArgument("service stopped".into())
            })?;
        reply_rx.recv().map_err(|_| {
            prionn_tensor::TensorError::InvalidArgument("service dropped reply".into())
        })?
    }

    /// Enqueue a retraining batch; returns immediately. Failures are
    /// recorded in [`PrionnService::last_error`].
    pub fn retrain_async(&self, batch: TrainingBatch) {
        self.stats.retrains_pending.fetch_add(1, Ordering::SeqCst);
        // A send can only fail after shutdown; then the pending count no
        // longer matters.
        let _ = self.tx.send(Request::Retrain(batch));
    }

    /// Live counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The most recent background-training error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Stop the worker after draining queued work.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PrionnService {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    mut model: Prionn,
    rx: Receiver<Request>,
    stats: Arc<ServiceStats>,
    last_error: Arc<Mutex<Option<String>>>,
) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::Predict { scripts, reply } => {
                let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
                let out = model.predict(&refs);
                stats.predictions_served.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(out);
            }
            Request::Retrain(batch) => {
                let refs: Vec<&str> = batch.scripts.iter().map(|s| s.as_str()).collect();
                let result = model.retrain(
                    &refs,
                    &batch.runtime_minutes,
                    &batch.read_bytes,
                    &batch.write_bytes,
                );
                stats.retrains_pending.fetch_sub(1, Ordering::SeqCst);
                match result {
                    Ok(()) => {
                        stats.retrains_done.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => *last_error.lock() = Some(e.to_string()),
                }
            }
            Request::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn tiny_cfg() -> PrionnConfig {
        PrionnConfig {
            grid: (16, 16),
            base_width: 2,
            runtime_bins: 32,
            predict_io: false,
            epochs: 2,
            batch_size: 8,
            ..Default::default()
        }
    }

    fn scripts(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("#!/bin/bash\n#SBATCH -N {}\nsrun ./app_{}\n", 1 + i % 8, i % 3))
            .collect()
    }

    #[test]
    fn predicts_before_any_training() {
        let corpus = scripts(8);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        let preds = svc.predict(&corpus[..3]).unwrap();
        assert_eq!(preds.len(), 3);
        assert_eq!(svc.stats().predictions_served.load(Ordering::SeqCst), 1);
        svc.shutdown();
    }

    #[test]
    fn async_retrain_completes_and_counts() {
        let corpus = scripts(16);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![10.0; corpus.len()],
            ..Default::default()
        });
        // A prediction queued after the batch proves the queue drained.
        let preds = svc.predict(&corpus[..1]).unwrap();
        assert_eq!(preds.len(), 1);
        assert_eq!(svc.stats().retrains_done.load(Ordering::SeqCst), 1);
        assert_eq!(svc.stats().retrains_pending.load(Ordering::SeqCst), 0);
        assert!(svc.last_error().is_none());
        svc.shutdown();
    }

    #[test]
    fn bad_batches_surface_as_last_error_not_panics() {
        let corpus = scripts(8);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![1.0], // wrong length
            ..Default::default()
        });
        let _ = svc.predict(&corpus[..1]).unwrap(); // barrier
        assert!(svc.last_error().is_some());
        assert_eq!(svc.stats().retrains_done.load(Ordering::SeqCst), 0);
        svc.shutdown();
    }

    #[test]
    fn training_improves_served_predictions() {
        // Two textually distinct script families: 5 vs 300 minutes.
        let corpus: Vec<String> = (0..24)
            .map(|i| {
                if i % 2 == 0 {
                    format!("#!/bin/bash\n#SBATCH -N 2\nsrun ./tiny {i}\n")
                } else {
                    format!(
                        "#!/bin/bash\n#SBATCH -N 64\nmodule load big\nsrun ./huge case{i}\nsync\n"
                    )
                }
            })
            .collect();
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.epochs = 6;
        cfg.lr = 3e-3;
        let svc = PrionnService::spawn(cfg, &refs).unwrap();
        let runtimes: Vec<f64> =
            (0..corpus.len()).map(|i| if i % 2 == 0 { 5.0 } else { 300.0 }).collect();
        for _ in 0..6 {
            svc.retrain_async(TrainingBatch {
                scripts: corpus.clone(),
                runtime_minutes: runtimes.clone(),
                ..Default::default()
            });
        }
        let preds = svc.predict(&corpus[..2]).unwrap();
        assert!(
            preds[0].runtime_minutes < preds[1].runtime_minutes,
            "{} vs {}",
            preds[0].runtime_minutes,
            preds[1].runtime_minutes
        );
        assert_eq!(svc.stats().retrains_done.load(Ordering::SeqCst), 6);
        svc.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let corpus = scripts(4);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        drop(svc); // must not hang or panic
    }
}
