//! The PRIONN *service*: Figure 1's deployment shape.
//!
//! The paper runs PRIONN "on a single dedicated node … asynchronously to
//! the scheduling of jobs": the scheduler's critical path only ever asks
//! for predictions, while (re)training happens in the background as jobs
//! complete. This module provides that process structure:
//!
//! * a dedicated worker thread owns the [`Prionn`] model;
//! * [`PrionnService::predict`] is a synchronous RPC (the scheduler blocks
//!   only for a forward pass);
//! * [`PrionnService::retrain_async`] enqueues a training batch and returns
//!   immediately — retraining never blocks a scheduling decision. The
//!   retrain queue is *bounded* with a latest-wins drop policy: when the
//!   queue is full the oldest queued batch is discarded (its jobs are the
//!   stalest history) and [`ServiceStats::retrains_dropped`] counts it;
//! * the worker checkpoints the live model to [`ServiceOptions::snapshot_path`]
//!   every [`ServiceOptions::snapshot_every_n_retrains`] retrains, or on
//!   demand via [`PrionnService::snapshot_async`] — snapshots are taken on
//!   the worker thread and never block a caller;
//! * [`PrionnService::spawn_from_checkpoint`] warm-restarts a service from a
//!   checkpoint written by a previous process;
//! * shared [`ServiceStats`] report queue depth and training activity.

use crate::checkpoint::CkptResult;
use crate::predictor::{Prionn, PrionnConfig, ResourcePrediction, Result};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use prionn_store::{Checkpoint, StoreError};
use prionn_telemetry::{Counter, Gauge, Histogram, SpanEvent, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A training batch: completed jobs' scripts and resource usage.
#[derive(Debug, Clone, Default)]
pub struct TrainingBatch {
    /// Job scripts.
    pub scripts: Vec<String>,
    /// True runtimes, minutes.
    pub runtime_minutes: Vec<f64>,
    /// True bytes read (empty when the IO heads are disabled).
    pub read_bytes: Vec<f64>,
    /// True bytes written (empty when the IO heads are disabled).
    pub write_bytes: Vec<f64>,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Maximum retraining batches queued at once. When full, the *oldest*
    /// queued batch is dropped in favour of the new one (latest-wins): a
    /// newer batch always covers more recent history, so under backlog the
    /// stalest work is the right work to shed.
    pub retrain_queue_cap: usize,
    /// Checkpoint the model after every this many completed retrains
    /// (`None` disables periodic snapshots). Requires `snapshot_path`.
    pub snapshot_every_n_retrains: Option<usize>,
    /// Where snapshots are written (atomically: tmp + rename).
    pub snapshot_path: Option<PathBuf>,
    /// Telemetry registry shared with the caller. `None` means the service
    /// creates a private registry — metrics are recorded either way and are
    /// reachable via [`PrionnService::telemetry`].
    pub telemetry: Option<Telemetry>,
    /// Span-event buffer bound for the *private* registry created when
    /// `telemetry` is `None` (see `prionn_telemetry::Telemetry::
    /// with_event_capacity` for the drop policy: oldest events are evicted
    /// and `telemetry_events_dropped_total` counts them). Ignored when an
    /// external registry is injected — capacity is fixed at construction.
    pub event_capacity: Option<usize>,
    /// Model-quality drift monitor. When attached, every retraining batch is
    /// first scored with the *current* (pre-retrain) weights — "how well did
    /// the live model predict the jobs that just completed" — and the
    /// per-head rolling relative accuracy, calibration error, and
    /// weight-staleness gauges update; see `prionn_observe::DriftMonitor`.
    pub drift: Option<prionn_observe::DriftMonitor>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            retrain_queue_cap: 8,
            snapshot_every_n_retrains: None,
            snapshot_path: None,
            telemetry: None,
            event_capacity: None,
            drift: None,
        }
    }
}

/// Live counters for the service.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Completed retraining events.
    pub retrains_done: AtomicUsize,
    /// Retraining batches waiting in the queue.
    pub retrains_pending: AtomicUsize,
    /// Batches shed by the latest-wins policy because the queue was full.
    pub retrains_dropped: AtomicUsize,
    /// Prediction requests served.
    pub predictions_served: AtomicUsize,
    /// Checkpoints written successfully (periodic + on-demand).
    pub snapshots_taken: AtomicUsize,
    /// Checkpoint attempts that failed (error kept in `last_error`).
    pub snapshots_failed: AtomicUsize,
}

/// Service-level instrument handles, resolved once at spawn.
#[derive(Clone)]
struct ServiceInstruments {
    predict_seconds: Histogram,
    predictions_total: Counter,
    queue_depth: Gauge,
    retrains_dropped: Counter,
    retrain_seconds: Histogram,
    snapshot_seconds: Histogram,
}

impl ServiceInstruments {
    fn build(t: &Telemetry) -> Self {
        ServiceInstruments {
            predict_seconds: t.histogram(
                "service_predict_seconds",
                "Predict RPC latency as the scheduler sees it (queue wait + forward pass)",
            ),
            predictions_total: t.counter(
                "service_predictions_total",
                "Scripts predicted through the service (batch sizes summed)",
            ),
            queue_depth: t.gauge(
                "service_retrain_queue_depth",
                "Retraining batches currently waiting in the bounded queue",
            ),
            retrains_dropped: t.counter(
                "service_retrains_dropped_total",
                "Batches shed by the latest-wins policy because the queue was full",
            ),
            retrain_seconds: t.histogram(
                "service_retrain_seconds",
                "Wall time of one background retraining event on the worker",
            ),
            snapshot_seconds: t.histogram(
                "service_snapshot_seconds",
                "Wall time of one checkpoint write on the worker",
            ),
        }
    }
}

enum Request {
    Predict {
        scripts: Vec<String>,
        reply: Sender<Result<Vec<ResourcePrediction>>>,
    },
    /// One queued batch is ready on the bounded retrain channel. Ticks ride
    /// the main FIFO channel so a `Predict` enqueued *after* a batch is
    /// served *after* that batch trains — callers use this as a barrier.
    RetrainTick,
    Snapshot,
    /// Export the live model as an in-memory checkpoint (taken between
    /// requests on the worker, so it never races a retrain).
    Export {
        reply: Sender<CkptResult<Checkpoint>>,
    },
    Shutdown,
    /// Test-only: panic on the worker thread to exercise the crash-surface
    /// path (`last_error` + non-wedging shutdown).
    #[cfg(test)]
    CrashForTest,
}

/// Best-effort rendering of a panic payload for `last_error`.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle to the background PRIONN worker.
pub struct PrionnService {
    tx: Sender<Request>,
    /// Bounded batch queue. The service keeps a receiver clone so
    /// `retrain_async` can evict the oldest batch when the queue is full.
    retrain_tx: Sender<TrainingBatch>,
    retrain_rx: Receiver<TrainingBatch>,
    snapshot_configured: bool,
    stats: Arc<ServiceStats>,
    telemetry: Telemetry,
    instruments: ServiceInstruments,
    drift: Option<prionn_observe::DriftMonitor>,
    last_error: Arc<Mutex<Option<String>>>,
    handle: Option<JoinHandle<()>>,
}

impl PrionnService {
    /// Spawn the worker thread with a fresh model and default options.
    pub fn spawn(cfg: PrionnConfig, w2v_corpus: &[&str]) -> Result<Self> {
        Self::spawn_with_options(cfg, w2v_corpus, ServiceOptions::default())
    }

    /// Spawn the worker thread with a fresh model.
    pub fn spawn_with_options(
        cfg: PrionnConfig,
        w2v_corpus: &[&str],
        options: ServiceOptions,
    ) -> Result<Self> {
        let model = Prionn::new(cfg, w2v_corpus)?;
        Self::spawn_model(model, options)
    }

    /// Warm-restart the service from a checkpoint written by
    /// [`Prionn::save`] or a previous service's snapshots. The restored
    /// worker continues the online protocol exactly where the checkpoint
    /// left off: the next retrain updates the restored weights.
    pub fn spawn_from_checkpoint(
        path: impl AsRef<Path>,
        options: ServiceOptions,
    ) -> CkptResult<Self> {
        let model = Prionn::load(path)?;
        Self::spawn_model(model, options)
            .map_err(|e| StoreError::Io(std::io::Error::other(e.to_string())))
    }

    fn spawn_model(mut model: Prionn, options: ServiceOptions) -> Result<Self> {
        let (tx, rx): (Sender<Request>, Receiver<Request>) = unbounded();
        let (retrain_tx, retrain_rx) = bounded(options.retrain_queue_cap.max(1));
        let snapshot_configured = options.snapshot_path.is_some();
        let telemetry = options
            .telemetry
            .clone()
            .unwrap_or_else(|| match options.event_capacity {
                Some(cap) => Telemetry::with_event_capacity(cap),
                None => Telemetry::default(),
            });
        let instruments = ServiceInstruments::build(&telemetry);
        // The worker's model publishes per-layer timers and predictor
        // metrics into the same registry.
        model.set_telemetry(&telemetry);
        let stats = Arc::new(ServiceStats::default());
        let drift = options.drift.clone();
        let last_error = Arc::new(Mutex::new(None));
        let worker_stats = Arc::clone(&stats);
        let worker_error = Arc::clone(&last_error);
        let worker_batches = retrain_rx.clone();
        let worker_instruments = instruments.clone();
        let worker_telemetry = telemetry.clone();
        let handle = std::thread::Builder::new()
            .name("prionn-service".into())
            .spawn(move || {
                // A panic anywhere in the worker must surface through
                // `last_error()` instead of silently killing the thread:
                // callers then see request failures *and* the cause, and
                // `shutdown()`/`Drop` join a thread that exited normally.
                let dead_rx = rx.clone();
                let dead_batches = worker_batches.clone();
                let dead_stats = Arc::clone(&worker_stats);
                let panic_error = Arc::clone(&worker_error);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    worker_loop(
                        model,
                        rx,
                        worker_batches,
                        options,
                        worker_stats,
                        worker_error,
                        worker_instruments,
                        worker_telemetry,
                    )
                }));
                if let Err(payload) = result {
                    *panic_error.lock() = Some(format!(
                        "worker panicked: {}",
                        panic_message(payload.as_ref())
                    ));
                    // Dead mode: requests already queued during the unwind
                    // (and any sent before a caller learns of the crash)
                    // hold reply senders inside the channel — if nobody
                    // consumes them, those callers block forever. Keep
                    // draining with instant failures until shutdown.
                    while let Ok(req) = dead_rx.recv() {
                        match req {
                            // Dropping the reply sender fails the caller's
                            // recv() immediately.
                            Request::Predict { reply, .. } => drop(reply),
                            Request::Export { reply } => drop(reply),
                            Request::RetrainTick => {
                                if dead_batches.try_recv().is_ok() {
                                    dead_stats.retrains_pending.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                            Request::Snapshot => {
                                dead_stats.snapshots_failed.fetch_add(1, Ordering::SeqCst);
                            }
                            Request::Shutdown => break,
                            #[cfg(test)]
                            Request::CrashForTest => {}
                        }
                    }
                }
            })
            .map_err(|e| {
                prionn_tensor::TensorError::InvalidArgument(format!("spawn failed: {e}"))
            })?;
        Ok(PrionnService {
            tx,
            retrain_tx,
            retrain_rx,
            snapshot_configured,
            stats,
            telemetry,
            instruments,
            drift,
            last_error,
            handle: Some(handle),
        })
    }

    /// Predict resources for newly submitted scripts (synchronous RPC).
    ///
    /// The `service_predict_seconds` histogram times the whole RPC as this
    /// caller experienced it — queue wait on the worker plus the forward
    /// pass — which is the latency a scheduler actually pays.
    pub fn predict(&self, scripts: &[String]) -> Result<Vec<ResourcePrediction>> {
        let timer = self.instruments.predict_seconds.start_timer();
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Request::Predict {
                scripts: scripts.to_vec(),
                reply: reply_tx,
            })
            .map_err(|_| prionn_tensor::TensorError::InvalidArgument("service stopped".into()))?;
        let out = reply_rx.recv().map_err(|_| {
            prionn_tensor::TensorError::InvalidArgument("service dropped reply".into())
        })?;
        timer.stop();
        if out.is_ok() {
            self.instruments.predictions_total.add(scripts.len() as u64);
        }
        out
    }

    /// Enqueue a retraining batch; returns immediately. When the bounded
    /// queue is full the oldest queued batch is dropped (latest-wins) and
    /// counted in [`ServiceStats::retrains_dropped`]. Training failures are
    /// recorded in [`PrionnService::last_error`].
    pub fn retrain_async(&self, mut batch: TrainingBatch) {
        let pending = self.stats.retrains_pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.instruments.queue_depth.set(pending as f64);
        loop {
            match self.retrain_tx.try_send(batch) {
                Ok(()) => break,
                Err(crossbeam::channel::TrySendError::Full(b)) => {
                    // Evict the oldest queued batch. The worker may drain
                    // the queue concurrently, in which case the eviction
                    // misses and the retry simply succeeds.
                    if self.retrain_rx.try_recv().is_ok() {
                        self.stats.retrains_dropped.fetch_add(1, Ordering::SeqCst);
                        self.instruments.retrains_dropped.inc();
                        let left = self.stats.retrains_pending.fetch_sub(1, Ordering::SeqCst) - 1;
                        self.instruments.queue_depth.set(left as f64);
                    }
                    batch = b;
                }
                Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                    // Only after shutdown; the pending count no longer
                    // matters.
                    self.stats.retrains_pending.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
            }
        }
        // A send can only fail after shutdown.
        let _ = self.tx.send(Request::RetrainTick);
    }

    /// Ask the worker to checkpoint the live model to the configured
    /// [`ServiceOptions::snapshot_path`]; returns immediately, without
    /// blocking on the write. Returns `false` (and does nothing) when no
    /// snapshot path was configured. Write failures increment
    /// [`ServiceStats::snapshots_failed`] and surface via
    /// [`PrionnService::last_error`].
    pub fn snapshot_async(&self) -> bool {
        if !self.snapshot_configured {
            return false;
        }
        self.tx.send(Request::Snapshot).is_ok()
    }

    /// A point-in-time checkpoint of the live model, taken on the worker
    /// thread between requests (so it can never observe a half-finished
    /// retrain) and returned in memory without touching disk.
    ///
    /// This is the handoff path to the serving gateway: a running
    /// single-worker service exports its model here and
    /// `prionn_serve::Gateway::spawn_from_service` fans it out to N
    /// micro-batching replicas, after which this service can be retired or
    /// kept as the trainer.
    pub fn model_checkpoint(&self) -> CkptResult<Checkpoint> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Request::Export { reply: reply_tx })
            .map_err(|_| StoreError::Io(std::io::Error::other("service stopped")))?;
        reply_rx
            .recv()
            .map_err(|_| StoreError::Io(std::io::Error::other("service dropped reply")))?
    }

    /// Live counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The service's telemetry registry: scrape
    /// [`Telemetry::prometheus`] / [`Telemetry::json`] from here. Shared
    /// with the worker thread and the model, and with the caller when
    /// [`ServiceOptions::telemetry`] injected an external registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Drain the structured event log: timestamped `retrain` / `snapshot`
    /// spans recorded by the worker, oldest first. Draining is destructive
    /// — each event is returned exactly once.
    pub fn drain_events(&self) -> Vec<SpanEvent> {
        self.telemetry.events().drain()
    }

    /// The drift monitor attached via [`ServiceOptions::drift`], if any.
    /// Read [`prionn_observe::DriftMonitor::snapshot`] from here for a
    /// point-in-time quality readout.
    pub fn drift(&self) -> Option<&prionn_observe::DriftMonitor> {
        self.drift.as_ref()
    }

    /// The most recent background-training or snapshot error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Test-only: make the worker thread panic, to exercise the
    /// crash-surfacing path.
    #[cfg(test)]
    fn crash_worker_for_test(&self) {
        let _ = self.tx.send(Request::CrashForTest);
    }

    /// Stop the worker after draining queued work.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PrionnService {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    mut model: Prionn,
    rx: Receiver<Request>,
    batches: Receiver<TrainingBatch>,
    options: ServiceOptions,
    stats: Arc<ServiceStats>,
    last_error: Arc<Mutex<Option<String>>>,
    instruments: ServiceInstruments,
    telemetry: Telemetry,
) {
    let snapshot = |model: &Prionn, stats: &ServiceStats, last_error: &Mutex<Option<String>>| {
        let Some(path) = options.snapshot_path.as_deref() else {
            stats.snapshots_failed.fetch_add(1, Ordering::SeqCst);
            *last_error.lock() = Some("snapshot requested but no snapshot_path set".into());
            return;
        };
        let started = std::time::Instant::now();
        let result = model.save(path);
        let secs = started.elapsed().as_secs_f64();
        instruments.snapshot_seconds.observe(secs);
        match result {
            Ok(()) => {
                stats.snapshots_taken.fetch_add(1, Ordering::SeqCst);
                telemetry.events().record(
                    "snapshot",
                    format!("path={}", path.display()),
                    (secs * 1e6) as u64,
                );
            }
            Err(e) => {
                stats.snapshots_failed.fetch_add(1, Ordering::SeqCst);
                telemetry
                    .events()
                    .record("snapshot_failed", e.to_string(), (secs * 1e6) as u64);
                *last_error.lock() = Some(format!("snapshot failed: {e}"));
            }
        }
    };
    while let Ok(req) = rx.recv() {
        match req {
            Request::Predict { scripts, reply } => {
                let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
                let out = model.predict(&refs);
                stats.predictions_served.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(out);
            }
            Request::RetrainTick => {
                // The tick's batch may have been evicted by latest-wins;
                // then there is nothing to do (the eviction was counted).
                let Ok(batch) = batches.try_recv() else {
                    continue;
                };
                let refs: Vec<&str> = batch.scripts.iter().map(|s| s.as_str()).collect();
                // Completed jobs arriving for retraining are also ground
                // truth for the *current* weights: score the batch with the
                // pre-retrain model so the drift monitor tracks live model
                // quality as the workload evolves.
                if let Some(drift) = &options.drift {
                    if let Ok(preds) = model.predict(&refs) {
                        use prionn_observe::DriftHead;
                        for (i, p) in preds.iter().enumerate() {
                            if let Some(&t) = batch.runtime_minutes.get(i) {
                                drift.record(DriftHead::Runtime, t, p.runtime_minutes);
                            }
                            if let Some(&t) = batch.read_bytes.get(i) {
                                drift.record(DriftHead::Read, t, p.read_bytes);
                            }
                            if let Some(&t) = batch.write_bytes.get(i) {
                                drift.record(DriftHead::Write, t, p.write_bytes);
                            }
                        }
                    }
                }
                let started = std::time::Instant::now();
                let result = model.retrain(
                    &refs,
                    &batch.runtime_minutes,
                    &batch.read_bytes,
                    &batch.write_bytes,
                );
                instruments
                    .retrain_seconds
                    .observe(started.elapsed().as_secs_f64());
                let left = stats.retrains_pending.fetch_sub(1, Ordering::SeqCst) - 1;
                instruments.queue_depth.set(left as f64);
                match result {
                    Ok(()) => {
                        if let Some(drift) = &options.drift {
                            drift.mark_weight_update();
                        }
                        let done = stats.retrains_done.fetch_add(1, Ordering::SeqCst) + 1;
                        if let Some(n) = options.snapshot_every_n_retrains {
                            if n > 0 && done.is_multiple_of(n) {
                                snapshot(&model, &stats, &last_error);
                            }
                        }
                    }
                    Err(e) => *last_error.lock() = Some(e.to_string()),
                }
            }
            Request::Snapshot => snapshot(&model, &stats, &last_error),
            Request::Export { reply } => {
                let _ = reply.send(model.to_checkpoint());
            }
            Request::Shutdown => break,
            #[cfg(test)]
            Request::CrashForTest => panic!("injected test panic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn tiny_cfg() -> PrionnConfig {
        PrionnConfig {
            grid: (16, 16),
            base_width: 2,
            runtime_bins: 32,
            predict_io: false,
            epochs: 2,
            batch_size: 8,
            ..Default::default()
        }
    }

    fn scripts(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "#!/bin/bash\n#SBATCH -N {}\nsrun ./app_{}\n",
                    1 + i % 8,
                    i % 3
                )
            })
            .collect()
    }

    fn tmp_snapshot_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("prionn-svc-{}-{}.ckpt", tag, std::process::id()))
    }

    #[test]
    fn predicts_before_any_training() {
        let corpus = scripts(8);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        let preds = svc.predict(&corpus[..3]).unwrap();
        assert_eq!(preds.len(), 3);
        assert_eq!(svc.stats().predictions_served.load(Ordering::SeqCst), 1);
        svc.shutdown();
    }

    #[test]
    fn async_retrain_completes_and_counts() {
        let corpus = scripts(16);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![10.0; corpus.len()],
            ..Default::default()
        });
        // A prediction queued after the batch proves the queue drained.
        let preds = svc.predict(&corpus[..1]).unwrap();
        assert_eq!(preds.len(), 1);
        assert_eq!(svc.stats().retrains_done.load(Ordering::SeqCst), 1);
        assert_eq!(svc.stats().retrains_pending.load(Ordering::SeqCst), 0);
        assert_eq!(svc.stats().retrains_dropped.load(Ordering::SeqCst), 0);
        assert!(svc.last_error().is_none());
        svc.shutdown();
    }

    #[test]
    fn predict_path_metrics_populate_after_a_short_run() {
        let corpus = scripts(16);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let telemetry = Telemetry::default();
        let svc = PrionnService::spawn_with_options(
            tiny_cfg(),
            &refs,
            ServiceOptions {
                telemetry: Some(telemetry.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![10.0; corpus.len()],
            ..Default::default()
        });
        for chunk in corpus.chunks(4) {
            svc.predict(chunk).unwrap();
        }

        let text = svc.telemetry().prometheus();
        // RPC latency histogram: one observation per predict() call.
        assert!(text.contains("service_predict_seconds_count 4"), "{text}");
        // Scripts counted with batch sizes summed.
        assert!(text.contains("service_predictions_total 16"), "{text}");
        // The worker's model publishes per-layer forward timings into the
        // same registry, labelled by head and layer path.
        assert!(
            text.contains(r#"nn_layer_forward_seconds_count{layer="0.conv2d",model="runtime"}"#),
            "{text}"
        );
        // One retrain happened and recorded both the histogram and a span.
        assert!(text.contains("service_retrain_seconds_count 1"), "{text}");
        assert!(text.contains("prionn_retrains_total 1"), "{text}");
        let events = svc.drain_events();
        assert!(events.iter().any(|e| e.name == "retrain"), "{events:?}");
        assert!(svc.drain_events().is_empty(), "drain empties the ring");
        svc.shutdown();
    }

    #[test]
    fn drift_monitor_updates_as_completed_jobs_arrive() {
        use prionn_observe::{DriftConfig, DriftMonitor};
        let corpus = scripts(16);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let telemetry = Telemetry::default();
        let drift = DriftMonitor::new(
            &telemetry,
            DriftConfig {
                min_samples: 4,
                ..Default::default()
            },
        );
        let svc = PrionnService::spawn_with_options(
            tiny_cfg(),
            &refs,
            ServiceOptions {
                telemetry: Some(telemetry.clone()),
                drift: Some(drift.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![10.0; corpus.len()],
            ..Default::default()
        });
        let _ = svc.predict(&corpus[..1]).unwrap(); // barrier
        let snap = drift.snapshot();
        let runtime = snap.heads.iter().find(|h| h.head == "runtime").unwrap();
        assert_eq!(runtime.samples, corpus.len() as u64);
        assert!((0.0..=1.0).contains(&runtime.relative_accuracy));
        assert_eq!(snap.weight_updates, 1, "retrain marked the weights fresh");
        // The gauges land on the shared registry's scrape surface.
        let text = telemetry.prometheus();
        assert!(
            text.contains(r#"drift_relative_accuracy{head="runtime"}"#),
            "{text}"
        );
        svc.shutdown();
    }

    #[test]
    fn private_registry_event_capacity_is_configurable() {
        let corpus = scripts(8);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn_with_options(
            tiny_cfg(),
            &refs,
            ServiceOptions {
                event_capacity: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        for _ in 0..4 {
            svc.retrain_async(TrainingBatch {
                scripts: corpus.clone(),
                runtime_minutes: vec![10.0; corpus.len()],
                ..Default::default()
            });
            let _ = svc.predict(&corpus[..1]).unwrap(); // barrier: no eviction drops
        }
        // Only the 2 newest retrain events survive; evictions are counted.
        let events = svc.drain_events();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(svc
            .telemetry()
            .prometheus()
            .contains("telemetry_events_dropped_total 2"));
        svc.shutdown();
    }

    #[test]
    fn bad_batches_surface_as_last_error_not_panics() {
        let corpus = scripts(8);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![1.0], // wrong length
            ..Default::default()
        });
        let _ = svc.predict(&corpus[..1]).unwrap(); // barrier
        assert!(svc.last_error().is_some());
        assert_eq!(svc.stats().retrains_done.load(Ordering::SeqCst), 0);
        svc.shutdown();
    }

    #[test]
    fn training_improves_served_predictions() {
        // Two textually distinct script families: 5 vs 300 minutes.
        let corpus: Vec<String> = (0..24)
            .map(|i| {
                if i % 2 == 0 {
                    format!("#!/bin/bash\n#SBATCH -N 2\nsrun ./tiny {i}\n")
                } else {
                    format!(
                        "#!/bin/bash\n#SBATCH -N 64\nmodule load big\nsrun ./huge case{i}\nsync\n"
                    )
                }
            })
            .collect();
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.epochs = 6;
        cfg.lr = 3e-3;
        let svc = PrionnService::spawn(cfg, &refs).unwrap();
        let runtimes: Vec<f64> = (0..corpus.len())
            .map(|i| if i % 2 == 0 { 5.0 } else { 300.0 })
            .collect();
        for _ in 0..6 {
            svc.retrain_async(TrainingBatch {
                scripts: corpus.clone(),
                runtime_minutes: runtimes.clone(),
                ..Default::default()
            });
        }
        let preds = svc.predict(&corpus[..2]).unwrap();
        assert!(
            preds[0].runtime_minutes < preds[1].runtime_minutes,
            "{} vs {}",
            preds[0].runtime_minutes,
            preds[1].runtime_minutes
        );
        assert_eq!(
            svc.stats().retrains_done.load(Ordering::SeqCst)
                + svc.stats().retrains_dropped.load(Ordering::SeqCst),
            6
        );
        svc.shutdown();
    }

    #[test]
    fn full_queue_drops_oldest_and_counts() {
        let corpus = scripts(12);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let options = ServiceOptions {
            retrain_queue_cap: 2,
            ..Default::default()
        };
        let svc = PrionnService::spawn_with_options(tiny_cfg(), &refs, options).unwrap();
        // Distinct batch sizes mark which batches survive: the worker may
        // train any prefix, but everything shed must be counted.
        for i in 0..8 {
            svc.retrain_async(TrainingBatch {
                scripts: corpus[..4 + i].to_vec(),
                runtime_minutes: vec![10.0; 4 + i],
                ..Default::default()
            });
        }
        let _ = svc.predict(&corpus[..1]).unwrap(); // barrier: all ticks processed
        let done = svc.stats().retrains_done.load(Ordering::SeqCst);
        let dropped = svc.stats().retrains_dropped.load(Ordering::SeqCst);
        assert_eq!(done + dropped, 8, "done {done} + dropped {dropped}");
        assert_eq!(svc.stats().retrains_pending.load(Ordering::SeqCst), 0);
        assert!(svc.last_error().is_none());
        svc.shutdown();
    }

    #[test]
    fn snapshot_async_without_path_is_a_noop() {
        let corpus = scripts(4);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        assert!(!svc.snapshot_async());
        let _ = svc.predict(&corpus[..1]).unwrap(); // barrier
        assert_eq!(svc.stats().snapshots_taken.load(Ordering::SeqCst), 0);
        assert_eq!(svc.stats().snapshots_failed.load(Ordering::SeqCst), 0);
        svc.shutdown();
    }

    #[test]
    fn periodic_snapshots_fire_every_n_retrains() {
        let corpus = scripts(12);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let path = tmp_snapshot_path("periodic");
        let _ = std::fs::remove_file(&path);
        let options = ServiceOptions {
            retrain_queue_cap: 8,
            snapshot_every_n_retrains: Some(2),
            snapshot_path: Some(path.clone()),
            ..Default::default()
        };
        let svc = PrionnService::spawn_with_options(tiny_cfg(), &refs, options).unwrap();
        for _ in 0..4 {
            svc.retrain_async(TrainingBatch {
                scripts: corpus.clone(),
                runtime_minutes: vec![10.0; corpus.len()],
                ..Default::default()
            });
        }
        let _ = svc.predict(&corpus[..1]).unwrap(); // barrier
        let done = svc.stats().retrains_done.load(Ordering::SeqCst);
        let taken = svc.stats().snapshots_taken.load(Ordering::SeqCst);
        assert_eq!(taken, done / 2, "done {done} taken {taken}");
        assert!(taken >= 1, "at least one periodic snapshot");
        assert!(path.exists(), "snapshot file written");
        assert_eq!(svc.stats().snapshots_failed.load(Ordering::SeqCst), 0);
        svc.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn on_demand_snapshot_round_trips_through_spawn_from_checkpoint() {
        let corpus = scripts(16);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let path = tmp_snapshot_path("ondemand");
        let _ = std::fs::remove_file(&path);
        let options = ServiceOptions {
            snapshot_path: Some(path.clone()),
            ..Default::default()
        };
        let svc = PrionnService::spawn_with_options(tiny_cfg(), &refs, options).unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![10.0; corpus.len()],
            ..Default::default()
        });
        assert!(svc.snapshot_async());
        let before = svc.predict(&corpus[..3]).unwrap(); // barrier + reference
        assert_eq!(svc.stats().snapshots_taken.load(Ordering::SeqCst), 1);
        svc.shutdown();

        // A new process restores the service and serves identical
        // predictions — then keeps learning from the restored weights.
        let restored =
            PrionnService::spawn_from_checkpoint(&path, ServiceOptions::default()).unwrap();
        let after = restored.predict(&corpus[..3]).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.runtime_minutes, a.runtime_minutes);
        }
        restored.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![10.0; corpus.len()],
            ..Default::default()
        });
        let _ = restored.predict(&corpus[..1]).unwrap(); // barrier
        assert_eq!(restored.stats().retrains_done.load(Ordering::SeqCst), 1);
        assert!(restored.last_error().is_none());
        restored.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spawn_from_checkpoint_rejects_garbage_files() {
        let path = tmp_snapshot_path("garbage");
        std::fs::write(&path, b"not a checkpoint at all").unwrap();
        assert!(PrionnService::spawn_from_checkpoint(&path, ServiceOptions::default()).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let corpus = scripts(4);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        drop(svc); // must not hang or panic
    }

    #[test]
    fn worker_panic_surfaces_and_never_wedges_shutdown() {
        let corpus = scripts(4);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        svc.crash_worker_for_test();
        // The crash is queued ahead of this predict, so the RPC must fail
        // (reply channel dropped during unwind or send to a dead worker) —
        // never hang.
        assert!(svc.predict(&corpus[..1]).is_err());
        // The panic handler writes last_error after the unwind finishes;
        // poll briefly rather than racing it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if let Some(err) = svc.last_error() {
                assert!(err.contains("worker panicked"), "{err}");
                assert!(err.contains("injected test panic"), "{err}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "last_error never surfaced the panic"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // Enqueues against the dead worker must not block or panic ...
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![1.0; corpus.len()],
            ..Default::default()
        });
        assert!(svc.model_checkpoint().is_err());
        assert!(!svc.snapshot_async() || svc.last_error().is_some());
        // ... and shutdown joins the already-exited thread immediately.
        svc.shutdown();
    }

    #[test]
    fn model_checkpoint_exports_the_live_model() {
        let corpus = scripts(16);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let svc = PrionnService::spawn(tiny_cfg(), &refs).unwrap();
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![10.0; corpus.len()],
            ..Default::default()
        });
        // The export rides the same FIFO as predicts, so it reflects the
        // completed retrain.
        let ck = svc.model_checkpoint().unwrap();
        let via_service = svc.predict(&corpus[..3]).unwrap();
        let mut restored = Prionn::from_checkpoint(&ck).unwrap();
        assert_eq!(restored.retrain_count(), 1);
        let via_export: Vec<_> = restored
            .predict(&corpus[..3].iter().map(|s| s.as_str()).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(via_service, via_export);
        svc.shutdown();
    }

    #[test]
    fn concurrent_retrains_account_every_batch_and_newest_survives() {
        let corpus = scripts(12);
        let refs: Vec<&str> = corpus.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.epochs = 1;
        let options = ServiceOptions {
            retrain_queue_cap: 2,
            ..Default::default()
        };
        let svc = PrionnService::spawn_with_options(cfg, &refs, options).unwrap();
        // Four submitters race the latest-wins eviction against each other
        // and against the worker's own drains.
        const THREADS: usize = 4;
        const PER_THREAD: usize = 5;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        svc.retrain_async(TrainingBatch {
                            scripts: corpus.clone(),
                            runtime_minutes: vec![10.0; corpus.len()],
                            ..Default::default()
                        });
                    }
                });
            }
        });
        // All submitters done: enqueue one final, newest batch that is
        // deliberately malformed. Latest-wins must never shed it (only
        // older batches are evicted), so it reaches the trainer and fails
        // there — `last_error` is the proof of survival.
        svc.retrain_async(TrainingBatch {
            scripts: corpus.clone(),
            runtime_minutes: vec![1.0], // wrong length
            ..Default::default()
        });
        let _ = svc.predict(&corpus[..1]).unwrap(); // barrier: all ticks drained
        let done = svc.stats().retrains_done.load(Ordering::SeqCst);
        let dropped = svc.stats().retrains_dropped.load(Ordering::SeqCst);
        assert_eq!(
            done + dropped,
            THREADS * PER_THREAD,
            "every good batch either trained ({done}) or was counted shed ({dropped})"
        );
        assert_eq!(svc.stats().retrains_pending.load(Ordering::SeqCst), 0);
        assert!(
            svc.last_error().is_some(),
            "the newest (malformed) batch must survive eviction and reach the trainer"
        );
        svc.shutdown();
    }
}
