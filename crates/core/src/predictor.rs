//! The PRIONN predictor: whole-script mapping + deep classifier heads.

use crate::bins::ValueBins;
use crate::checkpoint::{self, CkptResult};
use prionn_nn::{Adam, ArchConfig, ModelKind, Optimizer, Sequential, SoftmaxCrossEntropy};
use prionn_store::{wire, Checkpoint, StoreError};
use prionn_tensor::{Tensor, TensorError};
use prionn_text::{
    map_corpus_1d, map_corpus_2d, BinaryTransform, CharEmbedding, CharTransform, OneHotTransform,
    SimpleTransform, TransformKind, Word2vecConfig, Word2vecTransform,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result alias matching the tensor substrate.
pub type Result<T> = prionn_tensor::Result<T>;

/// How the runtime head produces a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadKind {
    /// The paper's choice: a softmax over value bins (960 runtime minutes).
    Classifier,
    /// Ablation: a single-output regressor trained with MSE on
    /// `log1p(minutes)`, decoded with `expm1`.
    Regressor,
}

/// Configuration of a [`Prionn`] instance.
#[derive(Debug, Clone)]
pub struct PrionnConfig {
    /// Character transform (paper's production choice: word2vec).
    pub transform: TransformKind,
    /// Deep model family (paper's production choice: the 2-D CNN).
    pub model: ModelKind,
    /// Script grid (paper: 64 × 64).
    pub grid: (usize, usize),
    /// Convolution base width; channel counts scale from this.
    pub base_width: usize,
    /// Insert batch normalisation after every convolution (extension; off
    /// reproduces the paper's architecture).
    pub batch_norm: bool,
    /// Runtime head bins (paper: 960 one-minute bins).
    pub runtime_bins: usize,
    /// Runtime head kind (paper: classifier; regressor is the ablation).
    pub head: HeadKind,
    /// IO head bins (logarithmic byte bins).
    pub io_bins: usize,
    /// Whether to build and train the two IO heads.
    pub predict_io: bool,
    /// Whether to build the power head (watt bins) — the paper's named
    /// future-work resource, implemented here as an extension.
    pub predict_power: bool,
    /// Epochs per retraining event (paper: 10).
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// word2vec training config (used when `transform == Word2vec`).
    pub w2v: Word2vecConfig,
    /// Seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for PrionnConfig {
    fn default() -> Self {
        PrionnConfig {
            transform: TransformKind::Word2vec,
            model: ModelKind::Cnn2d,
            grid: (64, 64),
            base_width: 8,
            batch_norm: false,
            runtime_bins: 960,
            head: HeadKind::Classifier,
            io_bins: 128,
            predict_io: true,
            predict_power: false,
            epochs: 10,
            batch_size: 32,
            lr: 1e-3,
            w2v: Word2vecConfig::default(),
            seed: 0x9a7e,
        }
    }
}

impl PrionnConfig {
    /// A configuration sized for single-core CI-style machines: the same
    /// pipeline with a narrower CNN, coarser heads, and fewer epochs.
    pub fn reduced() -> Self {
        PrionnConfig {
            base_width: 4,
            runtime_bins: 240, // 4-minute resolution
            io_bins: 64,
            epochs: 4,
            ..Default::default()
        }
    }
}

/// One job's predicted resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourcePrediction {
    /// Runtime, minutes.
    pub runtime_minutes: f64,
    /// Total bytes read (0 when IO heads are disabled).
    pub read_bytes: f64,
    /// Total bytes written (0 when IO heads are disabled).
    pub write_bytes: f64,
}

/// The PRIONN tool: a shared script mapping feeding one classifier head per
/// predicted resource. Retraining is warm-started — weights and optimiser
/// state persist across [`Prionn::retrain`] calls, the property the paper
/// relies on to train on only 500 jobs at a time.
pub struct Prionn {
    cfg: PrionnConfig,
    transform: Box<dyn CharTransform>,
    runtime_bins: ValueBins,
    io_bins: ValueBins,
    runtime_model: Sequential,
    read_model: Option<Sequential>,
    write_model: Option<Sequential>,
    power_model: Option<Sequential>,
    power_bins: ValueBins,
    opt_runtime: Adam,
    opt_read: Adam,
    opt_write: Adam,
    opt_power: Adam,
    rng: ChaCha8Rng,
    retrain_count: usize,
    telemetry: Option<PredictorTelemetry>,
}

/// Instrument handles for one predictor, resolved once at attach time.
struct PredictorTelemetry {
    registry: prionn_telemetry::Telemetry,
    retrain_seconds: prionn_telemetry::Histogram,
    retrains_total: prionn_telemetry::Counter,
    predict_seconds: prionn_telemetry::Histogram,
    predictions_total: prionn_telemetry::Counter,
    map_seconds: prionn_telemetry::Histogram,
    last_epoch_loss: prionn_telemetry::Gauge,
    gemm_gflops: prionn_telemetry::Gauge,
    gemm_pack_share: prionn_telemetry::Gauge,
}

impl Prionn {
    /// Build a PRIONN instance. `w2v_corpus` seeds the word2vec character
    /// embedding (any representative set of scripts; the paper trains it on
    /// historical job scripts).
    pub fn new(cfg: PrionnConfig, w2v_corpus: &[&str]) -> Result<Self> {
        let transform: Box<dyn CharTransform> = match cfg.transform {
            TransformKind::Binary => Box::new(BinaryTransform),
            TransformKind::Simple => Box::new(SimpleTransform),
            TransformKind::OneHot => Box::new(OneHotTransform),
            TransformKind::Word2vec => Box::new(Word2vecTransform::train(w2v_corpus, &cfg.w2v)),
        };
        Self::from_transform(cfg, transform)
    }

    /// Build a PRIONN instance around an already-constructed character
    /// transform. This is the checkpoint-restore path: the persisted
    /// word2vec table is rebuilt directly instead of retraining on a corpus.
    fn from_transform(cfg: PrionnConfig, transform: Box<dyn CharTransform>) -> Result<Self> {
        let arch = |classes: usize, seed_salt: u64| -> ArchConfig {
            ArchConfig {
                emb_dim: transform.dim(),
                grid_h: cfg.grid.0,
                grid_w: cfg.grid.1,
                classes,
                base_width: cfg.base_width,
                batch_norm: cfg.batch_norm,
                seed: cfg.seed ^ seed_salt,
            }
        };
        let runtime_classes = match cfg.head {
            HeadKind::Classifier => cfg.runtime_bins,
            HeadKind::Regressor => 1,
        };
        let runtime_model = arch(runtime_classes, 0x1).build(cfg.model)?;
        let (read_model, write_model) = if cfg.predict_io {
            (
                Some(arch(cfg.io_bins, 0x2).build(cfg.model)?),
                Some(arch(cfg.io_bins, 0x3).build(cfg.model)?),
            )
        } else {
            (None, None)
        };
        let power_model = if cfg.predict_power {
            Some(arch(cfg.io_bins, 0x4).build(cfg.model)?)
        } else {
            None
        };
        Ok(Prionn {
            runtime_bins: ValueBins::runtime_minutes_with(cfg.runtime_bins),
            io_bins: ValueBins::io_bytes(cfg.io_bins),
            // Whole-machine power spans ~100 W to ~1 MW; log bins as for IO.
            power_bins: ValueBins::Log {
                lo: 1e2,
                hi: 1e6,
                n: cfg.io_bins,
            },
            runtime_model,
            read_model,
            write_model,
            power_model,
            opt_runtime: Adam::new(cfg.lr),
            opt_read: Adam::new(cfg.lr),
            opt_write: Adam::new(cfg.lr),
            opt_power: Adam::new(cfg.lr),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            transform,
            cfg,
            retrain_count: 0,
            telemetry: None,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PrionnConfig {
        &self.cfg
    }

    /// Attach a telemetry registry. Each head's [`Sequential`] gains
    /// per-layer forward/backward timers and norm gauges (labelled
    /// `model=runtime|read|write|power`), and the predictor itself records
    /// `prionn_retrain_seconds`, `prionn_predict_seconds`,
    /// `prionn_map_seconds`, the matching `_total` counters, the
    /// `prionn_last_epoch_loss` gauge, and one `retrain` span event per
    /// training event. Telemetry is process-local state: it is *not*
    /// persisted by [`Prionn::save`] and must be re-attached after a
    /// restore.
    pub fn set_telemetry(&mut self, registry: &prionn_telemetry::Telemetry) {
        self.runtime_model.set_telemetry(registry, "runtime");
        if let Some(m) = self.read_model.as_mut() {
            m.set_telemetry(registry, "read");
        }
        if let Some(m) = self.write_model.as_mut() {
            m.set_telemetry(registry, "write");
        }
        if let Some(m) = self.power_model.as_mut() {
            m.set_telemetry(registry, "power");
        }
        self.telemetry = Some(PredictorTelemetry {
            retrain_seconds: registry.histogram(
                "prionn_retrain_seconds",
                "Wall time of one warm-started retraining event (all heads)",
            ),
            retrains_total: registry
                .counter("prionn_retrains_total", "Completed retraining events"),
            predict_seconds: registry.histogram(
                "prionn_predict_seconds",
                "Wall time of one predict() call over a script batch",
            ),
            predictions_total: registry.counter(
                "prionn_predictions_total",
                "Scripts predicted (batch sizes summed)",
            ),
            map_seconds: registry.histogram(
                "prionn_map_seconds",
                "Wall time of the script-to-tensor data mapping",
            ),
            last_epoch_loss: registry.gauge(
                "prionn_last_epoch_loss",
                "Mean runtime-head loss of the final epoch of the last retrain",
            ),
            gemm_gflops: registry.gauge(
                "prionn_gemm_gflops",
                "Runtime-head GEMM throughput (GFLOP/s) over the last retrain",
            ),
            gemm_pack_share: registry.gauge(
                "prionn_gemm_pack_share",
                "Fraction of runtime-head GEMM time spent packing panels",
            ),
            registry: registry.clone(),
        });
    }

    /// Number of completed retraining events.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Switch every head between f32 and int8 quantized eval-mode
    /// inference (see `Sequential::set_quantized`). Meant for frozen
    /// serving replicas: training passes stay f32 either way, and a
    /// subsequent [`Prionn::apply_weights_checkpoint`] hot-swap
    /// re-quantizes the incoming weights automatically, so a replica set
    /// quantized once stays quantized across swaps. The mode is
    /// process-local serving state — not persisted by [`Prionn::save`].
    pub fn set_quantized_inference(&mut self, on: bool) {
        self.runtime_model.set_quantized(on);
        if let Some(m) = self.read_model.as_mut() {
            m.set_quantized(on);
        }
        if let Some(m) = self.write_model.as_mut() {
            m.set_quantized(on);
        }
        if let Some(m) = self.power_model.as_mut() {
            m.set_quantized(on);
        }
    }

    /// Whether any head currently serves through quantized weights.
    pub fn quantized_inference(&self) -> bool {
        self.runtime_model.quantized_layers() > 0
    }

    /// Map scripts to the model's input tensor (the paper's "data mapping").
    pub fn map_scripts(&self, scripts: &[&str]) -> Result<Tensor> {
        let (h, w) = self.cfg.grid;
        match self.cfg.model {
            ModelKind::Cnn2d => map_corpus_2d(scripts, self.transform.as_ref(), h, w),
            ModelKind::Nn | ModelKind::Cnn1d => {
                map_corpus_1d(scripts, self.transform.as_ref(), h, w)
            }
        }
    }

    /// Warm-started retraining on recently completed jobs. IO targets may be
    /// empty when the IO heads are disabled.
    pub fn retrain(
        &mut self,
        scripts: &[&str],
        runtime_minutes: &[f64],
        read_bytes: &[f64],
        write_bytes: &[f64],
    ) -> Result<()> {
        if scripts.is_empty() {
            return Err(TensorError::InvalidArgument(
                "retrain on empty batch".into(),
            ));
        }
        if scripts.len() != runtime_minutes.len() {
            return Err(TensorError::LengthMismatch {
                expected: scripts.len(),
                actual: runtime_minutes.len(),
            });
        }
        let started = std::time::Instant::now();
        let map_started = std::time::Instant::now();
        let x = self.map_scripts(scripts)?;
        if let Some(tel) = &self.telemetry {
            tel.map_seconds.observe(map_started.elapsed().as_secs_f64());
        }
        // Window the kernel counters to this retrain so the GEMM gauges
        // report per-retrain efficiency.
        self.runtime_model.reset_scratch_stats();
        let epoch_losses = match self.cfg.head {
            HeadKind::Classifier => {
                let runtime_classes: Vec<usize> = runtime_minutes
                    .iter()
                    .map(|&m| self.runtime_bins.encode(m))
                    .collect();
                self.runtime_model.fit_classes(
                    &x,
                    &runtime_classes,
                    &SoftmaxCrossEntropy,
                    &mut self.opt_runtime,
                    self.cfg.epochs,
                    self.cfg.batch_size,
                    &mut self.rng,
                )?
            }
            HeadKind::Regressor => {
                let scale = (961.0f64).ln() as f32;
                let targets: Vec<f32> = runtime_minutes
                    .iter()
                    .map(|&m| (m.max(0.0) + 1.0).ln() as f32 / scale)
                    .collect();
                let y = Tensor::from_vec([targets.len(), 1], targets)?;
                self.runtime_model.fit_values(
                    &x,
                    &y,
                    &prionn_nn::MseLoss,
                    &mut self.opt_runtime,
                    self.cfg.epochs,
                    self.cfg.batch_size,
                    &mut self.rng,
                )?
            }
        };
        if let Some(read_model) = self.read_model.as_mut() {
            if read_bytes.len() != scripts.len() || write_bytes.len() != scripts.len() {
                return Err(TensorError::LengthMismatch {
                    expected: scripts.len(),
                    actual: read_bytes.len().min(write_bytes.len()),
                });
            }
            let read_classes: Vec<usize> =
                read_bytes.iter().map(|&b| self.io_bins.encode(b)).collect();
            read_model.fit_classes(
                &x,
                &read_classes,
                &SoftmaxCrossEntropy,
                &mut self.opt_read,
                self.cfg.epochs,
                self.cfg.batch_size,
                &mut self.rng,
            )?;
            let write_model = self.write_model.as_mut().expect("io heads built together");
            let write_classes: Vec<usize> = write_bytes
                .iter()
                .map(|&b| self.io_bins.encode(b))
                .collect();
            write_model.fit_classes(
                &x,
                &write_classes,
                &SoftmaxCrossEntropy,
                &mut self.opt_write,
                self.cfg.epochs,
                self.cfg.batch_size,
                &mut self.rng,
            )?;
        }
        self.retrain_count += 1;
        if let Some(tel) = &self.telemetry {
            let secs = started.elapsed().as_secs_f64();
            let last_loss = epoch_losses.last().copied().unwrap_or(f32::NAN);
            tel.retrain_seconds.observe(secs);
            tel.retrains_total.inc();
            if last_loss.is_finite() {
                tel.last_epoch_loss.set(last_loss as f64);
            }
            let kstats = self.runtime_model.scratch_stats();
            tel.gemm_gflops.set(kstats.gemm_gflops());
            tel.gemm_pack_share.set(kstats.gemm_pack_share());
            tel.registry.events().record(
                "retrain",
                format!(
                    "jobs={} epochs={} last_epoch_loss={last_loss:.4}",
                    scripts.len(),
                    self.cfg.epochs
                ),
                (secs * 1e6) as u64,
            );
        }
        Ok(())
    }

    /// Predict resources for a batch of scripts.
    pub fn predict(&mut self, scripts: &[&str]) -> Result<Vec<ResourcePrediction>> {
        if scripts.is_empty() {
            return Ok(Vec::new());
        }
        let started = std::time::Instant::now();
        let tracing = prionn_observe::trace::active();
        let x = {
            let _span = if tracing {
                prionn_observe::trace::child_of_current(|| "map".to_string())
            } else {
                None
            };
            self.map_scripts(scripts)?
        };
        let bs = self.cfg.batch_size.max(1);
        // Each head span is pushed as the implicit context so the per-layer
        // spans opened inside `Sequential::forward` nest under it.
        let head_span = |name: &'static str| -> Option<prionn_observe::Span> {
            if tracing {
                prionn_observe::trace::child_of_current(|| name.to_string())
            } else {
                None
            }
        };
        let runtime: Vec<f64> = {
            let span = head_span("head:runtime");
            let _ctx = prionn_observe::trace::extend_current(
                span.as_ref()
                    .map_or(prionn_observe::SpanCtx::NONE, |s| s.ctx()),
            );
            match self.cfg.head {
                HeadKind::Classifier => self
                    .runtime_model
                    .predict_classes(&x, bs)?
                    .into_iter()
                    .map(|c| self.runtime_bins.decode(c))
                    .collect(),
                HeadKind::Regressor => {
                    let scale = (961.0f64).ln();
                    self.runtime_model
                        .predict(&x, bs)?
                        .as_slice()
                        .iter()
                        .map(|&v| ((v as f64 * scale).exp() - 1.0).clamp(0.0, 960.0))
                        .collect()
                }
            }
        };
        let read = match self.read_model.as_mut() {
            Some(m) => {
                let span = head_span("head:read");
                let _ctx = prionn_observe::trace::extend_current(
                    span.as_ref()
                        .map_or(prionn_observe::SpanCtx::NONE, |s| s.ctx()),
                );
                Some(m.predict_classes(&x, bs)?)
            }
            None => None,
        };
        let write = match self.write_model.as_mut() {
            Some(m) => {
                let span = head_span("head:write");
                let _ctx = prionn_observe::trace::extend_current(
                    span.as_ref()
                        .map_or(prionn_observe::SpanCtx::NONE, |s| s.ctx()),
                );
                Some(m.predict_classes(&x, bs)?)
            }
            None => None,
        };
        if let Some(tel) = &self.telemetry {
            tel.predict_seconds.observe(started.elapsed().as_secs_f64());
            tel.predictions_total.add(scripts.len() as u64);
        }
        Ok((0..scripts.len())
            .map(|i| ResourcePrediction {
                runtime_minutes: runtime[i],
                read_bytes: read.as_ref().map_or(0.0, |r| self.io_bins.decode(r[i])),
                write_bytes: write.as_ref().map_or(0.0, |w| self.io_bins.decode(w[i])),
            })
            .collect())
    }

    /// Train the power head (extension) on completed jobs' mean watt draw.
    /// Requires `predict_power` in the config.
    pub fn retrain_power(&mut self, scripts: &[&str], watts: &[f64]) -> Result<()> {
        let Some(model) = self.power_model.as_mut() else {
            return Err(TensorError::InvalidArgument(
                "power head disabled (set predict_power)".into(),
            ));
        };
        if scripts.is_empty() || scripts.len() != watts.len() {
            return Err(TensorError::LengthMismatch {
                expected: scripts.len(),
                actual: watts.len(),
            });
        }
        let (h, w) = self.cfg.grid;
        let x = match self.cfg.model {
            ModelKind::Cnn2d => map_corpus_2d(scripts, self.transform.as_ref(), h, w)?,
            _ => map_corpus_1d(scripts, self.transform.as_ref(), h, w)?,
        };
        let classes: Vec<usize> = watts.iter().map(|&p| self.power_bins.encode(p)).collect();
        model.fit_classes(
            &x,
            &classes,
            &SoftmaxCrossEntropy,
            &mut self.opt_power,
            self.cfg.epochs,
            self.cfg.batch_size,
            &mut self.rng,
        )?;
        Ok(())
    }

    /// Predict mean power draw (watts) for scripts (extension head).
    pub fn predict_power(&mut self, scripts: &[&str]) -> Result<Vec<f64>> {
        let Some(model) = self.power_model.as_mut() else {
            return Err(TensorError::InvalidArgument(
                "power head disabled (set predict_power)".into(),
            ));
        };
        if scripts.is_empty() {
            return Ok(Vec::new());
        }
        let (h, w) = self.cfg.grid;
        let x = match self.cfg.model {
            ModelKind::Cnn2d => map_corpus_2d(scripts, self.transform.as_ref(), h, w)?,
            _ => map_corpus_1d(scripts, self.transform.as_ref(), h, w)?,
        };
        let classes = model.predict_classes(&x, self.cfg.batch_size.max(1))?;
        Ok(classes
            .into_iter()
            .map(|c| self.power_bins.decode(c))
            .collect())
    }

    /// Snapshot all learned parameters (runtime head first, then the IO
    /// heads when present) for persistence or transfer to another node.
    pub fn export_state(&self) -> Vec<Tensor> {
        let mut state = self.runtime_model.state();
        if let (Some(r), Some(w)) = (&self.read_model, &self.write_model) {
            state.extend(r.state());
            state.extend(w.state());
        }
        state
    }

    /// Restore parameters exported by [`Prionn::export_state`] from a model
    /// with the identical configuration.
    pub fn import_state(&mut self, state: &[Tensor]) -> Result<()> {
        let runtime_len = self.runtime_model.state().len();
        self.runtime_model
            .load_state(&state[..runtime_len.min(state.len())])?;
        if let (Some(r), Some(w)) = (self.read_model.as_mut(), self.write_model.as_mut()) {
            let r_len = r.state().len();
            let expected = runtime_len + 2 * r_len;
            if state.len() != expected {
                return Err(TensorError::LengthMismatch {
                    expected,
                    actual: state.len(),
                });
            }
            r.load_state(&state[runtime_len..runtime_len + r_len])?;
            w.load_state(&state[runtime_len + r_len..])?;
        } else if state.len() != runtime_len {
            return Err(TensorError::LengthMismatch {
                expected: runtime_len,
                actual: state.len(),
            });
        }
        Ok(())
    }

    /// Mean cross-entropy of the runtime head on a labelled batch, without
    /// updating weights. Diagnostic/tuning helper.
    pub fn probe_runtime_loss(&mut self, scripts: &[&str], runtime_minutes: &[f64]) -> Result<f64> {
        let x = self.map_scripts(scripts)?;
        let logits = self.runtime_model.predict(&x, self.cfg.batch_size.max(1))?;
        let classes: Vec<usize> = runtime_minutes
            .iter()
            .map(|&m| self.runtime_bins.encode(m))
            .collect();
        let (loss, _) = prionn_nn::Loss::loss_and_grad(
            &SoftmaxCrossEntropy,
            &logits,
            &prionn_nn::LossTarget::Classes(&classes),
            &mut prionn_tensor::Scratch::new(),
        )?;
        Ok(loss as f64)
    }

    /// Predicted read/write *bandwidths* (bytes/s) derived the paper's way:
    /// predicted volume divided by predicted runtime (§3.2).
    pub fn bandwidth_of(pred: &ResourcePrediction) -> (f64, f64) {
        let secs = (pred.runtime_minutes * 60.0).max(1.0);
        (pred.read_bytes / secs, pred.write_bytes / secs)
    }

    /// Persist the full predictor state to `path` atomically (tmp + fsync +
    /// rename): config, transform table, bin edges, every head's weights,
    /// every optimiser's moment buffers, the RNG stream position, and the
    /// retrain counter. [`Prionn::load`] restores a bit-identical predictor.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> CkptResult<()> {
        self.to_checkpoint()?.write_atomic(path)
    }

    /// Restore a predictor saved by [`Prionn::save`]. Corrupted or truncated
    /// files return an error — never a panic, never a silently wrong model.
    pub fn load(path: impl AsRef<std::path::Path>) -> CkptResult<Self> {
        Self::from_checkpoint(&Checkpoint::read(path)?)
    }

    /// Assemble the in-memory checkpoint (see [`Prionn::save`]).
    pub fn to_checkpoint(&self) -> CkptResult<Checkpoint> {
        let mut ck = Checkpoint::new();
        ck.insert("config", checkpoint::encode_config(&self.cfg))?;
        if let Some((dim, table)) = self.transform.export_table() {
            let mut buf = Vec::new();
            wire::put_u64(&mut buf, dim as u64);
            wire::put_f32_slice(&mut buf, &table);
            ck.insert("transform", buf)?;
        }
        let mut bins = Vec::new();
        checkpoint::encode_bins(&mut bins, &self.runtime_bins);
        checkpoint::encode_bins(&mut bins, &self.io_bins);
        checkpoint::encode_bins(&mut bins, &self.power_bins);
        ck.insert("bins", bins)?;

        ck.insert(
            "model.runtime",
            checkpoint::encode_state_dict(&self.runtime_model.state_dict()),
        )?;
        ck.insert(
            "opt.runtime",
            checkpoint::encode_opt_state(&self.opt_runtime.export_state()),
        )?;
        if let (Some(read), Some(write)) = (&self.read_model, &self.write_model) {
            ck.insert(
                "model.read",
                checkpoint::encode_state_dict(&read.state_dict()),
            )?;
            ck.insert(
                "opt.read",
                checkpoint::encode_opt_state(&self.opt_read.export_state()),
            )?;
            ck.insert(
                "model.write",
                checkpoint::encode_state_dict(&write.state_dict()),
            )?;
            ck.insert(
                "opt.write",
                checkpoint::encode_opt_state(&self.opt_write.export_state()),
            )?;
        }
        if let Some(power) = &self.power_model {
            ck.insert(
                "model.power",
                checkpoint::encode_state_dict(&power.state_dict()),
            )?;
            ck.insert(
                "opt.power",
                checkpoint::encode_opt_state(&self.opt_power.export_state()),
            )?;
        }

        let mut rng_buf = Vec::new();
        rng_buf.extend_from_slice(&self.rng.get_seed());
        wire::put_u128(&mut rng_buf, self.rng.get_word_pos());
        ck.insert("rng", rng_buf)?;

        let mut trainer = Vec::new();
        wire::put_u64(&mut trainer, self.retrain_count as u64);
        ck.insert("trainer", trainer)?;
        Ok(ck)
    }

    /// An independent replica of this predictor: same configuration,
    /// transform, bins, weights, optimiser state, and RNG position. Built
    /// through the checkpoint round trip, so the replica is bit-identical —
    /// it serves exactly the predictions this instance would. This is how
    /// the serving gateway fans one trained model out to N worker threads.
    pub fn fork_replica(&self) -> CkptResult<Self> {
        Self::from_checkpoint(&self.to_checkpoint()?)
    }

    /// Only the learned head weights, in checkpoint section format
    /// (`model.runtime` [+ `model.read`/`model.write`/`model.power`]).
    /// This is the hot-swap payload broadcast to serving replicas after a
    /// retrain: weights are all a frozen serving replica needs, so the
    /// optimiser moments, RNG stream, and transform table stay out of the
    /// per-swap cost.
    pub fn weights_checkpoint(&self) -> CkptResult<Checkpoint> {
        let mut ck = Checkpoint::new();
        ck.insert(
            "model.runtime",
            checkpoint::encode_state_dict(&self.runtime_model.state_dict()),
        )?;
        if let (Some(read), Some(write)) = (&self.read_model, &self.write_model) {
            ck.insert(
                "model.read",
                checkpoint::encode_state_dict(&read.state_dict()),
            )?;
            ck.insert(
                "model.write",
                checkpoint::encode_state_dict(&write.state_dict()),
            )?;
        }
        if let Some(power) = &self.power_model {
            ck.insert(
                "model.power",
                checkpoint::encode_state_dict(&power.state_dict()),
            )?;
        }
        Ok(ck)
    }

    /// Apply a weight set produced by [`Prionn::weights_checkpoint`] on a
    /// predictor with the identical architecture. Every head is decoded and
    /// shape-checked *before* any weight is written, so a mismatched or
    /// corrupt payload leaves the current weights fully intact — the
    /// all-or-nothing property the replica hot-swap protocol relies on.
    pub fn apply_weights_checkpoint(&mut self, ck: &Checkpoint) -> CkptResult<()> {
        fn mismatch(what: &str, e: TensorError) -> StoreError {
            StoreError::Corrupt(format!("{what}: {e}"))
        }
        let runtime = checkpoint::decode_state_dict(ck.require("model.runtime")?)?;
        let io = if self.read_model.is_some() {
            Some((
                checkpoint::decode_state_dict(ck.require("model.read")?)?,
                checkpoint::decode_state_dict(ck.require("model.write")?)?,
            ))
        } else {
            None
        };
        let power = if self.power_model.is_some() {
            Some(checkpoint::decode_state_dict(ck.require("model.power")?)?)
        } else {
            None
        };
        // load_state_dict validates a whole dict before touching its model,
        // so each head is individually all-or-nothing; roll back the
        // already-swapped heads if a later one rejects, keeping the swap
        // atomic across heads too.
        type HeadSwap<'a> = (&'static str, &'a mut Sequential, Vec<(String, Tensor)>);
        let mut heads: Vec<HeadSwap<'_>> =
            vec![("model.runtime", &mut self.runtime_model, runtime)];
        if let Some((read, write)) = io {
            heads.push((
                "model.read",
                self.read_model.as_mut().expect("checked above"),
                read,
            ));
            heads.push((
                "model.write",
                self.write_model.as_mut().expect("io heads built together"),
                write,
            ));
        }
        if let Some(power) = power {
            heads.push((
                "model.power",
                self.power_model.as_mut().expect("checked above"),
                power,
            ));
        }
        let mut prevs: Vec<Vec<(String, Tensor)>> = Vec::with_capacity(heads.len());
        let mut failed: Option<(&'static str, TensorError)> = None;
        for (what, model, dict) in heads.iter_mut() {
            let prev = model.state_dict();
            match model.load_state_dict(dict) {
                Ok(()) => prevs.push(prev),
                Err(e) => {
                    failed = Some((*what, e));
                    break;
                }
            }
        }
        if let Some((what, e)) = failed {
            // `prevs` holds exactly the heads that already swapped.
            for ((_, model, _), prev) in heads.iter_mut().zip(&prevs) {
                model.load_state_dict(prev).expect("rollback of own state");
            }
            return Err(mismatch(what, e));
        }
        Ok(())
    }

    /// Rebuild a predictor from an in-memory checkpoint (see
    /// [`Prionn::load`]).
    pub fn from_checkpoint(ck: &Checkpoint) -> CkptResult<Self> {
        // Model/architecture mismatches surface as tensor errors from the
        // shape-validated loads below; report them as checkpoint corruption.
        fn mismatch(what: &str, e: TensorError) -> StoreError {
            StoreError::Corrupt(format!("{what}: {e}"))
        }

        let cfg = checkpoint::decode_config(ck.require("config")?)?;
        let transform: Box<dyn CharTransform> = match cfg.transform {
            TransformKind::Binary => Box::new(BinaryTransform),
            TransformKind::Simple => Box::new(SimpleTransform),
            TransformKind::OneHot => Box::new(OneHotTransform),
            TransformKind::Word2vec => {
                let mut r = wire::Reader::new(ck.require("transform")?);
                let dim = r.get_usize("transform.dim")?;
                let table = r.get_f32_vec("transform.table")?;
                r.expect_end("transform")?;
                let emb = CharEmbedding::from_parts(dim, table).ok_or_else(|| {
                    StoreError::Corrupt(format!("transform table is not VOCAB x {dim}"))
                })?;
                Box::new(Word2vecTransform::new(emb))
            }
        };
        let mut p =
            Self::from_transform(cfg, transform).map_err(|e| mismatch("rebuild model", e))?;

        let mut bins = wire::Reader::new(ck.require("bins")?);
        p.runtime_bins = checkpoint::decode_bins(&mut bins)?;
        p.io_bins = checkpoint::decode_bins(&mut bins)?;
        p.power_bins = checkpoint::decode_bins(&mut bins)?;
        bins.expect_end("bins")?;

        p.runtime_model
            .load_state_dict(&checkpoint::decode_state_dict(
                ck.require("model.runtime")?,
            )?)
            .map_err(|e| mismatch("model.runtime", e))?;
        p.opt_runtime
            .import_state(&checkpoint::decode_opt_state(ck.require("opt.runtime")?)?)
            .map_err(|e| mismatch("opt.runtime", e))?;
        if p.cfg.predict_io {
            p.read_model
                .as_mut()
                .expect("predict_io builds the read head")
                .load_state_dict(&checkpoint::decode_state_dict(ck.require("model.read")?)?)
                .map_err(|e| mismatch("model.read", e))?;
            p.opt_read
                .import_state(&checkpoint::decode_opt_state(ck.require("opt.read")?)?)
                .map_err(|e| mismatch("opt.read", e))?;
            p.write_model
                .as_mut()
                .expect("predict_io builds the write head")
                .load_state_dict(&checkpoint::decode_state_dict(ck.require("model.write")?)?)
                .map_err(|e| mismatch("model.write", e))?;
            p.opt_write
                .import_state(&checkpoint::decode_opt_state(ck.require("opt.write")?)?)
                .map_err(|e| mismatch("opt.write", e))?;
        }
        if p.cfg.predict_power {
            p.power_model
                .as_mut()
                .expect("predict_power builds the power head")
                .load_state_dict(&checkpoint::decode_state_dict(ck.require("model.power")?)?)
                .map_err(|e| mismatch("model.power", e))?;
            p.opt_power
                .import_state(&checkpoint::decode_opt_state(ck.require("opt.power")?)?)
                .map_err(|e| mismatch("opt.power", e))?;
        }

        let mut rng = wire::Reader::new(ck.require("rng")?);
        let seed: [u8; 32] = rng.get_array("rng.seed")?;
        let word_pos = rng.get_u128("rng.word_pos")?;
        rng.expect_end("rng")?;
        p.rng = ChaCha8Rng::from_seed(seed);
        p.rng.set_word_pos(word_pos);

        let mut trainer = wire::Reader::new(ck.require("trainer")?);
        p.retrain_count = trainer.get_usize("trainer.retrain_count")?;
        trainer.expect_end("trainer")?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PrionnConfig {
        PrionnConfig {
            grid: (16, 16),
            base_width: 2,
            runtime_bins: 16,
            io_bins: 8,
            epochs: 6,
            batch_size: 8,
            lr: 3e-3,
            ..Default::default()
        }
    }

    fn corpus() -> Vec<String> {
        // Two visually distinct script families with distinct runtimes/IO.
        let mut scripts = Vec::new();
        for i in 0..12 {
            scripts.push(format!(
                "#!/bin/bash\n#SBATCH -N 2\nsrun ./short_app run{i}\n"
            ));
            scripts.push(format!(
                "#!/bin/bash\n#SBATCH -N 64\nmodule load big\nsrun ./long_app case{i}\nsync\n"
            ));
        }
        scripts
    }

    #[test]
    fn learns_to_separate_two_script_families() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut p = Prionn::new(tiny_cfg(), &refs).unwrap();
        // short_app -> ~100 min bin range; long_app -> ~800 min.
        let runtimes: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 100.0 } else { 800.0 })
            .collect();
        let reads: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 1e7 } else { 1e12 })
            .collect();
        let writes = reads.clone();
        for _ in 0..8 {
            p.retrain(&refs, &runtimes, &reads, &writes).unwrap();
        }
        let preds = p.predict(&refs[..4]).unwrap();
        assert!(
            preds[0].runtime_minutes < preds[1].runtime_minutes,
            "short {} vs long {}",
            preds[0].runtime_minutes,
            preds[1].runtime_minutes
        );
        assert!(preds[0].read_bytes < preds[1].read_bytes);
    }

    #[test]
    fn predict_attaches_map_and_head_spans_under_a_trace_context() {
        use prionn_observe::{trace, FlightConfig, FlightRecorder, Tracer};
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut p = Prionn::new(tiny_cfg(), &refs).unwrap();

        let rec = FlightRecorder::new(FlightConfig::default());
        let tracer = Tracer::new(&rec);
        let root = tracer.root("predict");
        {
            let _ctx = trace::push_current(&tracer, root.ctx());
            p.predict(&refs[..2]).unwrap();
        }
        let root_ctx = root.ctx();
        drop(root);

        let spans = rec.snapshot();
        let map = spans.iter().find(|s| s.name == "map").unwrap();
        assert_eq!(map.trace_id, root_ctx.trace_id);
        assert_eq!(map.parent_id, root_ctx.span_id);
        for head in ["head:runtime", "head:read", "head:write"] {
            let span = spans
                .iter()
                .find(|s| s.name == head)
                .unwrap_or_else(|| panic!("missing {head} span"));
            assert_eq!(span.parent_id, root_ctx.span_id);
            // Per-layer spans nest under the head span, not the root.
            assert!(
                spans
                    .iter()
                    .any(|s| s.parent_id == span.span_id && s.name.starts_with("layer:")),
                "no layer spans under {head}"
            );
        }
        // Untraced predictions record nothing new.
        let before = rec.snapshot().len();
        p.predict(&refs[..2]).unwrap();
        assert_eq!(rec.snapshot().len(), before);
    }

    #[test]
    fn retrain_counts_and_is_warm() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.predict_io = false;
        let mut p = Prionn::new(cfg, &refs).unwrap();
        let runtimes = vec![100.0; refs.len()];
        p.retrain(&refs, &runtimes, &[], &[]).unwrap();
        p.retrain(&refs, &runtimes, &[], &[]).unwrap();
        assert_eq!(p.retrain_count(), 2);
    }

    #[test]
    fn io_heads_disabled_predict_zero_bytes() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.predict_io = false;
        let mut p = Prionn::new(cfg, &refs).unwrap();
        p.retrain(&refs, &vec![50.0; refs.len()], &[], &[]).unwrap();
        let preds = p.predict(&refs[..2]).unwrap();
        assert_eq!(preds[0].read_bytes, 0.0);
        assert_eq!(preds[0].write_bytes, 0.0);
    }

    #[test]
    fn rejects_mismatched_targets_and_empty_batches() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut p = Prionn::new(tiny_cfg(), &refs).unwrap();
        assert!(p.retrain(&refs, &[1.0], &[], &[]).is_err());
        assert!(p.retrain(&[], &[], &[], &[]).is_err());
        let empty: Vec<ResourcePrediction> = p.predict(&[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn power_head_learns_to_separate_draws() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.predict_io = false;
        cfg.predict_power = true;
        cfg.epochs = 10;
        let mut p = Prionn::new(cfg, &refs).unwrap();
        // short_app draws ~600 W (2 nodes), long_app ~19 kW (64 nodes).
        let watts: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 600.0 } else { 19_000.0 })
            .collect();
        for _ in 0..4 {
            p.retrain_power(&refs, &watts).unwrap();
        }
        let preds = p.predict_power(&refs[..4]).unwrap();
        assert!(preds[0] < preds[1], "low {} vs high {}", preds[0], preds[1]);
        assert!(preds.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn power_head_disabled_errors() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut p = Prionn::new(tiny_cfg(), &refs).unwrap();
        assert!(p.retrain_power(&refs, &vec![100.0; refs.len()]).is_err());
        assert!(p.predict_power(&refs[..1]).is_err());
    }

    #[test]
    fn exported_state_transfers_predictions_to_a_fresh_model() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut a = Prionn::new(tiny_cfg(), &refs).unwrap();
        let runtimes: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 30.0 } else { 500.0 })
            .collect();
        let io: Vec<f64> = vec![1e9; refs.len()];
        a.retrain(&refs, &runtimes, &io, &io).unwrap();

        let mut cfg_b = tiny_cfg();
        cfg_b.seed ^= 0xdead; // different init...
        let mut b = Prionn::new(cfg_b, &refs).unwrap();
        b.import_state(&a.export_state()).unwrap();
        assert_eq!(
            a.predict(&refs[..3]).unwrap(),
            b.predict(&refs[..3]).unwrap()
        );
    }

    #[test]
    fn import_state_rejects_wrong_length() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let a = Prionn::new(tiny_cfg(), &refs).unwrap();
        let mut b = Prionn::new(tiny_cfg(), &refs).unwrap();
        let mut state = a.export_state();
        state.pop();
        assert!(b.import_state(&state).is_err());
    }

    fn tmp_ckpt_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("prionn-pred-{tag}-{}.ckpt", std::process::id()))
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut a = Prionn::new(tiny_cfg(), &refs).unwrap();
        let runtimes: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 30.0 } else { 500.0 })
            .collect();
        let io: Vec<f64> = vec![1e9; refs.len()];
        a.retrain(&refs, &runtimes, &io, &io).unwrap();

        let path = tmp_ckpt_path("roundtrip");
        a.save(&path).unwrap();
        let mut b = Prionn::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(b.retrain_count(), a.retrain_count());
        let pa = a.predict(&refs[..4]).unwrap();
        let pb = b.predict(&refs[..4]).unwrap();
        assert_eq!(pa, pb, "restored predictions must be bit-identical");

        // Warm restart: a retrain on both instances stays in lockstep
        // because weights, optimiser moments, and the RNG stream position
        // were all restored.
        a.retrain(&refs, &runtimes, &io, &io).unwrap();
        b.retrain(&refs, &runtimes, &io, &io).unwrap();
        assert_eq!(
            a.predict(&refs[..4]).unwrap(),
            b.predict(&refs[..4]).unwrap()
        );
    }

    #[test]
    fn save_load_save_produces_identical_bytes() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut a = Prionn::new(tiny_cfg(), &refs).unwrap();
        a.retrain(
            &refs,
            &vec![60.0; refs.len()],
            &vec![1e8; refs.len()],
            &vec![1e8; refs.len()],
        )
        .unwrap();
        let first = a.to_checkpoint().unwrap().to_bytes();
        let b = Prionn::from_checkpoint(&prionn_store::Checkpoint::from_bytes(&first).unwrap())
            .unwrap();
        assert_eq!(b.to_checkpoint().unwrap().to_bytes(), first);
    }

    #[test]
    fn load_rejects_checkpoint_for_different_architecture() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let a = Prionn::new(tiny_cfg(), &refs).unwrap();
        let mut bytes = a.to_checkpoint().unwrap().to_bytes();
        // Corrupting any single byte must yield Err, not a panic. Sweep a
        // sparse sample (the store property tests sweep exhaustively).
        for i in (0..bytes.len()).step_by(97) {
            bytes[i] ^= 0x5a;
            let result = prionn_store::Checkpoint::from_bytes(&bytes)
                .and_then(|ck| Prionn::from_checkpoint(&ck));
            assert!(result.is_err(), "flipped byte {i} must not load");
            bytes[i] ^= 0x5a;
        }
    }

    #[test]
    fn power_head_state_survives_the_round_trip() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.predict_io = false;
        cfg.predict_power = true;
        let mut a = Prionn::new(cfg, &refs).unwrap();
        let watts: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 600.0 } else { 19_000.0 })
            .collect();
        a.retrain_power(&refs, &watts).unwrap();
        let mut b = Prionn::from_checkpoint(&a.to_checkpoint().unwrap()).unwrap();
        assert_eq!(
            a.predict_power(&refs[..4]).unwrap(),
            b.predict_power(&refs[..4]).unwrap()
        );
    }

    #[test]
    fn fork_replica_is_bit_identical_and_independent() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut a = Prionn::new(tiny_cfg(), &refs).unwrap();
        let runtimes: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 30.0 } else { 500.0 })
            .collect();
        let io = vec![1e9; refs.len()];
        a.retrain(&refs, &runtimes, &io, &io).unwrap();
        let mut replica = a.fork_replica().unwrap();
        assert_eq!(
            a.predict(&refs[..4]).unwrap(),
            replica.predict(&refs[..4]).unwrap()
        );
        // Independence: training the original must not move the replica.
        let before = replica.predict(&refs[..2]).unwrap();
        a.retrain(&refs, &runtimes, &io, &io).unwrap();
        assert_eq!(replica.predict(&refs[..2]).unwrap(), before);
    }

    #[test]
    fn weights_checkpoint_hot_swaps_a_replica_onto_new_weights() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut master = Prionn::new(tiny_cfg(), &refs).unwrap();
        let runtimes: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 30.0 } else { 500.0 })
            .collect();
        let io = vec![1e9; refs.len()];
        master.retrain(&refs, &runtimes, &io, &io).unwrap();
        let mut replica = master.fork_replica().unwrap();

        // Master keeps learning; the replica is now stale ...
        for _ in 0..3 {
            master.retrain(&refs, &runtimes, &io, &io).unwrap();
        }
        // ... until the weight broadcast catches it up exactly.
        let weights = master.weights_checkpoint().unwrap();
        replica.apply_weights_checkpoint(&weights).unwrap();
        assert_eq!(
            master.predict(&refs[..4]).unwrap(),
            replica.predict(&refs[..4]).unwrap()
        );
    }

    #[test]
    fn apply_weights_checkpoint_rejects_bad_payloads_atomically() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut a = Prionn::new(tiny_cfg(), &refs).unwrap();
        let runtimes = vec![60.0; refs.len()];
        let io = vec![1e8; refs.len()];
        a.retrain(&refs, &runtimes, &io, &io).unwrap();
        let before = a.predict(&refs[..4]).unwrap();

        // A wider architecture's weights must be rejected outright.
        let mut wide_cfg = tiny_cfg();
        wide_cfg.base_width = 4;
        let wide = Prionn::new(wide_cfg, &refs).unwrap();
        assert!(a
            .apply_weights_checkpoint(&wide.weights_checkpoint().unwrap())
            .is_err());
        assert_eq!(a.predict(&refs[..4]).unwrap(), before);

        // A payload whose runtime head is valid but whose read head is the
        // wrong shape must roll the runtime head back: no torn mix.
        let mut donor = Prionn::new(tiny_cfg(), &refs).unwrap();
        donor.retrain(&refs, &runtimes, &io, &io).unwrap();
        let good = donor.weights_checkpoint().unwrap();
        let wide_ck = wide.weights_checkpoint().unwrap();
        let mut mixed = prionn_store::Checkpoint::new();
        mixed
            .insert("model.runtime", good.get("model.runtime").unwrap().to_vec())
            .unwrap();
        mixed
            .insert("model.read", wide_ck.get("model.read").unwrap().to_vec())
            .unwrap();
        mixed
            .insert("model.write", good.get("model.write").unwrap().to_vec())
            .unwrap();
        assert!(a.apply_weights_checkpoint(&mixed).is_err());
        assert_eq!(a.predict(&refs[..4]).unwrap(), before);

        // A missing section errors too.
        assert!(a
            .apply_weights_checkpoint(&prionn_store::Checkpoint::new())
            .is_err());
        assert_eq!(a.predict(&refs[..4]).unwrap(), before);
    }

    /// The acceptance bound for int8 serving: on the paper-style
    /// relativeAccuracy evaluation (Equation 1), quantized predictions may
    /// shift the mean score by at most 0.01 versus f32.
    #[test]
    fn quantized_inference_keeps_relative_accuracy_within_bound() {
        use crate::metrics::relative_accuracy;
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut p = Prionn::new(tiny_cfg(), &refs).unwrap();
        let runtimes: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 100.0 } else { 800.0 })
            .collect();
        let reads: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 1e7 } else { 1e12 })
            .collect();
        for _ in 0..8 {
            p.retrain(&refs, &runtimes, &reads, &reads).unwrap();
        }
        let mean_acc = |preds: &[ResourcePrediction]| -> f64 {
            preds
                .iter()
                .zip(&runtimes)
                .map(|(pr, &t)| relative_accuracy(t, pr.runtime_minutes))
                .sum::<f64>()
                / preds.len() as f64
        };
        let f32_preds = p.predict(&refs).unwrap();
        assert!(!p.quantized_inference());
        p.set_quantized_inference(true);
        assert!(p.quantized_inference());
        let q_preds = p.predict(&refs).unwrap();
        let delta = (mean_acc(&f32_preds) - mean_acc(&q_preds)).abs();
        assert!(delta <= 0.01, "quantized relativeAccuracy delta {delta}");
        // Quantization survives a weight hot-swap and keeps tracking the
        // new weights.
        p.retrain(&refs, &runtimes, &reads, &reads).unwrap();
        let weights = p.weights_checkpoint().unwrap();
        let mut replica = p.fork_replica().unwrap();
        replica.set_quantized_inference(true);
        replica.apply_weights_checkpoint(&weights).unwrap();
        assert!(replica.quantized_inference());
        let rq = replica.predict(&refs).unwrap();
        let delta2 = (mean_acc(&p.predict(&refs).unwrap()) - mean_acc(&rq)).abs();
        assert!(delta2 <= 0.01, "post-swap delta {delta2}");
        p.set_quantized_inference(false);
        assert!(!p.quantized_inference());
    }

    #[test]
    fn bandwidth_derivation_divides_by_runtime() {
        let pred = ResourcePrediction {
            runtime_minutes: 10.0,
            read_bytes: 6e8,
            write_bytes: 1.2e9,
        };
        let (r, w) = Prionn::bandwidth_of(&pred);
        assert!((r - 1e6).abs() < 1.0);
        assert!((w - 2e6).abs() < 1.0);
    }

    #[test]
    fn regression_head_learns_the_same_separation() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let mut cfg = tiny_cfg();
        cfg.head = HeadKind::Regressor;
        cfg.predict_io = false;
        cfg.epochs = 20;
        cfg.lr = 5e-3;
        let mut p = Prionn::new(cfg, &refs).unwrap();
        let runtimes: Vec<f64> = (0..refs.len())
            .map(|i| if i % 2 == 0 { 20.0 } else { 700.0 })
            .collect();
        for _ in 0..4 {
            p.retrain(&refs, &runtimes, &[], &[]).unwrap();
        }
        let preds = p.predict(&refs[..4]).unwrap();
        assert!(
            preds[0].runtime_minutes < preds[1].runtime_minutes,
            "short {} vs long {}",
            preds[0].runtime_minutes,
            preds[1].runtime_minutes
        );
        for pr in &preds {
            assert!((0.0..=960.0).contains(&pr.runtime_minutes));
        }
    }

    #[test]
    fn all_transforms_construct() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        for t in TransformKind::ALL {
            let mut cfg = tiny_cfg();
            cfg.transform = t;
            cfg.predict_io = false;
            let p = Prionn::new(cfg, &refs).unwrap();
            assert!(p.map_scripts(&refs[..2]).is_ok(), "{t:?}");
        }
    }

    #[test]
    fn all_model_kinds_train_one_step() {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        for m in ModelKind::ALL {
            let mut cfg = tiny_cfg();
            cfg.model = m;
            cfg.predict_io = false;
            cfg.epochs = 1;
            let mut p = Prionn::new(cfg, &refs).unwrap();
            p.retrain(&refs, &vec![10.0; refs.len()], &[], &[]).unwrap();
            assert_eq!(p.predict(&refs[..1]).unwrap().len(), 1, "{m:?}");
        }
    }
}
