//! Value binning for the classifier heads.
//!
//! The paper's deep models are classifiers: "each node in the final output
//! layer is associated with a value or range of values … for runtime
//! predictions, the output layer is 960 nodes in size where each node is
//! associated with a runtime in minutes between 0 and 960 minutes". IO
//! volumes span ten orders of magnitude, so their bins are logarithmic.

use serde::{Deserialize, Serialize};

/// A monotone mapping between values and classifier bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValueBins {
    /// `n` equal-width bins over `[lo, hi]`; bin `i` decodes to its centre.
    Linear {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Bin count.
        n: usize,
    },
    /// `n` equal-ratio bins over `[lo, hi]` (`lo > 0`); bin `i` decodes to
    /// its geometric centre. Values `<= lo` land in bin 0.
    Log {
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Bin count.
        n: usize,
    },
}

impl ValueBins {
    /// The paper's runtime head: 960 one-minute bins.
    pub fn runtime_minutes() -> Self {
        ValueBins::Linear {
            lo: 0.0,
            hi: 960.0,
            n: 960,
        }
    }

    /// A runtime head with a custom resolution (used by reduced-scale
    /// experiment configs).
    pub fn runtime_minutes_with(n: usize) -> Self {
        ValueBins::Linear {
            lo: 0.0,
            hi: 960.0,
            n,
        }
    }

    /// IO-volume head: logarithmic bins from 100 KB to 100 TB.
    pub fn io_bytes(n: usize) -> Self {
        ValueBins::Log {
            lo: 1e5,
            hi: 1e14,
            n,
        }
    }

    /// Bin count (the classifier head width).
    pub fn n_bins(&self) -> usize {
        match self {
            ValueBins::Linear { n, .. } | ValueBins::Log { n, .. } => *n,
        }
    }

    /// The class index for a value (clamped to the range).
    pub fn encode(&self, value: f64) -> usize {
        match *self {
            ValueBins::Linear { lo, hi, n } => {
                let v = value.clamp(lo, hi);
                (((v - lo) / (hi - lo) * n as f64) as usize).min(n - 1)
            }
            ValueBins::Log { lo, hi, n } => {
                let v = value.clamp(lo, hi);
                let t = (v / lo).ln() / (hi / lo).ln();
                ((t * n as f64) as usize).min(n - 1)
            }
        }
    }

    /// The representative value of a class index.
    pub fn decode(&self, bin: usize) -> f64 {
        match *self {
            ValueBins::Linear { lo, hi, n } => {
                let width = (hi - lo) / n as f64;
                lo + (bin.min(n - 1) as f64 + 0.5) * width
            }
            ValueBins::Log { lo, hi, n } => {
                let ratio = (hi / lo).powf(1.0 / n as f64);
                lo * ratio.powf(bin.min(n - 1) as f64 + 0.5)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_bins_are_one_minute_wide() {
        let b = ValueBins::runtime_minutes();
        assert_eq!(b.n_bins(), 960);
        assert_eq!(b.encode(0.0), 0);
        assert_eq!(b.encode(44.4), 44);
        assert_eq!(b.encode(959.9), 959);
        assert_eq!(b.encode(5000.0), 959, "clamps to the cap");
    }

    #[test]
    fn decode_returns_bin_centres() {
        let b = ValueBins::runtime_minutes();
        assert!((b.decode(44) - 44.5).abs() < 1e-9);
    }

    #[test]
    fn encode_decode_round_trip_error_is_at_most_half_a_bin() {
        let b = ValueBins::runtime_minutes();
        for v in [0.2, 17.0, 44.0, 333.3, 959.0] {
            let back = b.decode(b.encode(v));
            assert!((back - v).abs() <= 0.5 + 1e-9, "{v} -> {back}");
        }
    }

    #[test]
    fn log_bins_cover_decades_evenly() {
        let b = ValueBins::io_bytes(90);
        // Nine decades (1e5..1e14) over 90 bins: each decade spans 10 bins,
        // with decade boundaries landing in the upper bin.
        assert_eq!(b.encode(1e5), 0);
        assert_eq!(b.encode(1e6), 10);
        assert_eq!(b.encode(1e10), 50);
        assert_eq!(b.encode(9e13), b.n_bins() - 1);
    }

    #[test]
    fn log_round_trip_is_ratio_bounded() {
        let b = ValueBins::io_bytes(256);
        let ratio_cap = (1e14f64 / 1e5).powf(1.0 / 256.0);
        for v in [3e5, 1e7, 4.2e9, 8e13] {
            let back = b.decode(b.encode(v));
            let ratio = if back > v { back / v } else { v / back };
            assert!(ratio <= ratio_cap * 1.001, "{v} -> {back} ratio {ratio}");
        }
    }

    #[test]
    fn log_bins_clamp_small_values() {
        let b = ValueBins::io_bytes(64);
        assert_eq!(b.encode(0.0), 0);
        assert_eq!(b.encode(-5.0), 0);
    }

    #[test]
    fn encode_is_monotone() {
        let lin = ValueBins::runtime_minutes_with(120);
        let log = ValueBins::io_bytes(64);
        let mut last_lin = 0;
        let mut last_log = 0;
        for i in 1..=1000 {
            let v = i as f64 * 1e9 / 1000.0;
            let bl = lin.encode(v / 1e7); // 0..100 minutes
            let bg = log.encode(v);
            assert!(bl >= last_lin);
            assert!(bg >= last_log);
            last_lin = bl;
            last_log = bg;
        }
    }
}
