//! The online training/prediction protocol of §2.3.
//!
//! Jobs are processed in submission order. Each submission is predicted with
//! the current model; every `retrain_every` submissions the model is
//! retrained — warm-started — on the `train_window` most recently *completed*
//! jobs. A job counts as completed once its (submission + runtime) instant
//! has passed, mirroring how the paper feeds "jobs that have recently
//! completed" back into training.

use crate::predictor::{Prionn, PrionnConfig, Result};
use prionn_telemetry::Telemetry;
use prionn_workload::JobRecord;

/// Protocol parameters (paper values: window 500, cadence 100).
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Train on this many most-recently-completed jobs.
    pub train_window: usize,
    /// Retrain after every this many (non-cancelled) submissions.
    pub retrain_every: usize,
    /// Completed jobs required before the first training event.
    pub min_history: usize,
    /// Re-initialise the model at every retraining event instead of
    /// warm-starting (ablation of §2.3's knowledge-retention claim).
    pub cold_start: bool,
    /// Optional telemetry registry. When set, the protocol records
    /// `online_retrain_seconds` / `online_submissions_total` /
    /// `online_fallback_predictions_total` and attaches the registry to the
    /// model (per-layer timers, retrain events); see
    /// `docs/OBSERVABILITY.md`.
    pub telemetry: Option<Telemetry>,
    /// Optional model-quality drift monitor. When set, each job's prediction
    /// (made at submission) is scored against its true usage at *completion*
    /// — the moment the truth becomes known — so the rolling relative
    /// accuracy tracks the protocol's live quality; retraining events mark
    /// the weights fresh. Fallback (untrained-model) predictions are not
    /// scored: they measure the user request, not the model.
    pub drift: Option<prionn_observe::DriftMonitor>,
    /// Predictor configuration.
    pub prionn: PrionnConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            train_window: 500,
            retrain_every: 100,
            min_history: 100,
            cold_start: false,
            telemetry: None,
            drift: None,
            prionn: PrionnConfig::default(),
        }
    }
}

/// A per-job prediction produced by the online protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobPrediction {
    /// The predicted job's id.
    pub job_id: u64,
    /// Predicted runtime, minutes.
    pub runtime_minutes: f64,
    /// Predicted total bytes read.
    pub read_bytes: f64,
    /// Predicted total bytes written.
    pub write_bytes: f64,
    /// True if the model had been trained when this prediction was made
    /// (cold-start predictions fall back to the user request).
    pub model_trained: bool,
}

/// Run the online protocol over a trace slice with PRIONN.
///
/// Cancelled jobs are skipped (the paper excludes them). Before the first
/// training event the runtime prediction falls back to the user-requested
/// time and IO to zero.
pub fn run_online_prionn(jobs: &[JobRecord], cfg: &OnlineConfig) -> Result<Vec<JobPrediction>> {
    // Seed word2vec with the first chunk of scripts (historical corpus).
    let w2v_corpus: Vec<&str> = jobs.iter().take(200).map(|j| j.script.as_str()).collect();
    let model = Prionn::new(cfg.prionn.clone(), &w2v_corpus)?;
    resume_online_prionn(jobs, cfg, model).map(|(preds, _)| preds)
}

/// Continue the online protocol with a pre-loaded model — the warm-restart
/// path. `model` typically comes from [`Prionn::load`] on a checkpoint
/// written by an earlier run; if it has already been retrained
/// ([`Prionn::retrain_count`] > 0) predictions are served from the first
/// submission instead of falling back to the user request.
///
/// Returns the per-job predictions together with the final model so the
/// caller can checkpoint it again ([`Prionn::save`]) for the next restart.
pub fn resume_online_prionn(
    jobs: &[JobRecord],
    cfg: &OnlineConfig,
    mut model: Prionn,
) -> Result<(Vec<JobPrediction>, Prionn)> {
    // Only the cold-start ablation rebuilds the model mid-run; it re-seeds
    // word2vec from the same historical corpus a fresh run would use.
    let w2v_corpus: Vec<&str> = jobs.iter().take(200).map(|j| j.script.as_str()).collect();
    let mut predictions = Vec::with_capacity(jobs.len());

    // Protocol-level instruments (the model adds its own when attached).
    let instruments = cfg.telemetry.as_ref().map(|t| {
        (
            t.histogram(
                "online_retrain_seconds",
                "Wall time of one online-protocol retraining event",
            ),
            t.counter(
                "online_submissions_total",
                "Non-cancelled job submissions processed",
            ),
            t.counter(
                "online_fallback_predictions_total",
                "Predictions served from the user request (model untrained)",
            ),
        )
    });
    if let Some(t) = &cfg.telemetry {
        model.set_telemetry(t);
    }

    // (completion_time, index into jobs) of executed jobs, kept sorted by
    // completion as we sweep submission times forward.
    let mut pending: Vec<(u64, usize)> = Vec::new();
    let mut completed: Vec<usize> = Vec::new();
    let mut trained = model.retrain_count() > 0;
    let mut since_retrain = 0usize;
    // Model predictions by job index, held until the job completes — that
    // is when the truth becomes known and the drift monitor can score it.
    let mut in_flight: Vec<Option<(f64, f64, f64)>> = if cfg.drift.is_some() {
        vec![None; jobs.len()]
    } else {
        Vec::new()
    };

    for (idx, job) in jobs.iter().enumerate() {
        if job.cancelled {
            continue;
        }
        let now = job.submit_time;
        // Move newly completed jobs into history.
        pending.sort_unstable_by_key(|&(end, _)| end);
        while let Some(&(end, j)) = pending.first() {
            if end <= now {
                if let Some(drift) = &cfg.drift {
                    if let Some((rt, rd, wr)) = in_flight[j].take() {
                        use prionn_observe::DriftHead;
                        drift.record(DriftHead::Runtime, jobs[j].runtime_minutes(), rt);
                        if cfg.prionn.predict_io {
                            drift.record(DriftHead::Read, jobs[j].bytes_read, rd);
                            drift.record(DriftHead::Write, jobs[j].bytes_written, wr);
                        }
                    }
                }
                completed.push(j);
                pending.remove(0);
            } else {
                break;
            }
        }

        // Retrain cadence.
        if completed.len() >= cfg.min_history && (!trained || since_retrain >= cfg.retrain_every) {
            let start = completed.len().saturating_sub(cfg.train_window);
            let window = &completed[start..];
            let scripts: Vec<&str> = window.iter().map(|&j| jobs[j].script.as_str()).collect();
            let runtimes: Vec<f64> = window.iter().map(|&j| jobs[j].runtime_minutes()).collect();
            if cfg.cold_start {
                // Ablation: throw the learned parameters away each event.
                model = Prionn::new(cfg.prionn.clone(), &w2v_corpus)?;
                if let Some(t) = &cfg.telemetry {
                    model.set_telemetry(t);
                }
            }
            let (reads, writes): (Vec<f64>, Vec<f64>) = if cfg.prionn.predict_io {
                (
                    window.iter().map(|&j| jobs[j].bytes_read).collect(),
                    window.iter().map(|&j| jobs[j].bytes_written).collect(),
                )
            } else {
                (Vec::new(), Vec::new())
            };
            let retrain_started = std::time::Instant::now();
            model.retrain(&scripts, &runtimes, &reads, &writes)?;
            if let Some((retrain_seconds, _, _)) = &instruments {
                retrain_seconds.observe(retrain_started.elapsed().as_secs_f64());
            }
            if let Some(drift) = &cfg.drift {
                drift.mark_weight_update();
            }
            trained = true;
            since_retrain = 0;
        }

        // Predict at submission.
        let prediction = if trained {
            let p = model.predict(&[job.script.as_str()])?[0];
            if cfg.drift.is_some() {
                in_flight[idx] = Some((p.runtime_minutes, p.read_bytes, p.write_bytes));
            }
            JobPrediction {
                job_id: job.id,
                runtime_minutes: p.runtime_minutes,
                read_bytes: p.read_bytes,
                write_bytes: p.write_bytes,
                model_trained: true,
            }
        } else {
            JobPrediction {
                job_id: job.id,
                runtime_minutes: job.requested_minutes(),
                read_bytes: 0.0,
                write_bytes: 0.0,
                model_trained: false,
            }
        };
        if let Some((_, submissions, fallbacks)) = &instruments {
            submissions.inc();
            if !prediction.model_trained {
                fallbacks.inc();
            }
        }
        predictions.push(prediction);
        since_retrain += 1;
        pending.push((job.submit_time + job.runtime_seconds, idx));
    }
    Ok((predictions, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prionn_workload::{Trace, TraceConfig, TracePreset};

    fn tiny_online_cfg() -> OnlineConfig {
        let mut prionn = PrionnConfig::reduced();
        prionn.grid = (16, 16);
        prionn.base_width = 2;
        prionn.runtime_bins = 64;
        prionn.io_bins = 16;
        prionn.epochs = 2;
        OnlineConfig {
            train_window: 60,
            retrain_every: 40,
            min_history: 30,
            cold_start: false,
            telemetry: None,
            drift: None,
            prionn,
        }
    }

    fn tiny_trace(n: usize) -> Trace {
        let mut cfg = TraceConfig::preset(TracePreset::CabLike, n);
        cfg.mean_interarrival_seconds = 200.0; // let jobs complete between arrivals
        Trace::generate(&cfg)
    }

    #[test]
    fn produces_one_prediction_per_executed_job() {
        let trace = tiny_trace(150);
        let preds = run_online_prionn(&trace.jobs, &tiny_online_cfg()).unwrap();
        let executed = trace.jobs.iter().filter(|j| !j.cancelled).count();
        assert_eq!(preds.len(), executed);
    }

    #[test]
    fn early_predictions_fall_back_to_user_request() {
        let trace = tiny_trace(150);
        let preds = run_online_prionn(&trace.jobs, &tiny_online_cfg()).unwrap();
        let first = &preds[0];
        assert!(!first.model_trained);
        let job = trace.jobs.iter().find(|j| j.id == first.job_id).unwrap();
        assert_eq!(first.runtime_minutes, job.requested_minutes());
    }

    #[test]
    fn model_eventually_trains_and_takes_over() {
        let trace = tiny_trace(300);
        let preds = run_online_prionn(&trace.jobs, &tiny_online_cfg()).unwrap();
        assert!(preds.iter().any(|p| p.model_trained), "model never trained");
        // Once trained, it stays trained.
        let first_trained = preds.iter().position(|p| p.model_trained).unwrap();
        assert!(preds[first_trained..].iter().all(|p| p.model_trained));
    }

    #[test]
    fn cold_start_also_runs_and_covers_all_jobs() {
        let trace = tiny_trace(200);
        let mut cfg = tiny_online_cfg();
        cfg.cold_start = true;
        let preds = run_online_prionn(&trace.jobs, &cfg).unwrap();
        let executed = trace.jobs.iter().filter(|j| !j.cancelled).count();
        assert_eq!(preds.len(), executed);
        assert!(preds.iter().any(|p| p.model_trained));
    }

    #[test]
    fn resume_with_a_trained_model_serves_from_the_first_submission() {
        let trace = tiny_trace(200);
        let cfg = tiny_online_cfg();
        // Train a model on the leading scripts, checkpoint it, and resume
        // the protocol from the restored copy: no cold-start fallback.
        let corpus: Vec<&str> = trace
            .jobs
            .iter()
            .take(60)
            .map(|j| j.script.as_str())
            .collect();
        let mut model = Prionn::new(cfg.prionn.clone(), &corpus).unwrap();
        let runtimes: Vec<f64> = trace
            .jobs
            .iter()
            .take(60)
            .map(|j| j.runtime_minutes())
            .collect();
        let reads: Vec<f64> = trace.jobs.iter().take(60).map(|j| j.bytes_read).collect();
        let writes: Vec<f64> = trace
            .jobs
            .iter()
            .take(60)
            .map(|j| j.bytes_written)
            .collect();
        model.retrain(&corpus, &runtimes, &reads, &writes).unwrap();
        let ck = model.to_checkpoint().unwrap();

        let restored = Prionn::from_checkpoint(&ck).unwrap();
        let (preds, final_model) = resume_online_prionn(&trace.jobs, &cfg, restored).unwrap();
        assert!(
            preds.iter().all(|p| p.model_trained),
            "warm model never falls back"
        );
        assert!(final_model.retrain_count() > 1, "protocol kept retraining");

        // Bit-identical restore ⇒ bit-identical resumed protocol.
        let restored_again = Prionn::from_checkpoint(&ck).unwrap();
        let (preds2, _) = resume_online_prionn(&trace.jobs, &cfg, restored_again).unwrap();
        assert_eq!(preds, preds2);
    }

    #[test]
    fn drift_monitor_scores_predictions_at_completion() {
        use prionn_observe::{DriftConfig, DriftMonitor};
        let trace = tiny_trace(300);
        let telemetry = Telemetry::default();
        let drift = DriftMonitor::new(
            &telemetry,
            DriftConfig {
                min_samples: 8,
                ..Default::default()
            },
        );
        let mut cfg = tiny_online_cfg();
        cfg.telemetry = Some(telemetry.clone());
        cfg.drift = Some(drift.clone());
        let preds = run_online_prionn(&trace.jobs, &cfg).unwrap();
        let trained = preds.iter().filter(|p| p.model_trained).count();
        assert!(trained > 0, "model never trained");

        let snap = drift.snapshot();
        let runtime = snap.heads.iter().find(|h| h.head == "runtime").unwrap();
        // Only trained predictions whose jobs completed before the sweep
        // ended are scored — never more than the trained predictions made.
        assert!(runtime.samples > 0, "no completions were scored");
        assert!(runtime.samples <= trained as u64);
        assert!((0.0..=1.0).contains(&runtime.relative_accuracy));
        assert!(snap.weight_updates > 0, "retrains mark the weights fresh");
        assert!(telemetry
            .prometheus()
            .contains(r#"drift_samples_total{head="runtime"}"#));
    }

    #[test]
    fn predictions_are_within_head_range() {
        let trace = tiny_trace(300);
        let preds = run_online_prionn(&trace.jobs, &tiny_online_cfg()).unwrap();
        for p in preds.iter().filter(|p| p.model_trained) {
            assert!((0.0..=960.0).contains(&p.runtime_minutes));
            assert!(p.read_bytes >= 0.0 && p.write_bytes >= 0.0);
        }
    }
}
