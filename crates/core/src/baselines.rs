//! Traditional-ML and user baselines under the same online protocol.
//!
//! Unlike PRIONN, the traditional models are re-fitted from scratch at every
//! retraining event — "this characteristic of deep learning models
//! [knowledge retention] is not present in traditional machine learning
//! models" (§2.3).

use crate::online::JobPrediction;
use prionn_ml::{
    DecisionTreeConfig, DecisionTreeRegressor, FeatureExtractor, FeatureMatrix, KnnRegressor,
    RandomForestConfig, RandomForestRegressor, RawJobFeatures,
};
use prionn_workload::JobRecord;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which traditional model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Random forest (the strongest traditional baseline, per §2.4).
    RandomForest,
    /// Single CART decision tree.
    DecisionTree,
    /// k-nearest neighbours (k = 5).
    Knn,
}

impl BaselineKind {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::RandomForest => "RF",
            BaselineKind::DecisionTree => "DT",
            BaselineKind::Knn => "kNN",
        }
    }
}

enum FittedBaseline {
    Forest {
        runtime: RandomForestRegressor,
        read: RandomForestRegressor,
        write: RandomForestRegressor,
    },
    Tree {
        runtime: DecisionTreeRegressor,
        read: DecisionTreeRegressor,
        write: DecisionTreeRegressor,
    },
    Knn {
        runtime: KnnRegressor,
        read: KnnRegressor,
        write: KnnRegressor,
    },
}

impl FittedBaseline {
    fn predict(&self, row: &[f32]) -> (f64, f64, f64) {
        let p = |r: Result<f32, prionn_ml::MlError>| r.map(|v| v.max(0.0) as f64).unwrap_or(0.0);
        match self {
            FittedBaseline::Forest {
                runtime,
                read,
                write,
            } => (
                p(runtime.predict_one(row)),
                p(read.predict_one(row)),
                p(write.predict_one(row)),
            ),
            FittedBaseline::Tree {
                runtime,
                read,
                write,
            } => (
                p(runtime.predict_one(row)),
                p(read.predict_one(row)),
                p(write.predict_one(row)),
            ),
            FittedBaseline::Knn {
                runtime,
                read,
                write,
            } => (
                p(runtime.predict_one(row)),
                p(read.predict_one(row)),
                p(write.predict_one(row)),
            ),
        }
    }
}

fn fit_baseline(
    kind: BaselineKind,
    x: &FeatureMatrix,
    runtime: &[f32],
    read: &[f32],
    write: &[f32],
    seed: u64,
) -> Result<FittedBaseline, prionn_ml::MlError> {
    match kind {
        BaselineKind::RandomForest => {
            // scikit-learn's RandomForestRegressor default at the paper's time
            // (n_estimators = 10 until sklearn 0.22).
            let cfg = RandomForestConfig {
                n_trees: 10,
                seed,
                ..Default::default()
            };
            Ok(FittedBaseline::Forest {
                runtime: RandomForestRegressor::fit(x, runtime, &cfg)?,
                read: RandomForestRegressor::fit(x, read, &cfg)?,
                write: RandomForestRegressor::fit(x, write, &cfg)?,
            })
        }
        BaselineKind::DecisionTree => {
            let cfg = DecisionTreeConfig::default();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok(FittedBaseline::Tree {
                runtime: DecisionTreeRegressor::fit(x, runtime, &cfg, &mut rng)?,
                read: DecisionTreeRegressor::fit(x, read, &cfg, &mut rng)?,
                write: DecisionTreeRegressor::fit(x, write, &cfg, &mut rng)?,
            })
        }
        BaselineKind::Knn => Ok(FittedBaseline::Knn {
            runtime: KnnRegressor::fit(x.clone(), runtime.to_vec(), 5)?,
            read: KnnRegressor::fit(x.clone(), read.to_vec(), 5)?,
            write: KnnRegressor::fit(x.clone(), write.to_vec(), 5)?,
        }),
    }
}

/// Run a traditional baseline through the online protocol: parse Table-1
/// features, refit every `retrain_every` submissions on the `train_window`
/// most recently completed jobs, predict at submission.
///
/// Returns predictions aligned with the executed jobs in submission order.
pub fn run_online_baseline(
    jobs: &[JobRecord],
    kind: BaselineKind,
    train_window: usize,
    retrain_every: usize,
    min_history: usize,
) -> Result<Vec<JobPrediction>, prionn_ml::MlError> {
    let mut extractor = FeatureExtractor::new();
    // Pre-encode every executed job's feature vector (encoders extend
    // online exactly as they would in deployment).
    let mut features: Vec<Option<Vec<f32>>> = vec![None; jobs.len()];

    let mut predictions = Vec::new();
    let mut pending: Vec<(u64, usize)> = Vec::new();
    let mut completed: Vec<usize> = Vec::new();
    let mut fitted: Option<FittedBaseline> = None;
    let mut since_retrain = 0usize;
    let mut retrain_id = 0u64;

    for (idx, job) in jobs.iter().enumerate() {
        if job.cancelled {
            continue;
        }
        let raw = RawJobFeatures::parse(&job.script, &job.user, &job.group, &job.submit_dir);
        features[idx] = Some(extractor.extract(&raw));
        let now = job.submit_time;
        pending.sort_unstable_by_key(|&(end, _)| end);
        while let Some(&(end, j)) = pending.first() {
            if end <= now {
                completed.push(j);
                pending.remove(0);
            } else {
                break;
            }
        }

        if completed.len() >= min_history && (fitted.is_none() || since_retrain >= retrain_every) {
            let start = completed.len().saturating_sub(train_window);
            let window = &completed[start..];
            let mut x = FeatureMatrix::new(extractor.n_features());
            let mut runtime = Vec::with_capacity(window.len());
            let mut read = Vec::with_capacity(window.len());
            let mut write = Vec::with_capacity(window.len());
            for &j in window {
                x.push_row(
                    features[j]
                        .as_ref()
                        .expect("completed jobs were featurised"),
                )?;
                runtime.push(jobs[j].runtime_minutes() as f32);
                read.push(jobs[j].bytes_read as f32);
                write.push(jobs[j].bytes_written as f32);
            }
            retrain_id += 1;
            fitted = Some(fit_baseline(kind, &x, &runtime, &read, &write, retrain_id)?);
            since_retrain = 0;
        }

        let row = features[idx].as_ref().expect("featurised above");
        let prediction = match &fitted {
            Some(model) => {
                let (rt, rd, wr) = model.predict(row);
                JobPrediction {
                    job_id: job.id,
                    runtime_minutes: rt,
                    read_bytes: rd,
                    write_bytes: wr,
                    model_trained: true,
                }
            }
            None => JobPrediction {
                job_id: job.id,
                runtime_minutes: job.requested_minutes(),
                read_bytes: 0.0,
                write_bytes: 0.0,
                model_trained: false,
            },
        };
        predictions.push(prediction);
        since_retrain += 1;
        pending.push((job.submit_time + job.runtime_seconds, idx));
    }
    Ok(predictions)
}

/// The "user prediction" baseline: the requested wall time, per executed job
/// in submission order (IO is not user-predictable — the paper has no user
/// IO baseline).
pub fn user_predictions(jobs: &[JobRecord]) -> Vec<JobPrediction> {
    jobs.iter()
        .filter(|j| !j.cancelled)
        .map(|j| JobPrediction {
            job_id: j.id,
            runtime_minutes: j.requested_minutes(),
            read_bytes: 0.0,
            write_bytes: 0.0,
            model_trained: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prionn_workload::{Trace, TraceConfig, TracePreset};

    fn tiny_trace(n: usize) -> Trace {
        let mut cfg = TraceConfig::preset(TracePreset::CabLike, n);
        cfg.mean_interarrival_seconds = 200.0;
        Trace::generate(&cfg)
    }

    #[test]
    fn all_baselines_produce_full_prediction_sets() {
        let trace = tiny_trace(250);
        let executed = trace.jobs.iter().filter(|j| !j.cancelled).count();
        for kind in [
            BaselineKind::RandomForest,
            BaselineKind::DecisionTree,
            BaselineKind::Knn,
        ] {
            let preds = run_online_baseline(&trace.jobs, kind, 80, 50, 30).unwrap();
            assert_eq!(preds.len(), executed, "{kind:?}");
            assert!(
                preds.iter().any(|p| p.model_trained),
                "{kind:?} never trained"
            );
        }
    }

    #[test]
    fn trained_rf_beats_blind_guessing_on_runtime() {
        use crate::metrics::relative_accuracy;
        let trace = tiny_trace(400);
        let preds =
            run_online_baseline(&trace.jobs, BaselineKind::RandomForest, 100, 50, 50).unwrap();
        let by_id: std::collections::HashMap<u64, &JobPrediction> =
            preds.iter().map(|p| (p.job_id, p)).collect();
        let mut acc_model = Vec::new();
        let mut acc_user = Vec::new();
        for j in trace.jobs.iter().filter(|j| !j.cancelled) {
            let p = by_id[&j.id];
            if p.model_trained {
                acc_model.push(relative_accuracy(j.runtime_minutes(), p.runtime_minutes));
                acc_user.push(relative_accuracy(
                    j.runtime_minutes(),
                    j.requested_minutes(),
                ));
            }
        }
        let m_model = acc_model.iter().sum::<f64>() / acc_model.len() as f64;
        let m_user = acc_user.iter().sum::<f64>() / acc_user.len() as f64;
        assert!(
            m_model > m_user,
            "RF ({m_model:.3}) should beat user requests ({m_user:.3})"
        );
    }

    #[test]
    fn user_baseline_covers_executed_jobs() {
        let trace = tiny_trace(100);
        let preds = user_predictions(&trace.jobs);
        let executed = trace.jobs.iter().filter(|j| !j.cancelled).count();
        assert_eq!(preds.len(), executed);
        assert!(preds.iter().all(|p| !p.model_trained));
    }
}
