//! The PRIONN tool (paper §2): whole-job-script deep models for per-job
//! runtime and IO prediction, the warm-started online-training protocol, and
//! the evaluation drivers behind every figure in §3–4.
//!
//! * [`metrics`] — Equation 1's relative accuracy and companions;
//! * [`bins`] — the classifier heads' value binning (960 runtime-minute
//!   bins; logarithmic byte bins for IO volumes);
//! * [`predictor`] — [`predictor::Prionn`]: mapping + three CNN heads
//!   (runtime, bytes read, bytes written) with warm-started `retrain`;
//! * [`online`] — the §2.3 protocol: predict at submission, retrain every
//!   `retrain_every` submissions on the `train_window` most recently
//!   completed jobs;
//! * [`baselines`] — the same protocol for RF/DT/kNN on Table-1 features
//!   and for the user-request baseline.

pub mod baselines;
pub mod bins;
pub mod checkpoint;
pub mod metrics;
pub mod online;
pub mod predictor;
pub mod service;

pub use baselines::{run_online_baseline, BaselineKind};
pub use bins::ValueBins;
pub use metrics::{mean_absolute_error, relative_accuracy, relative_accuracy_vec};
pub use online::{resume_online_prionn, run_online_prionn, JobPrediction, OnlineConfig};
pub use predictor::{HeadKind, Prionn, PrionnConfig, ResourcePrediction};
pub use service::{PrionnService, ServiceOptions, ServiceStats, TrainingBatch};
