//! The trace generator: renders job scripts and ground-truth resource usage
//! for a Cab-like year of submissions.

use crate::apps::{AppTemplate, APP_LIBRARY};
use crate::job::JobRecord;
use crate::users::{snap_request_minutes, UserPopulation};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Per-app relative submission popularity, aligned with [`APP_LIBRARY`].
/// Short jobs (debug runs, post-processing, archiving) dominate submission
/// counts on real machines, which is what pushes the trace's mean runtime
/// down to the paper's ≈ 44 minutes while keeping a long tail.
const APP_POPULARITY: [f64; 20] = [
    6.0,  // lammps
    4.0,  // namd
    1.0,  // hpl
    1.5,  // qmc
    1.0,  // climate
    3.0,  // mcnp
    0.8,  // ale3d
    5.0,  // pytrain
    10.0, // postproc
    2.0,  // iocheck
    1.5,  // seismic
    4.0,  // bioseq
    1.0,  // cfd
    6.0,  // montecarlo
    2.0,  // chemtable
    14.0, // debugrun
    4.0,  // paramsweep
    0.6,  // fusion
    1.2,  // astro
    5.0,  // archive
];

/// Named calibrations of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePreset {
    /// The paper's primary dataset: LLNL Cab, 2016.
    CabLike,
    /// The SDSC Paragon 1995 trace used in Table 2 (76,840 jobs).
    Sdsc95,
    /// The SDSC Paragon 1996 trace used in Table 2 (32,100 jobs).
    Sdsc96,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of submissions to generate.
    pub n_jobs: usize,
    /// User population size.
    pub n_users: usize,
    /// Cluster node count (Cab: 1,296).
    pub cluster_nodes: u32,
    /// Runtime cap, minutes (Cab: 960).
    pub cap_minutes: f64,
    /// Probability a submission is cancelled before running (§2.3: ~9.9 %).
    pub cancel_rate: f64,
    /// Probability a submission reuses one of the user's previous scripts
    /// verbatim (drives the paper's ~37 % unique-script share).
    pub resubmit_prob: f64,
    /// Global multiplier on true runtimes (used by the SDSC presets).
    pub runtime_scale: f64,
    /// Lognormal sigma of run-to-run runtime noise.
    pub runtime_noise_sigma: f64,
    /// Lognormal sigma of run-to-run IO-volume noise.
    pub io_noise_sigma: f64,
    /// Mean seconds between submissions.
    pub mean_interarrival_seconds: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// A preset calibration at a chosen job count (pass the preset's real
    /// job count for a full-size trace, or something smaller for tests).
    pub fn preset(preset: TracePreset, n_jobs: usize) -> Self {
        match preset {
            TracePreset::CabLike => TraceConfig {
                n_jobs,
                n_users: 492,
                cluster_nodes: 1296,
                cap_minutes: 960.0,
                cancel_rate: 0.099,
                resubmit_prob: 0.63,
                runtime_scale: 1.0,
                runtime_noise_sigma: 0.08,
                io_noise_sigma: 0.5,
                mean_interarrival_seconds: 110.0,
                seed: 0xcab,
            },
            TracePreset::Sdsc95 => TraceConfig {
                n_jobs,
                n_users: 98,
                cluster_nodes: 416,
                cap_minutes: 2880.0,
                cancel_rate: 0.05,
                resubmit_prob: 0.55,
                runtime_scale: 2.4,
                runtime_noise_sigma: 0.45,
                io_noise_sigma: 0.5,
                mean_interarrival_seconds: 400.0,
                seed: 0x5d5c95,
            },
            TracePreset::Sdsc96 => TraceConfig {
                n_jobs,
                n_users: 60,
                cluster_nodes: 416,
                cap_minutes: 2880.0,
                cancel_rate: 0.05,
                resubmit_prob: 0.50,
                runtime_scale: 3.1,
                runtime_noise_sigma: 0.55,
                io_noise_sigma: 0.5,
                mean_interarrival_seconds: 900.0,
                seed: 0x5d5c96,
            },
        }
    }
}

/// A generated trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Jobs ordered by submission time.
    pub jobs: Vec<JobRecord>,
    /// Cluster node count the trace was generated for.
    pub cluster_nodes: u32,
    /// Runtime cap in minutes.
    pub cap_minutes: f64,
}

/// One remembered run configuration (for verbatim resubmissions).
#[derive(Clone)]
struct RunConfig {
    app_idx: usize,
    size: f64,
    nodes: u32,
    script: String,
    requested_seconds: u64,
}

impl Trace {
    /// Generate a trace. Deterministic for a given config.
    pub fn generate(cfg: &TraceConfig) -> Trace {
        assert!(cfg.n_jobs > 0, "trace needs at least one job");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let population = UserPopulation::generate(cfg.n_users, APP_LIBRARY.len(), &mut rng);
        let mut histories: HashMap<usize, Vec<RunConfig>> = HashMap::new();
        let mut jobs = Vec::with_capacity(cfg.n_jobs);
        let mut clock = 0.0f64;
        let mut next_run_id = 1u32;

        for id in 0..cfg.n_jobs {
            // Poisson arrivals with a diurnal modulation (nights are quiet).
            let phase = (clock / 86_400.0).fract();
            let diurnal = 0.55 + 0.9 * (std::f64::consts::TAU * (phase - 0.25)).sin().max(0.0);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            clock += -u.ln() * cfg.mean_interarrival_seconds / diurnal;

            let user_idx = population.sample(&mut rng);
            let user = &population.users()[user_idx];

            let history = histories.entry(user_idx).or_default();
            let reuse = !history.is_empty() && rng.gen::<f64>() < cfg.resubmit_prob;
            let run = if reuse {
                // Recency-weighted reuse: users overwhelmingly re-run one of
                // their last few configurations (parameter sweeps, restarts),
                // occasionally dusting off something older. Geometric decay
                // with ratio ~0.55 over positions from the end.
                let h = history.len();
                let mut pos = h - 1;
                for back in 0..h {
                    if rng.gen::<f64>() < 0.45 {
                        pos = h - 1 - back;
                        break;
                    }
                    if back == h - 1 {
                        pos = rng.gen_range(0..h);
                    }
                }
                history[pos].clone()
            } else {
                // Pick one of the user's app families, weighted by global
                // popularity.
                let weights: Vec<f64> = user.apps.iter().map(|&a| APP_POPULARITY[a]).collect();
                let total: f64 = weights.iter().sum();
                let mut pick: f64 = rng.gen_range(0.0..total);
                let mut app_idx = user.apps[0];
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        app_idx = user.apps[i];
                        break;
                    }
                    pick -= w;
                }
                let app = &APP_LIBRARY[app_idx];
                // Log-uniform size: plenty of small runs, a heavy tail.
                let (lo, hi) = app.size_range;
                let size = lo * (hi / lo).powf(rng.gen::<f64>().powf(1.3));
                let nodes = rng
                    .gen_range(app.node_range.0..=app.node_range.1)
                    .min(cfg.cluster_nodes);
                let run_id = next_run_id;
                next_run_id += 1;

                // The user requests wall time from the app's *typical*
                // runtime at these settings, padded and snapped.
                let typical = app.true_runtime_minutes(size, nodes) * cfg.runtime_scale;
                let requested_minutes =
                    snap_request_minutes(typical * user.overestimate_factor, cfg.cap_minutes);
                let requested_seconds = (requested_minutes * 60.0) as u64;
                let script =
                    render_script(app, &user.account, size, nodes, run_id, requested_seconds);
                let run = RunConfig {
                    app_idx,
                    size,
                    nodes,
                    script,
                    requested_seconds,
                };
                history.push(run.clone());
                run
            };

            let app = &APP_LIBRARY[run.app_idx];
            let cancelled = rng.gen::<f64>() < cfg.cancel_rate;
            let (runtime_seconds, bytes_read, bytes_written, mean_power_watts) = if cancelled {
                (0u64, 0.0, 0.0, 0.0)
            } else {
                let noise = lognormal(cfg.runtime_noise_sigma, &mut rng);
                let minutes =
                    (app.true_runtime_minutes(run.size, run.nodes) * cfg.runtime_scale * noise)
                        .clamp(0.5, cfg.cap_minutes);
                let (r, w) = app.true_io_bytes(run.size, run.nodes);
                // Power: idle floor plus a per-app compute intensity (a
                // stable pseudo-random trait of the family), per node. The
                // per-run jitter is derived from the job id rather than the
                // shared RNG so adding this field did not perturb the rest
                // of the trace stream.
                let intensity = (app.name.bytes().map(u64::from).sum::<u64>() % 100) as f64 / 100.0;
                let watts_per_node = 140.0 + 180.0 * intensity;
                let jitter = 0.95
                    + 0.1
                        * (((id as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f64
                            / (1u64 << 24) as f64);
                let power = run.nodes as f64 * watts_per_node * jitter;
                (
                    (minutes * 60.0) as u64,
                    r * lognormal(cfg.io_noise_sigma, &mut rng),
                    w * lognormal(cfg.io_noise_sigma, &mut rng),
                    power,
                )
            };

            jobs.push(JobRecord {
                id: id as u64,
                user: user.login.clone(),
                group: user.group.clone(),
                account: user.account.clone(),
                app: app.name.to_string(),
                script: run.script.clone(),
                submit_dir: user.submit_dir.clone(),
                submit_time: clock as u64,
                requested_seconds: run.requested_seconds,
                nodes: run.nodes,
                runtime_seconds,
                bytes_read,
                bytes_written,
                mean_power_watts,
                cancelled,
            });
        }
        Trace {
            jobs,
            cluster_nodes: cfg.cluster_nodes,
            cap_minutes: cfg.cap_minutes,
        }
    }

    /// Jobs that actually ran (the paper excludes cancelled submissions).
    pub fn executed_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| !j.cancelled)
    }

    /// Serialise the trace to JSON (jobs plus cluster metadata), so a
    /// generated corpus can be pinned and shared between experiments.
    pub fn to_json(&self) -> String {
        let jobs: Vec<serde_json::Value> = self.jobs.iter().map(job_to_json).collect();
        let value = serde_json::json!({
            "cluster_nodes": self.cluster_nodes,
            "cap_minutes": self.cap_minutes,
            "jobs": jobs,
        });
        serde_json::to_string(&value).expect("trace serialisation cannot fail")
    }

    /// Load a trace previously produced by [`Trace::to_json`].
    pub fn from_json(s: &str) -> Result<Trace, serde_json::Error> {
        let value = serde_json::from_str(s)?;
        let wire_err = serde_json::Error::custom;
        let cluster_nodes = value
            .get("cluster_nodes")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| wire_err("missing cluster_nodes"))? as u32;
        let cap_minutes = value
            .get("cap_minutes")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| wire_err("missing cap_minutes"))?;
        let jobs = value
            .get("jobs")
            .and_then(|v| v.as_array())
            .ok_or_else(|| wire_err("missing jobs"))?
            .iter()
            .map(job_from_json)
            .collect::<Option<Vec<JobRecord>>>()
            .ok_or_else(|| wire_err("malformed job record"))?;
        Ok(Trace {
            jobs,
            cluster_nodes,
            cap_minutes,
        })
    }

    /// Number of distinct script texts.
    pub fn unique_scripts(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for j in &self.jobs {
            set.insert(j.script.as_str());
        }
        set.len()
    }
}

fn job_to_json(j: &JobRecord) -> serde_json::Value {
    serde_json::json!({
        "id": j.id,
        "user": j.user.as_str(),
        "group": j.group.as_str(),
        "account": j.account.as_str(),
        "app": j.app.as_str(),
        "script": j.script.as_str(),
        "submit_dir": j.submit_dir.as_str(),
        "submit_time": j.submit_time,
        "requested_seconds": j.requested_seconds,
        "nodes": j.nodes,
        "runtime_seconds": j.runtime_seconds,
        "bytes_read": j.bytes_read,
        "bytes_written": j.bytes_written,
        "mean_power_watts": j.mean_power_watts,
        "cancelled": j.cancelled,
    })
}

fn job_from_json(v: &serde_json::Value) -> Option<JobRecord> {
    let text = |key: &str| v.get(key).and_then(|f| f.as_str()).map(str::to_string);
    // Integers may arrive as floats from hand-edited files; accept both.
    let uint = |key: &str| {
        v.get(key)
            .and_then(|f| f.as_u64().or_else(|| f.as_f64().map(|x| x as u64)))
    };
    Some(JobRecord {
        id: uint("id")?,
        user: text("user")?,
        group: text("group")?,
        account: text("account")?,
        app: text("app")?,
        script: text("script")?,
        submit_dir: text("submit_dir")?,
        submit_time: uint("submit_time")?,
        requested_seconds: uint("requested_seconds")?,
        nodes: uint("nodes")? as u32,
        runtime_seconds: uint("runtime_seconds")?,
        bytes_read: v.get("bytes_read")?.as_f64()?,
        bytes_written: v.get("bytes_written")?.as_f64()?,
        // `#[serde(default)]` equivalent: absent in pre-power traces.
        mean_power_watts: v
            .get("mean_power_watts")
            .and_then(|f| f.as_f64())
            .unwrap_or(0.0),
        cancelled: v.get("cancelled")?.as_bool()?,
    })
}

/// Standard normal via Box–Muller, exponentiated to a lognormal with median
/// 1 and the given sigma.
fn lognormal(sigma: f64, rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

/// Render a full SLURM job script for a run configuration.
fn render_script(
    app: &AppTemplate,
    account: &str,
    size: f64,
    nodes: u32,
    run_id: u32,
    requested_seconds: u64,
) -> String {
    let tasks = nodes * 16;
    let hours = requested_seconds / 3600;
    let mins = (requested_seconds % 3600) / 60;
    let mut s = String::with_capacity(512);
    s.push_str("#!/bin/bash\n");
    s.push_str(&format!("#SBATCH -J {}_{run_id}\n", app.name));
    s.push_str(&format!("#SBATCH -N {nodes}\n"));
    s.push_str(&format!("#SBATCH -n {tasks}\n"));
    s.push_str(&format!("#SBATCH -t {hours:02}:{mins:02}:00\n"));
    s.push_str(&format!("#SBATCH -A {account}\n"));
    s.push_str(&format!(
        "#SBATCH -D /p/lustre/{}/{}_{run_id}\n",
        app.name, app.name
    ));
    s.push_str("#SBATCH -p pbatch\n");
    let size_str = format!("{size:.1}");
    let run_str = run_id.to_string();
    let nodes_str = nodes.to_string();
    let tasks_str = tasks.to_string();
    for line in app.body {
        let rendered = line
            .replace("{size}", &size_str)
            .replace("{run}", &run_str)
            .replace("{nodes}", &nodes_str)
            .replace("{tasks}", &tasks_str)
            .replace("{app}", app.name);
        s.push_str(&rendered);
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn small_cab(n: usize) -> Trace {
        Trace::generate(&TraceConfig::preset(TracePreset::CabLike, n))
    }

    #[test]
    fn generates_requested_job_count_in_time_order() {
        let t = small_cab(2000);
        assert_eq!(t.jobs.len(), 2000);
        for w in t.jobs.windows(2) {
            assert!(w[0].submit_time <= w[1].submit_time);
        }
    }

    #[test]
    fn is_deterministic_for_seed() {
        let a = small_cab(500);
        let b = small_cab(500);
        assert_eq!(a.jobs.len(), b.jobs.len());
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.script, y.script);
            assert_eq!(x.runtime_seconds, y.runtime_seconds);
        }
    }

    #[test]
    fn cancel_rate_is_near_ten_percent() {
        let t = small_cab(10_000);
        let cancelled = t.jobs.iter().filter(|j| j.cancelled).count();
        let rate = cancelled as f64 / t.jobs.len() as f64;
        assert!((0.07..0.13).contains(&rate), "cancel rate {rate}");
    }

    #[test]
    fn script_reuse_matches_paper_uniqueness() {
        // Paper: 97,361 unique of 265,786 executed (~37 %); accept 25-50 %.
        let t = small_cab(10_000);
        let frac = t.unique_scripts() as f64 / t.jobs.len() as f64;
        assert!((0.25..0.50).contains(&frac), "unique fraction {frac}");
    }

    #[test]
    fn runtime_distribution_matches_cab_statistics() {
        let t = small_cab(10_000);
        let minutes: Vec<f64> = t.executed_jobs().map(|j| j.runtime_minutes()).collect();
        let mean = stats::mean(&minutes);
        let under_hour =
            minutes.iter().filter(|&&m| m < 60.0).count() as f64 / minutes.len() as f64;
        let max = minutes.iter().cloned().fold(0.0, f64::max);
        assert!((25.0..70.0).contains(&mean), "mean runtime {mean} min");
        assert!(
            (0.40..0.75).contains(&under_hour),
            "under-hour share {under_hour}"
        );
        assert!(max <= 960.0 + 1e-6, "max runtime {max}");
    }

    #[test]
    fn user_requests_overestimate_like_cab_users() {
        // Paper: mean request error ≈ 172 min on Cab. Accept a broad band.
        let t = small_cab(10_000);
        let errors: Vec<f64> = t
            .executed_jobs()
            .map(|j| j.requested_minutes() - j.runtime_minutes())
            .collect();
        let mean_error = stats::mean(&errors);
        assert!(mean_error > 0.0, "users must overestimate on average");
        assert!(
            (60.0..420.0).contains(&mean_error),
            "mean request error {mean_error} min"
        );
        let never_killed =
            errors.iter().filter(|&&e| e >= 0.0).count() as f64 / errors.len() as f64;
        assert!(
            never_killed > 0.8,
            "most jobs fit the request ({never_killed})"
        );
    }

    #[test]
    fn io_bandwidth_is_heavy_tailed() {
        let t = small_cab(10_000);
        let read_bw: Vec<f64> = t.executed_jobs().map(|j| j.read_bandwidth()).collect();
        let mean = stats::mean(&read_bw);
        let median = stats::percentile(&read_bw, 50.0);
        assert!(
            mean > 5.0 * median,
            "mean {mean:.3e} should dwarf median {median:.3e} (paper: orders of magnitude)"
        );
    }

    #[test]
    fn scripts_parse_back_with_slurm_directives() {
        let t = small_cab(200);
        for j in t.jobs.iter().take(50) {
            assert!(j.script.starts_with("#!/bin/bash\n"));
            assert!(
                j.script.contains("#SBATCH -N "),
                "missing nodes: {}",
                j.script
            );
            assert!(
                j.script.contains("#SBATCH -t "),
                "missing time: {}",
                j.script
            );
            assert!(
                j.script.contains("srun") || j.script.contains("htar"),
                "{}",
                j.script
            );
        }
    }

    #[test]
    fn cancelled_jobs_use_no_resources() {
        let t = small_cab(5_000);
        for j in t.jobs.iter().filter(|j| j.cancelled) {
            assert_eq!(j.runtime_seconds, 0);
            assert_eq!(j.bytes_read, 0.0);
            assert_eq!(j.bytes_written, 0.0);
        }
    }

    #[test]
    fn trace_json_round_trips() {
        let t = small_cab(120);
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.jobs.len(), t.jobs.len());
        assert_eq!(back.cluster_nodes, t.cluster_nodes);
        assert_eq!(back.jobs[7].script, t.jobs[7].script);
        assert_eq!(back.jobs[7].runtime_seconds, t.jobs[7].runtime_seconds);
    }

    #[test]
    fn trace_from_bad_json_errors() {
        assert!(Trace::from_json("{not json").is_err());
    }

    #[test]
    fn sdsc_presets_scale_runtimes_up() {
        let cab = small_cab(3_000);
        let sdsc = Trace::generate(&TraceConfig::preset(TracePreset::Sdsc95, 3_000));
        let mean = |t: &Trace| {
            let v: Vec<f64> = t.executed_jobs().map(|j| j.runtime_minutes()).collect();
            stats::mean(&v)
        };
        assert!(mean(&sdsc) > mean(&cab));
        assert!(sdsc.cap_minutes > cab.cap_minutes);
    }

    #[test]
    fn resubmitted_scripts_share_request_but_vary_runtime() {
        let t = small_cab(5_000);
        let mut by_script: HashMap<&str, Vec<&JobRecord>> = HashMap::new();
        for j in t.executed_jobs() {
            by_script.entry(j.script.as_str()).or_default().push(j);
        }
        let mut found_varying = false;
        for group in by_script.values().filter(|g| g.len() >= 3) {
            let first = group[0];
            assert!(group
                .iter()
                .all(|j| j.requested_seconds == first.requested_seconds));
            if group
                .iter()
                .any(|j| j.runtime_seconds != first.runtime_seconds)
            {
                found_varying = true;
            }
        }
        assert!(
            found_varying,
            "noise should vary runtimes of identical scripts"
        );
    }
}
