//! Application families: the script templates and hidden resource models
//! behind the synthetic corpus.

/// How an application's runtime scales with its inputs. All times are in
/// minutes; the generator adds lognormal noise and clamps to the cluster's
/// runtime cap.
#[derive(Debug, Clone, Copy)]
pub struct ResourceModel {
    /// Baseline runtime at size 1.0 on one node, minutes.
    pub base_minutes: f64,
    /// Runtime multiplier per unit of the problem-size parameter.
    pub size_exponent: f64,
    /// Node-count scaling exponent: negative = strong scaling speedup,
    /// 0 = embarrassingly parallel per-node work.
    pub node_exponent: f64,
    /// Bytes read per unit size per node.
    pub read_bytes_per_unit: f64,
    /// Bytes written per unit size per node.
    pub write_bytes_per_unit: f64,
}

/// A synthetic application family: a distinctive job-script template plus a
/// hidden resource model.
#[derive(Debug, Clone)]
pub struct AppTemplate {
    /// Short family name, used in job names and binaries.
    pub name: &'static str,
    /// Hidden ground truth for runtime and IO.
    pub model: ResourceModel,
    /// Typical node request range (inclusive).
    pub node_range: (u32, u32),
    /// Problem-size parameter range sampled per run.
    pub size_range: (f64, f64),
    /// Script body lines; `{size}`, `{nodes}`, `{tasks}`, `{run}`, `{app}`
    /// placeholders are substituted at render time.
    pub body: &'static [&'static str],
}

impl AppTemplate {
    /// The hidden true runtime (minutes, pre-noise, un-clamped) for a run.
    pub fn true_runtime_minutes(&self, size: f64, nodes: u32) -> f64 {
        let m = &self.model;
        m.base_minutes * size.powf(m.size_exponent) * (nodes as f64).powf(m.node_exponent)
    }

    /// The hidden true IO volumes `(bytes_read, bytes_written)`.
    pub fn true_io_bytes(&self, size: f64, nodes: u32) -> (f64, f64) {
        let m = &self.model;
        let units = size * nodes as f64;
        (
            m.read_bytes_per_unit * units,
            m.write_bytes_per_unit * units,
        )
    }
}

const MB: f64 = 1.0e6;
const GB: f64 = 1.0e9;

/// The library of application families. Sizes and scalings are chosen so
/// the aggregate runtime distribution matches the paper's Cab statistics
/// (mean ≈ 44 min, ~half under an hour, a thin tail to the 960-minute cap)
/// and IO is heavy-tailed (a few IO-hungry families dominate the mean).
pub static APP_LIBRARY: &[AppTemplate] = &[
    AppTemplate {
        name: "lammps",
        model: ResourceModel {
            base_minutes: 9.0,
            size_exponent: 1.1,
            node_exponent: -0.35,
            read_bytes_per_unit: 60.0 * MB,
            write_bytes_per_unit: 280.0 * MB,
        },
        node_range: (4, 64),
        size_range: (1.0, 24.0),
        body: &[
            "module load intel mvapich2",
            "export OMP_NUM_THREADS=1",
            "srun -n {tasks} ./lmp_mpi -in in.melt_{run} -var scale {size}",
            "gzip -f log.lammps",
        ],
    },
    AppTemplate {
        name: "namd",
        model: ResourceModel {
            base_minutes: 14.0,
            size_exponent: 1.0,
            node_exponent: -0.4,
            read_bytes_per_unit: 120.0 * MB,
            write_bytes_per_unit: 160.0 * MB,
        },
        node_range: (8, 128),
        size_range: (1.0, 30.0),
        body: &[
            "module load namd/2.12",
            "cd $SLURM_SUBMIT_DIR",
            "srun -n {tasks} namd2 +ppn 15 stmv_{run}.namd --steps {size}000",
            "cp output/*.coor /p/lustre/{app}/archive/",
        ],
    },
    AppTemplate {
        name: "hpl",
        model: ResourceModel {
            base_minutes: 25.0,
            size_exponent: 1.4,
            node_exponent: -0.2,
            read_bytes_per_unit: 2.0 * MB,
            write_bytes_per_unit: 8.0 * MB,
        },
        node_range: (16, 256),
        size_range: (1.0, 10.0),
        body: &[
            "module load mkl",
            "export HPL_N=$(( {size} * 24576 ))",
            "srun -n {tasks} ./xhpl",
            "grep WR hpl.out | tail -1",
        ],
    },
    AppTemplate {
        name: "qmc",
        model: ResourceModel {
            base_minutes: 45.0,
            size_exponent: 1.2,
            node_exponent: -0.1,
            read_bytes_per_unit: 30.0 * MB,
            write_bytes_per_unit: 900.0 * MB,
        },
        node_range: (16, 128),
        size_range: (1.0, 12.0),
        body: &[
            "module load qmcpack",
            "srun -n {tasks} qmcpack dmc_{run}.xml",
            "echo walkers={size}00 >> qmc.meta",
        ],
    },
    AppTemplate {
        name: "climate",
        model: ResourceModel {
            base_minutes: 60.0,
            size_exponent: 1.0,
            node_exponent: -0.15,
            read_bytes_per_unit: 1.4 * GB,
            write_bytes_per_unit: 2.2 * GB,
        },
        node_range: (32, 256),
        size_range: (1.0, 10.0),
        body: &[
            "module load netcdf hdf5",
            "cd /p/lustre/{app}/cesm/case_{run}",
            "srun -n {tasks} ./cesm.exe -months {size}",
            "ncdump -h hist/latest.nc | head",
        ],
    },
    AppTemplate {
        name: "mcnp",
        model: ResourceModel {
            base_minutes: 18.0,
            size_exponent: 1.05,
            node_exponent: -0.3,
            read_bytes_per_unit: 10.0 * MB,
            write_bytes_per_unit: 120.0 * MB,
        },
        node_range: (2, 32),
        size_range: (1.0, 20.0),
        body: &[
            "module load mcnp6",
            "srun -n {tasks} mcnp6 i=crit_{run}.inp tasks {tasks}",
            "echo nps {size}e6 >> run.meta",
        ],
    },
    AppTemplate {
        name: "ale3d",
        model: ResourceModel {
            base_minutes: 80.0,
            size_exponent: 1.25,
            node_exponent: -0.25,
            read_bytes_per_unit: 400.0 * MB,
            write_bytes_per_unit: 3.5 * GB,
        },
        node_range: (16, 192),
        size_range: (1.0, 8.0),
        body: &[
            "module load ale3d",
            "srun -n {tasks} ale3d -i impact_{run}.ale -cycles {size}0000",
            "ls -l restart/ | wc -l",
        ],
    },
    AppTemplate {
        name: "pytrain",
        model: ResourceModel {
            base_minutes: 30.0,
            size_exponent: 1.15,
            node_exponent: 0.0,
            read_bytes_per_unit: 2.5 * GB,
            write_bytes_per_unit: 150.0 * MB,
        },
        node_range: (1, 4),
        size_range: (1.0, 16.0),
        body: &[
            "module load python/3.6 cuda/9.1",
            "source ~/venvs/torch/bin/activate",
            "srun -n {nodes} python train.py --epochs {size}0 --data /p/lustre/{app}/imagenet_{run}",
            "python eval.py --ckpt checkpoints/last.pt",
        ],
    },
    AppTemplate {
        name: "postproc",
        model: ResourceModel {
            base_minutes: 4.0,
            size_exponent: 0.9,
            node_exponent: -0.5,
            read_bytes_per_unit: 5.0 * GB,
            write_bytes_per_unit: 600.0 * MB,
        },
        node_range: (1, 8),
        size_range: (0.5, 6.0),
        body: &[
            "module load visit",
            "srun -n {tasks} visit -nowin -cli -s extract_{run}.py -frames {size}00",
            "rsync -a frames/ /p/lustre/{app}/frames_{run}/",
        ],
    },
    AppTemplate {
        name: "iocheck",
        model: ResourceModel {
            base_minutes: 6.0,
            size_exponent: 1.0,
            node_exponent: 0.0,
            read_bytes_per_unit: 12.0 * GB,
            write_bytes_per_unit: 12.0 * GB,
        },
        node_range: (4, 64),
        size_range: (0.5, 8.0),
        body: &[
            "module load ior",
            "srun -n {tasks} ior -a POSIX -b {size}g -t 4m -o /p/lustre/{app}/ior_{run}.dat",
            "rm -f /p/lustre/{app}/ior_{run}.dat",
        ],
    },
    AppTemplate {
        name: "seismic",
        model: ResourceModel {
            base_minutes: 35.0,
            size_exponent: 1.1,
            node_exponent: -0.3,
            read_bytes_per_unit: 800.0 * MB,
            write_bytes_per_unit: 1.1 * GB,
        },
        node_range: (8, 96),
        size_range: (1.0, 14.0),
        body: &[
            "module load sw4",
            "srun -n {tasks} sw4 berkeley_{run}.in",
            "echo grid={size}00m >> sw4.meta",
        ],
    },
    AppTemplate {
        name: "bioseq",
        model: ResourceModel {
            base_minutes: 12.0,
            size_exponent: 1.0,
            node_exponent: -0.45,
            read_bytes_per_unit: 3.2 * GB,
            write_bytes_per_unit: 400.0 * MB,
        },
        node_range: (1, 16),
        size_range: (0.5, 10.0),
        body: &[
            "module load blast samtools",
            "srun -n {tasks} blastn -db nt -query reads_{run}.fa -num_threads 16",
            "samtools sort -@ 8 aln_{run}.bam -o sorted_{run}.bam",
        ],
    },
    AppTemplate {
        name: "cfd",
        model: ResourceModel {
            base_minutes: 55.0,
            size_exponent: 1.3,
            node_exponent: -0.35,
            read_bytes_per_unit: 250.0 * MB,
            write_bytes_per_unit: 1.8 * GB,
        },
        node_range: (16, 160),
        size_range: (1.0, 9.0),
        body: &[
            "module load openfoam",
            "decomposePar -case cavity_{run}",
            "srun -n {tasks} simpleFoam -parallel -case cavity_{run}",
            "reconstructPar -case cavity_{run} -latestTime",
        ],
    },
    AppTemplate {
        name: "montecarlo",
        model: ResourceModel {
            base_minutes: 8.0,
            size_exponent: 1.0,
            node_exponent: 0.0,
            read_bytes_per_unit: 1.0 * MB,
            write_bytes_per_unit: 40.0 * MB,
        },
        node_range: (1, 32),
        size_range: (0.5, 12.0),
        body: &[
            "srun -n {tasks} ./mc_sweep --paths {size}e7 --seed {run}",
            "cat results_*.csv > sweep_{run}.csv",
        ],
    },
    AppTemplate {
        name: "chemtable",
        model: ResourceModel {
            base_minutes: 20.0,
            size_exponent: 1.2,
            node_exponent: -0.2,
            read_bytes_per_unit: 90.0 * MB,
            write_bytes_per_unit: 700.0 * MB,
        },
        node_range: (4, 48),
        size_range: (1.0, 10.0),
        body: &[
            "module load gaussian",
            "srun -n {tasks} g16 < mol_{run}.gjf > mol_{run}.log",
            "formchk mol_{run}.chk",
        ],
    },
    AppTemplate {
        name: "debugrun",
        model: ResourceModel {
            base_minutes: 1.5,
            size_exponent: 0.8,
            node_exponent: -0.2,
            read_bytes_per_unit: 0.5 * MB,
            write_bytes_per_unit: 2.0 * MB,
        },
        node_range: (1, 4),
        size_range: (0.2, 3.0),
        body: &[
            "make -j 16",
            "srun -n {tasks} ./a.out --smoke {size}",
            "echo exit=$? >> smoke.log",
        ],
    },
    AppTemplate {
        name: "paramsweep",
        model: ResourceModel {
            base_minutes: 10.0,
            size_exponent: 1.05,
            node_exponent: -0.1,
            read_bytes_per_unit: 25.0 * MB,
            write_bytes_per_unit: 220.0 * MB,
        },
        node_range: (2, 24),
        size_range: (0.5, 16.0),
        body: &[
            "for p in $(seq 1 {size}); do",
            "  srun -n {tasks} ./model --param $p --tag {run} &",
            "done",
            "wait",
        ],
    },
    AppTemplate {
        name: "fusion",
        model: ResourceModel {
            base_minutes: 90.0,
            size_exponent: 1.15,
            node_exponent: -0.25,
            read_bytes_per_unit: 650.0 * MB,
            write_bytes_per_unit: 4.2 * GB,
        },
        node_range: (32, 256),
        size_range: (1.0, 7.0),
        body: &[
            "module load gene",
            "srun -n {tasks} gene_cab parameters_{run}.nml",
            "h5dump -H out/field_{run}.h5 | head",
        ],
    },
    AppTemplate {
        name: "astro",
        model: ResourceModel {
            base_minutes: 40.0,
            size_exponent: 1.2,
            node_exponent: -0.3,
            read_bytes_per_unit: 1.9 * GB,
            write_bytes_per_unit: 2.8 * GB,
        },
        node_range: (16, 128),
        size_range: (1.0, 11.0),
        body: &[
            "module load enzo hdf5",
            "srun -n {tasks} enzo -d halo_{run}.enzo",
            "python yt_project.py --level {size}",
        ],
    },
    AppTemplate {
        name: "archive",
        model: ResourceModel {
            base_minutes: 3.0,
            size_exponent: 1.0,
            node_exponent: 0.0,
            read_bytes_per_unit: 8.0 * GB,
            write_bytes_per_unit: 8.0 * GB,
        },
        node_range: (1, 2),
        size_range: (0.2, 10.0),
        body: &[
            "htar -cvf /hpss/{app}/run_{run}.tar /p/lustre/{app}/run_{run}",
            "echo archived {size}TB",
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_twenty_families() {
        assert_eq!(APP_LIBRARY.len(), 20);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = APP_LIBRARY.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), APP_LIBRARY.len());
    }

    #[test]
    fn runtime_grows_with_size() {
        for app in APP_LIBRARY {
            let (lo, hi) = app.size_range;
            let nodes = app.node_range.0;
            assert!(
                app.true_runtime_minutes(hi, nodes) >= app.true_runtime_minutes(lo, nodes),
                "{}",
                app.name
            );
        }
    }

    #[test]
    fn strong_scaling_apps_speed_up_with_nodes() {
        let lammps = APP_LIBRARY.iter().find(|a| a.name == "lammps").unwrap();
        let t4 = lammps.true_runtime_minutes(8.0, 4);
        let t64 = lammps.true_runtime_minutes(8.0, 64);
        assert!(t64 < t4);
    }

    #[test]
    fn io_volumes_are_positive_and_scale_with_nodes() {
        for app in APP_LIBRARY {
            let (r1, w1) = app.true_io_bytes(2.0, 1);
            let (r8, w8) = app.true_io_bytes(2.0, 8);
            assert!(r1 > 0.0 && w1 > 0.0, "{}", app.name);
            assert!(r8 > r1 && w8 > w1, "{}", app.name);
        }
    }

    #[test]
    fn node_ranges_are_sane() {
        for app in APP_LIBRARY {
            assert!(app.node_range.0 >= 1);
            assert!(app.node_range.0 <= app.node_range.1);
            assert!(
                app.node_range.1 <= 256,
                "{} exceeds typical Cab allocations",
                app.name
            );
        }
    }

    #[test]
    fn bodies_reference_templates() {
        for app in APP_LIBRARY {
            assert!(!app.body.is_empty(), "{} has an empty body", app.name);
        }
    }
}
