//! Synthetic HPC workload generation: the stand-in for the paper's
//! (non-public) 295,077-job LLNL Cab trace.
//!
//! The generator is calibrated against every distributional fact the paper
//! states about its dataset (§2.3, §3.1, §3.2):
//!
//! * ~1,296-node cluster, 16-hour (960-minute) runtime cap;
//! * mean job runtime ≈ 44 min, roughly half of the jobs under an hour;
//! * 492 users running ~20 application families;
//! * ~10 % of submissions cancelled before execution;
//! * only ~37 % of job scripts unique (users resubmit);
//! * user-requested runtimes heavily overestimated (mean error ≈ 172 min,
//!   ≈ 24 % mean relative accuracy), snapped to round wall-time values;
//! * heavy-tailed IO: mean read/write bandwidth orders of magnitude above
//!   the median.
//!
//! Crucially, the *hidden ground-truth model* makes runtime and IO
//! deterministic functions (plus small noise) of information that lives in
//! the script text: the application family, node count, and a per-run
//! problem-size parameter embedded in the `srun` line. Table-1 features
//! capture the first two but not the third — the regime in which the paper
//! found whole-script models to beat parsed-feature models.

pub mod apps;
pub mod job;
pub mod stats;
pub mod trace;
pub mod users;

pub use apps::{AppTemplate, APP_LIBRARY};
pub use job::JobRecord;
pub use trace::{Trace, TraceConfig, TracePreset};
pub use users::UserPopulation;
