//! The synthetic user population.

use rand::Rng;

/// One synthetic user: identity, app preferences, and the runtime-request
/// habits that make user estimates bad (§1: mean error ≈ 172 min).
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Login name, e.g. `user042`.
    pub login: String,
    /// Login group.
    pub group: String,
    /// Account / bank.
    pub account: String,
    /// Home-ish submit directory.
    pub submit_dir: String,
    /// Indices into the app library this user runs, most-preferred first.
    pub apps: Vec<usize>,
    /// Multiplier the user applies to a job's *typical* runtime when
    /// requesting wall time (users pad heavily to avoid termination).
    pub overestimate_factor: f64,
    /// Relative submission activity weight.
    pub activity: f64,
}

/// A population of [`UserProfile`]s with Zipf-like activity.
#[derive(Debug, Clone)]
pub struct UserPopulation {
    users: Vec<UserProfile>,
    cumulative_activity: Vec<f64>,
}

impl UserPopulation {
    /// Generate `n_users` users over an app library of `n_apps` families.
    pub fn generate(n_users: usize, n_apps: usize, rng: &mut impl Rng) -> Self {
        assert!(n_users > 0 && n_apps > 0);
        let groups = ["pls", "wci", "eng", "comp", "bio", "phys"];
        let mut users = Vec::with_capacity(n_users);
        for i in 0..n_users {
            let group = groups[rng.gen_range(0..groups.len())];
            // Each user works on 1-4 app families.
            let n_user_apps = rng.gen_range(1..=4usize.min(n_apps));
            let mut apps = Vec::with_capacity(n_user_apps);
            while apps.len() < n_user_apps {
                let a = rng.gen_range(0..n_apps);
                if !apps.contains(&a) {
                    apps.push(a);
                }
            }
            users.push(UserProfile {
                login: format!("user{i:03}"),
                group: group.to_string(),
                account: format!("{group}_acct{}", rng.gen_range(0..4)),
                submit_dir: format!("/g/g{}/user{i:03}", rng.gen_range(10..25)),
                apps,
                // Factors 2x-12x produce the paper's ~24% mean relative
                // accuracy for user requests once snapped to round values.
                overestimate_factor: 2.0 + rng.gen::<f64>().powi(2) * 10.0,
                activity: 1.0 / (i + 1) as f64, // Zipf rank weight
            });
        }
        let mut cumulative_activity = Vec::with_capacity(n_users);
        let mut acc = 0.0;
        for u in &users {
            acc += u.activity;
            cumulative_activity.push(acc);
        }
        UserPopulation {
            users,
            cumulative_activity,
        }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The users.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Sample a user index proportionally to activity.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self
            .cumulative_activity
            .last()
            .expect("non-empty population");
        let u: f64 = rng.gen_range(0.0..total);
        self.cumulative_activity
            .partition_point(|&c| c <= u)
            .min(self.users.len() - 1)
    }
}

/// Snap a wall-time request (minutes) to the round values users actually
/// type: 15/30 min, then whole hours, capped at `cap_minutes`.
pub fn snap_request_minutes(m: f64, cap_minutes: f64) -> f64 {
    let snapped = if m <= 15.0 {
        15.0
    } else if m <= 30.0 {
        30.0
    } else if m <= 60.0 {
        60.0
    } else {
        (m / 60.0).ceil() * 60.0
    };
    snapped.min(cap_minutes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(21)
    }

    #[test]
    fn generates_requested_count_with_unique_logins() {
        let p = UserPopulation::generate(492, 20, &mut rng());
        assert_eq!(p.len(), 492);
        let mut logins: Vec<_> = p.users().iter().map(|u| u.login.clone()).collect();
        logins.sort();
        logins.dedup();
        assert_eq!(logins.len(), 492);
    }

    #[test]
    fn users_have_at_least_one_app() {
        let p = UserPopulation::generate(100, 20, &mut rng());
        for u in p.users() {
            assert!(!u.apps.is_empty());
            assert!(u.apps.iter().all(|&a| a < 20));
        }
    }

    #[test]
    fn sampling_favours_low_ranks() {
        let p = UserPopulation::generate(50, 10, &mut rng());
        let mut r = rng();
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[p.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn overestimate_factors_are_padded() {
        let p = UserPopulation::generate(200, 10, &mut rng());
        assert!(p.users().iter().all(|u| u.overestimate_factor >= 2.0));
        assert!(p.users().iter().any(|u| u.overestimate_factor > 6.0));
    }

    #[test]
    fn snapping_produces_round_values() {
        assert_eq!(snap_request_minutes(7.0, 960.0), 15.0);
        assert_eq!(snap_request_minutes(22.0, 960.0), 30.0);
        assert_eq!(snap_request_minutes(45.0, 960.0), 60.0);
        assert_eq!(snap_request_minutes(61.0, 960.0), 120.0);
        assert_eq!(snap_request_minutes(700.0, 960.0), 720.0);
        assert_eq!(snap_request_minutes(5000.0, 960.0), 960.0);
    }
}
