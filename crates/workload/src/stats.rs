//! Small statistics helpers shared by tests and the experiment harness.

/// Arithmetic mean (0 for empty input).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Percentile in `[0, 100]` by linear interpolation (0 for empty input).
pub fn percentile(v: &[f64], p: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median.
pub fn median(v: &[f64]) -> f64 {
    percentile(v, 50.0)
}

/// Five-number summary plus mean: (min, q1, median, q3, max, mean) — the
/// numbers behind every boxplot in the paper.
pub fn boxplot_summary(v: &[f64]) -> BoxplotSummary {
    BoxplotSummary {
        min: percentile(v, 0.0),
        q1: percentile(v, 25.0),
        median: percentile(v, 50.0),
        q3: percentile(v, 75.0),
        max: percentile(v, 100.0),
        mean: mean(v),
    }
}

/// The six numbers a boxplot displays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl std::fmt::Display for BoxplotSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets; values
/// outside the range clamp into the edge buckets.
pub fn histogram(v: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in v {
        let b = (((x - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(median(&v), 2.5);
        assert_eq!(percentile(&v, 25.0), 1.75);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(median(&a), median(&b));
    }

    #[test]
    fn boxplot_summary_is_ordered() {
        let v: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = boxplot_summary(&v);
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.median, 50.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let v = [-1.0, 0.0, 0.5, 0.99, 5.0];
        let h = histogram(&v, 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]); // -1,0 -> bin0; 0.5,0.99,5.0 -> bin1
        assert_eq!(h.iter().sum::<usize>(), v.len());
    }
}
