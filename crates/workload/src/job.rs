//! The job record: everything the paper's dataset carries per job.

use serde::{Deserialize, Serialize};

/// One job from the synthetic trace: the script, the scheduler metadata, and
/// the ground-truth resource usage the predictors are scored against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Sequential job id, ordered by submission.
    pub id: u64,
    /// Submitting user login.
    pub user: String,
    /// User's login group.
    pub group: String,
    /// Account / bank charged.
    pub account: String,
    /// Application family name (hidden label; never given to predictors).
    pub app: String,
    /// Full job-script text.
    pub script: String,
    /// Directory the job was submitted from.
    pub submit_dir: String,
    /// Submission time, seconds since trace start.
    pub submit_time: u64,
    /// User-requested wall time, seconds.
    pub requested_seconds: u64,
    /// Requested node count.
    pub nodes: u32,
    /// True runtime, seconds (0 for cancelled jobs).
    pub runtime_seconds: u64,
    /// True bytes read over the job's lifetime.
    pub bytes_read: f64,
    /// True bytes written over the job's lifetime.
    pub bytes_written: f64,
    /// Mean power draw over the job's lifetime, watts (0 for cancelled
    /// jobs). Power is the paper's named future-work resource; the
    /// generator provides ground truth so the extension head can be
    /// evaluated.
    #[serde(default)]
    pub mean_power_watts: f64,
    /// Cancelled before execution (excluded from evaluation, as in §2.3).
    pub cancelled: bool,
}

impl JobRecord {
    /// True runtime in (fractional) minutes.
    pub fn runtime_minutes(&self) -> f64 {
        self.runtime_seconds as f64 / 60.0
    }

    /// True mean read bandwidth, bytes/second (0 for zero-length jobs).
    pub fn read_bandwidth(&self) -> f64 {
        if self.runtime_seconds == 0 {
            0.0
        } else {
            self.bytes_read / self.runtime_seconds as f64
        }
    }

    /// True mean write bandwidth, bytes/second.
    pub fn write_bandwidth(&self) -> f64 {
        if self.runtime_seconds == 0 {
            0.0
        } else {
            self.bytes_written / self.runtime_seconds as f64
        }
    }

    /// User-requested runtime in minutes (the baseline "user prediction").
    pub fn requested_minutes(&self) -> f64 {
        self.requested_seconds as f64 / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobRecord {
        JobRecord {
            id: 1,
            user: "user001".into(),
            group: "grp01".into(),
            account: "acct1".into(),
            app: "lammps".into(),
            script: "#!/bin/bash\n".into(),
            submit_dir: "/home/user001".into(),
            submit_time: 100,
            requested_seconds: 7200,
            nodes: 8,
            runtime_seconds: 1800,
            bytes_read: 9.0e9,
            bytes_written: 3.6e9,
            mean_power_watts: 2_400.0,
            cancelled: false,
        }
    }

    #[test]
    fn bandwidth_is_bytes_over_runtime() {
        let j = job();
        assert!((j.read_bandwidth() - 5.0e6).abs() < 1.0);
        assert!((j.write_bandwidth() - 2.0e6).abs() < 1.0);
    }

    #[test]
    fn zero_runtime_has_zero_bandwidth() {
        let mut j = job();
        j.runtime_seconds = 0;
        assert_eq!(j.read_bandwidth(), 0.0);
        assert_eq!(j.write_bandwidth(), 0.0);
    }

    #[test]
    fn minute_conversions() {
        let j = job();
        assert_eq!(j.runtime_minutes(), 30.0);
        assert_eq!(j.requested_minutes(), 120.0);
    }
}
