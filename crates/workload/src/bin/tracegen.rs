//! Generate a synthetic job trace and write it as JSON.
//!
//! ```text
//! cargo run --release -p prionn-workload --bin tracegen -- \
//!     --preset cab --jobs 5000 --seed 7 --out trace.json
//! ```

use prionn_workload::{stats, Trace, TraceConfig, TracePreset};

const USAGE: &str = "usage: tracegen [--preset cab|sdsc95|sdsc96] [--jobs N] \
[--users N] [--seed N] [--out PATH]";

fn main() {
    let mut preset = TracePreset::CabLike;
    let mut jobs = 1_000usize;
    let mut users: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--preset" => {
                preset = match value("--preset").as_str() {
                    "cab" => TracePreset::CabLike,
                    "sdsc95" => TracePreset::Sdsc95,
                    "sdsc96" => TracePreset::Sdsc96,
                    other => {
                        eprintln!("unknown preset {other}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs N"),
            "--users" => users = Some(value("--users").parse().expect("--users N")),
            "--seed" => seed = Some(value("--seed").parse().expect("--seed N")),
            "--out" => out = Some(value("--out").clone()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = TraceConfig::preset(preset, jobs);
    if let Some(u) = users {
        cfg.n_users = u;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    let trace = Trace::generate(&cfg);

    let minutes: Vec<f64> = trace.executed_jobs().map(|j| j.runtime_minutes()).collect();
    let read_bw: Vec<f64> = trace.executed_jobs().map(|j| j.read_bandwidth()).collect();
    eprintln!(
        "generated {} jobs ({} executed, {} unique scripts)",
        trace.jobs.len(),
        minutes.len(),
        trace.unique_scripts()
    );
    eprintln!(
        "runtime: mean {:.1} min, median {:.1} min; read bw: mean {:.3e} B/s, median {:.3e} B/s",
        stats::mean(&minutes),
        stats::median(&minutes),
        stats::mean(&read_bw),
        stats::median(&read_bw)
    );

    let json = trace.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, json).expect("write trace file");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
