//! Fleet observability plane, end to end: real shards with real ops
//! endpoints, a tracing router, and a `FleetCollector` federating the
//! lot. Pins the three acceptance surfaces of the plane:
//!
//! 1. a request traced across router + shard is retrievable as ONE
//!    stitched tree by trace id via `/fleet/traces`;
//! 2. `/fleet/metrics` serves bucket-exact merged histograms — the
//!    merged counts equal the per-shard scrapes summed bucket-wise;
//! 3. an SLO burn-rate alert fires edge-triggered under an injected
//!    violation and is visible as `slo_*` metrics on the merged surface,
//!    and a killed shard degrades the merged view (up gauge drops,
//!    quorum decides `/fleet/healthz`).

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use prionn_fleet::router::{Router, RouterConfig};
use prionn_fleet::testkit::{demo_corpus, LocalFleet, ROUTER_TRACE_NAMESPACE};
use prionn_observe::{
    CollectorConfig, FleetCollector, FlightConfig, FlightRecorder, OpsOptions, OpsServer,
    ShardTarget, SloSource, SloSpec, Tracer,
};
use prionn_telemetry::{MetricsSnapshot, Telemetry};

/// One raw HTTP/1.0 GET; returns the full response (headers + body).
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// An observed fleet plus a tracing router and a collector over both.
struct ObservedPlane {
    fleet: LocalFleet,
    router: Router,
    recorder: FlightRecorder,
    collector: FleetCollector,
    ops: OpsServer,
}

fn observed_plane(n: usize, quorum: usize, slos: Vec<SloSpec>) -> ObservedPlane {
    let fleet = LocalFleet::spawn_observed(n);
    let recorder = FlightRecorder::new(FlightConfig::default());
    let router = Router::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        down_backoff: Duration::from_millis(50),
        tracer: Some(Tracer::with_namespace(&recorder, ROUTER_TRACE_NAMESPACE)),
        ..RouterConfig::for_endpoints(fleet.endpoints())
    });
    let collector = FleetCollector::new(CollectorConfig {
        shards: fleet
            .ops_endpoints()
            .into_iter()
            .enumerate()
            .map(|(i, ops_addr)| ShardTarget {
                name: i.to_string(),
                ops_addr,
            })
            .collect(),
        quorum,
        telemetry: Some(Telemetry::new()),
        slos,
        local_recorder: Some(recorder.clone()),
        ..CollectorConfig::default()
    });
    let ops = OpsServer::start(
        "127.0.0.1:0",
        OpsOptions {
            fleet: Some(collector.clone()),
            ..OpsOptions::default()
        },
    )
    .unwrap();
    ObservedPlane {
        fleet,
        router,
        recorder,
        collector,
        ops,
    }
}

#[test]
fn stitched_trace_is_retrievable_by_id_via_fleet_traces() {
    let mut plane = observed_plane(2, 1, Vec::new());
    let scripts = demo_corpus();
    let reply = plane.router.predict(7, &scripts[..1]).unwrap();

    // The router's root span carries the fleet-wide trace id, minted in
    // the router's namespace so it cannot collide with shard-local ids.
    let spans = plane.recorder.snapshot();
    let root = spans
        .iter()
        .find(|s| s.name == "fleet_predict")
        .expect("router recorded a fleet_predict root");
    assert_eq!(
        root.trace_id >> 48,
        u64::from(ROUTER_TRACE_NAMESPACE),
        "trace id carries the router namespace: {:#x}",
        root.trace_id
    );
    assert!(
        root.detail.contains(&format!("served_by={}", reply.shard)),
        "root span names the serving shard: {:?}",
        root.detail
    );
    let hop = spans
        .iter()
        .find(|s| s.name == "hop" && s.parent_id == root.span_id)
        .expect("router recorded a hop child");

    let ops_addr = plane.ops.addr().to_string();
    let resp = http_get(
        &ops_addr,
        &format!("/fleet/traces?trace_id={}", root.trace_id),
    );
    assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
    let doc: serde_json::Value = serde_json::from_str(body_of(&resp)).unwrap();
    assert_eq!(
        doc.get("trace_id").and_then(|v| v.as_u64()),
        Some(root.trace_id)
    );
    let stitched = doc
        .get("spans")
        .and_then(|v| v.as_array())
        .expect("spans array");

    // Every stitched span belongs to the one trace, and the tree spans
    // both processes: the router's client spans AND the shard's gateway
    // spans, with the shard's root parented under the router's hop.
    for span in stitched {
        assert_eq!(
            span.get("trace_id").and_then(|v| v.as_u64()),
            Some(root.trace_id),
            "{span:?}"
        );
    }
    let names: Vec<&str> = stitched
        .iter()
        .filter_map(|s| s.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(names.contains(&"fleet_predict"), "{names:?}");
    assert!(names.contains(&"hop"), "{names:?}");
    let shard_root = stitched
        .iter()
        .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("predict"))
        .expect("shard gateway span in the stitched tree");
    assert_eq!(
        shard_root.get("parent_id").and_then(|v| v.as_u64()),
        Some(hop.span_id),
        "shard root adopts the router hop as parent"
    );

    // Unknown query → clear 400, not a panic or an empty 200.
    let bad = http_get(&ops_addr, "/fleet/traces");
    assert!(bad.starts_with("HTTP/1.0 400"), "{bad}");

    plane.ops.shutdown();
    plane.collector.shutdown();
    plane.fleet.shutdown();
}

#[test]
fn fleet_metrics_serves_bucket_exact_merged_histograms() {
    let mut plane = observed_plane(2, 1, Vec::new());
    let scripts = demo_corpus();
    for user in 0..64u64 {
        plane.router.predict(user, &scripts[..1]).unwrap();
    }
    assert_eq!(plane.collector.scrape_once(), 2, "both shards scraped");

    let shard_snaps: Vec<MetricsSnapshot> = plane
        .fleet
        .ops_endpoints()
        .iter()
        .map(|addr| MetricsSnapshot::parse(body_of(&http_get(addr, "/metrics"))))
        .collect();
    let merged_text = http_get(&plane.ops.addr().to_string(), "/fleet/metrics");
    assert!(merged_text.starts_with("HTTP/1.0 200"), "{merged_text}");
    let merged = MetricsSnapshot::parse(body_of(&merged_text));

    let merged_hist = merged
        .histogram("serve_predict_seconds", &[])
        .expect("merged predict histogram");
    let parts: Vec<_> = shard_snaps
        .iter()
        .map(|s| {
            s.histogram("serve_predict_seconds", &[])
                .expect("per-shard predict histogram")
        })
        .collect();
    assert!(
        parts.iter().all(|p| p.count > 0),
        "both shards served requests: {:?}",
        parts.iter().map(|p| p.count).collect::<Vec<_>>()
    );
    assert_eq!(
        merged_hist.count,
        parts.iter().map(|p| p.count).sum::<u64>(),
        "merged count is the exact sum"
    );
    assert_eq!(merged_hist.les, parts[0].les, "bucket layout preserved");
    for (b, le) in merged_hist.les.iter().enumerate() {
        let want: u64 = parts.iter().map(|p| p.cumulative[b]).sum();
        assert_eq!(
            merged_hist.cumulative[b], want,
            "bucket le={le} merged exactly"
        );
    }

    // Counters federate too, and the per-shard `up` gauges say who
    // contributed.
    let text = body_of(&merged_text);
    assert!(
        merged.counter_sum("serve_requests_total", &[]) >= 64.0,
        "merged requests counter"
    );
    assert!(
        text.contains(r#"fleet_obs_shard_up{shard="0"} 1"#),
        "{text}"
    );
    assert!(
        text.contains(r#"fleet_obs_shard_up{shard="1"} 1"#),
        "{text}"
    );

    plane.ops.shutdown();
    plane.collector.shutdown();
    plane.fleet.shutdown();
}

#[test]
fn burn_rate_alert_fires_under_injected_violation_and_quorum_degrades() {
    // Impossible latency objective: 99% of predicts under 1ns. Every
    // real request violates it, so the fast burn windows saturate at
    // 100x — far past the 14.4x page threshold.
    let slos = vec![
        SloSpec::new(
            "predict_p99",
            0.99,
            SloSource::LatencyBuckets {
                histogram: "serve_predict_seconds".into(),
                threshold: 1e-9,
            },
        ),
        // A healthy control: everything completes under an hour.
        SloSpec::new(
            "predict_sane",
            0.99,
            SloSource::LatencyBuckets {
                histogram: "serve_predict_seconds".into(),
                threshold: 3600.0,
            },
        ),
    ];
    let mut plane = observed_plane(2, 2, slos);
    let scripts = demo_corpus();

    // First scrape sets the cumulative baseline; the violating traffic
    // in between becomes the delta the second scrape judges.
    plane.collector.scrape_once();
    for user in 0..32u64 {
        plane.router.predict(user, &scripts[..1]).unwrap();
    }
    plane.collector.scrape_once();

    assert!(plane.collector.slo().alert_active("predict_p99"));
    assert!(!plane.collector.slo().alert_active("predict_sane"));
    assert_eq!(
        plane.collector.slo().any_alert().as_deref(),
        Some("predict_p99")
    );

    let ops_addr = plane.ops.addr().to_string();
    let text_resp = http_get(&ops_addr, "/fleet/metrics");
    let text = body_of(&text_resp);
    assert!(text.contains(r#"slo_alert{slo="predict_p99"} 1"#), "{text}");
    assert!(
        text.contains(r#"slo_alert{slo="predict_sane"} 0"#),
        "{text}"
    );
    assert!(
        text.contains(r#"slo_alerts_total{slo="predict_p99"} 1"#),
        "edge-triggered: one alert despite repeated evaluations\n{text}"
    );
    assert!(text.contains(r#"slo_burn_rate{slo="predict_p99",window="fast_short"}"#));

    // Edge-triggered event, exactly once.
    let events = plane.collector.telemetry().events().peek();
    let edges: Vec<_> = events
        .iter()
        .filter(|e| e.name == "slo_alert" && e.detail.contains("predict_p99"))
        .collect();
    assert_eq!(edges.len(), 1, "{edges:?}");

    // Quorum 2 of 2: healthy while both shards answer…
    let health = http_get(&ops_addr, "/fleet/healthz");
    assert!(health.starts_with("HTTP/1.0 200"), "{health}");

    // …then kill one shard: its up gauge drops to 0 in the merged view
    // and the quorum check degrades `/fleet/healthz` to a 503.
    plane.fleet.kill(1);
    plane.collector.scrape_once();
    let text_resp = http_get(&ops_addr, "/fleet/metrics");
    let text = body_of(&text_resp);
    assert!(
        text.contains(r#"fleet_obs_shard_up{shard="0"} 1"#),
        "{text}"
    );
    assert!(
        text.contains(r#"fleet_obs_shard_up{shard="1"} 0"#),
        "{text}"
    );
    let health = http_get(&ops_addr, "/fleet/healthz");
    assert!(health.starts_with("HTTP/1.0 503"), "{health}");
    assert!(body_of(&health).contains("shards_up=1/2"), "{health}");

    plane.ops.shutdown();
    plane.collector.shutdown();
    plane.fleet.shutdown();
}
