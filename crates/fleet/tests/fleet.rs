//! End-to-end fleet tests: real gateways behind real TCP listeners on
//! loopback, driven through the router.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use prionn_core::ResourcePrediction;
use prionn_fleet::proto::{
    decode_error, decode_predictions, decode_revision, encode_predict, encode_revise, ErrorCode,
    ReviseRequest, KIND_ERROR, KIND_PREDICT, KIND_PREDICTIONS, KIND_REVISE, KIND_REVISION,
};
use prionn_fleet::router::{FleetError, Router, RouterConfig};
use prionn_fleet::shard::ShardConfig;
use prionn_fleet::testkit::{demo_corpus, demo_gateway_config, LocalFleet};
use prionn_revise::ProgressObs;
use prionn_serve::Priority;
use prionn_store::wire::{encode_frame, read_frame, Frame, MAX_FRAME_PAYLOAD};

fn router_for(fleet: &LocalFleet) -> Router {
    Router::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        down_backoff: Duration::from_millis(50),
        ..RouterConfig::for_endpoints(fleet.endpoints())
    })
}

/// One raw frame request/response over a fresh connection, bypassing the
/// router — for protocol-level assertions.
fn raw_roundtrip(addr: &str, bytes: &[u8]) -> Option<Frame> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.write_all(bytes).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    read_frame(&mut s, MAX_FRAME_PAYLOAD).ok().flatten()
}

#[test]
fn wire_predictions_match_local_gateway() {
    let fleet = LocalFleet::spawn(1);
    let router = router_for(&fleet);
    let scripts = demo_corpus();

    let local = fleet.shard(0).gateway.predict(&scripts[..4]).unwrap();
    let remote = router
        .predict_for_user(7, &scripts[..4], None, Priority::Normal)
        .unwrap();
    assert_eq!(remote.predictions.len(), 4);
    assert_eq!(remote.shard, 0);
    for (l, r) in local.iter().zip(remote.predictions.iter()) {
        assert!(
            (l.runtime_minutes - r.runtime_minutes).abs() < 1e-9,
            "wire prediction drifted from local: {} vs {}",
            l.runtime_minutes,
            r.runtime_minutes
        );
    }
}

#[test]
fn requests_spread_over_every_shard() {
    let fleet = LocalFleet::spawn(4);
    let router = router_for(&fleet);
    let scripts = demo_corpus();

    for user in 0..200u64 {
        let one = std::slice::from_ref(&scripts[(user % scripts.len() as u64) as usize]);
        let reply = router.predict(user, one).unwrap();
        assert_eq!(reply.shard, router.route(user).unwrap());
    }
    for shard in 0..4 {
        let stats = router.shard_stats(shard).unwrap();
        assert!(
            stats.requests_served > 0,
            "shard {shard} served nothing over 200 users"
        );
        assert!(!stats.draining);
    }
}

#[test]
fn gateway_shed_comes_back_typed_without_failover() {
    // replicas: 0 = accept-and-queue only; with queue_cap 1 the second
    // request is admission-rejected inside the gateway.
    let fleet = LocalFleet::spawn_with(
        1,
        prionn_serve::GatewayConfig {
            replicas: 0,
            queue_cap: 1,
            ..demo_gateway_config()
        },
        ShardConfig::default(),
    );
    let router = Arc::new(router_for(&fleet));
    let scripts = demo_corpus();

    // Occupy the single queue slot from a background thread (it blocks
    // until shutdown fails it).
    let blocked = {
        let router = Arc::clone(&router);
        let script = scripts[0].clone();
        std::thread::spawn(move || router.predict(1, std::slice::from_ref(&script)))
    };
    std::thread::sleep(Duration::from_millis(100));

    let err = router
        .predict(2, std::slice::from_ref(&scripts[1]))
        .unwrap_err();
    match err {
        FleetError::Rejected { code, shard, .. } => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert_eq!(shard, 0);
        }
        other => panic!("expected typed Overloaded rejection, got {other}"),
    }

    drop(fleet); // shutdown fails the queued request
    let queued = blocked.join().unwrap();
    assert!(queued.is_err(), "queued request must not silently succeed");
}

#[test]
fn drain_sheds_typed_and_failover_keeps_users_served() {
    let fleet = LocalFleet::spawn(2);
    let router = router_for(&fleet);
    let scripts = demo_corpus();

    // A user owned by each shard.
    let user_on = |shard: usize| {
        (0..10_000u64)
            .find(|&u| router.route(u) == Some(shard))
            .unwrap()
    };
    let (u0, u1) = (user_on(0), user_on(1));

    router.drain_shard(1).unwrap();
    assert!(fleet.shard(1).server.is_draining());

    // The drained shard answers raw predicts with a typed Draining error.
    let frame = raw_roundtrip(
        &fleet.endpoints()[1],
        &encode_frame(
            KIND_PREDICT,
            9,
            &encode_predict(Priority::Normal, 0, &scripts[..1]),
        ),
    )
    .expect("drained shard must still answer");
    assert_eq!(frame.kind, KIND_ERROR);
    let (code, _) = decode_error(&frame.payload).unwrap();
    assert_eq!(code, ErrorCode::Draining);

    // Through the router both users still get answers; the drained
    // shard's user fails over to shard 0.
    let r0 = router
        .predict(u0, std::slice::from_ref(&scripts[0]))
        .unwrap();
    assert_eq!(r0.shard, 0);
    let r1 = router
        .predict(u1, std::slice::from_ref(&scripts[0]))
        .unwrap();
    assert_eq!(
        r1.shard, 0,
        "user {u1} must fail over off the draining shard"
    );
}

#[test]
fn corrupt_frames_drop_the_connection_not_the_shard() {
    let fleet = LocalFleet::spawn(1);
    let addr = fleet.endpoints()[0].clone();
    let scripts = demo_corpus();

    // Garbage bytes: the server closes the connection without a reply.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(b"this is not a frame at all, not even close....")
        .unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    match read_frame(&mut s, MAX_FRAME_PAYLOAD) {
        Ok(None) | Err(_) => {} // closed or unreadable: both fine
        Ok(Some(f)) => panic!("server answered garbage with frame kind {}", f.kind),
    }

    // A frame with a corrupted payload byte fails the CRC: same story.
    let mut bytes = encode_frame(
        KIND_PREDICT,
        1,
        &encode_predict(Priority::Normal, 0, &scripts[..1]),
    );
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&bytes).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert!(
        !matches!(read_frame(&mut s, MAX_FRAME_PAYLOAD), Ok(Some(_))),
        "server must not answer a checksum-failed frame"
    );

    // The shard itself is unharmed: a clean connection still works.
    let frame = raw_roundtrip(
        &addr,
        &encode_frame(
            KIND_PREDICT,
            2,
            &encode_predict(Priority::Normal, 0, &scripts[..1]),
        ),
    )
    .expect("healthy connection after corrupt ones");
    assert_eq!(frame.kind, KIND_PREDICTIONS);
    assert_eq!(decode_predictions(&frame.payload).unwrap().1.len(), 1);
}

#[test]
fn oversized_frame_gets_typed_too_large_error() {
    // A shard configured with a small payload cap answers an oversized
    // declared length with a typed TooLarge error before reading (or
    // allocating) the payload, then closes.
    let fleet = LocalFleet::spawn_with(
        1,
        demo_gateway_config(),
        ShardConfig {
            max_payload: 1024,
            ..ShardConfig::default()
        },
    );
    let addr = fleet.endpoints()[0].clone();

    // Hand-build a header declaring a 2 MiB payload without sending it.
    let big = encode_frame(KIND_PREDICT, 3, &vec![0u8; 2 << 20]);
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&big[..prionn_store::wire::FRAME_HEADER_LEN])
        .unwrap();
    s.flush().unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frame = read_frame(&mut s, MAX_FRAME_PAYLOAD)
        .expect("typed error frame")
        .expect("typed error frame, not silent close");
    assert_eq!(frame.kind, KIND_ERROR);
    let (code, msg) = decode_error(&frame.payload).unwrap();
    assert_eq!(code, ErrorCode::TooLarge);
    assert!(msg.contains("1024"), "cap should be named in {msg:?}");
}

#[test]
fn revise_round_trips_with_intervals_calibrated_on_the_shards_drift_window() {
    // A shard whose gateway carries a drift monitor: outcomes recorded
    // there calibrate the conformal intervals served on REVISE.
    let telemetry = prionn_telemetry::Telemetry::default();
    let drift =
        prionn_observe::DriftMonitor::new(&telemetry, prionn_observe::DriftConfig::default());
    let fleet = LocalFleet::spawn_with(
        1,
        prionn_serve::GatewayConfig {
            drift: Some(drift),
            ..demo_gateway_config()
        },
        ShardConfig::default(),
    );
    let router = router_for(&fleet);

    // The model on this shard systematically underpredicts 2×: every
    // recorded outcome's truth is double its prediction.
    let gw = &fleet.shard(0).gateway;
    for i in 0..64 {
        let pred = ResourcePrediction {
            runtime_minutes: 50.0 + i as f64,
            read_bytes: 1.0e9,
            write_bytes: 1.0e9,
        };
        gw.record_outcome(&pred, 2.0 * pred.runtime_minutes, 2.0e9, 2.0e9);
    }

    // A job 30 minutes in, pacing at half its predicted IO rate.
    let req = ReviseRequest {
        obs: ProgressObs {
            job_id: 42,
            elapsed_seconds: 1800.0,
            read_bytes_so_far: 2.5e8,
            write_bytes_so_far: 2.5e8,
        },
        initial: ResourcePrediction {
            runtime_minutes: 60.0,
            read_bytes: 1.0e9,
            write_bytes: 1.0e9,
        },
        coverage: 0.8,
    };
    let got = router.revise(&req).expect("revision over the wire");
    assert_eq!(got.shard, 0);
    let rt = got.revision.runtime_minutes;
    assert!(
        rt.point > req.initial.runtime_minutes,
        "slow pace must revise the point upward, got {}",
        rt.point
    );
    assert!(
        rt.lo > rt.point,
        "a 2x-underpredicting shard recentres the interval above its \
         point: lo {} vs point {}",
        rt.lo,
        rt.point
    );
    assert!(rt.lo <= rt.hi);

    // Same request straight over a raw socket decodes to the same answer.
    let frame = raw_roundtrip(
        &fleet.endpoints()[0],
        &encode_frame(KIND_REVISE, 7, &encode_revise(&req)),
    )
    .expect("raw revise answer");
    assert_eq!(frame.kind, KIND_REVISION);
    let raw = decode_revision(&frame.payload).unwrap();
    assert_eq!(raw, got.revision);
}

#[test]
fn malformed_revise_payloads_get_typed_bad_request() {
    let fleet = LocalFleet::spawn(1);
    let addr = fleet.endpoints()[0].clone();
    let req = ReviseRequest {
        obs: ProgressObs {
            job_id: 1,
            elapsed_seconds: 600.0,
            read_bytes_so_far: 1.0e8,
            write_bytes_so_far: 1.0e8,
        },
        initial: ResourcePrediction {
            runtime_minutes: 60.0,
            read_bytes: 1.0e9,
            write_bytes: 1.0e9,
        },
        coverage: 0.9,
    };

    // Truncated payload (framed with a valid CRC, so it reaches the
    // decoder): the Truncated decode error comes back as BadRequest.
    let full = encode_revise(&req);
    let frame = raw_roundtrip(
        &addr,
        &encode_frame(KIND_REVISE, 1, &full[..full.len() - 8]),
    )
    .expect("typed answer to truncated revise");
    assert_eq!(frame.kind, KIND_ERROR);
    let (code, msg) = decode_error(&frame.payload).unwrap();
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(msg.contains("truncated"), "decode detail kept: {msg:?}");

    // Semantically corrupt payload (coverage 1.5): same typed path, and
    // the connection keeps serving afterwards.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let corrupt = encode_revise(&ReviseRequest {
        coverage: 1.5,
        ..req
    });
    s.write_all(&encode_frame(KIND_REVISE, 2, &corrupt))
        .unwrap();
    let frame = read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().unwrap();
    assert_eq!(frame.kind, KIND_ERROR);
    let (code, msg) = decode_error(&frame.payload).unwrap();
    assert_eq!(code, ErrorCode::BadRequest);
    assert!(msg.contains("coverage"), "corrupt detail kept: {msg:?}");

    s.write_all(&encode_frame(KIND_REVISE, 3, &full)).unwrap();
    let frame = read_frame(&mut s, MAX_FRAME_PAYLOAD).unwrap().unwrap();
    assert_eq!(
        frame.kind, KIND_REVISION,
        "connection survives a bad revise and serves the next one"
    );
}

#[test]
fn abrupt_kill_fails_over_and_recovery_restores_routing() {
    let mut fleet = LocalFleet::spawn(2);
    let router = router_for(&fleet);
    let scripts = demo_corpus();

    let victim = 1usize;
    let user = (0..10_000u64)
        .find(|&u| router.route(u) == Some(victim))
        .unwrap();
    assert_eq!(router.predict(user, &scripts[..1]).unwrap().shard, victim);

    // Kill with no drain: connections die mid-stream. The user's next
    // request must still be answered, by the surviving shard.
    fleet.kill(victim);
    let reply = router
        .predict(user, &scripts[..1])
        .expect("failover after abrupt kill");
    assert_eq!(reply.shard, 0);

    // And again — the router must not wedge on the dead shard's backoff.
    for _ in 0..5 {
        assert_eq!(router.predict(user, &scripts[..1]).unwrap().shard, 0);
    }

    // Replacement shard: point the slot at the new endpoint; the user's
    // traffic returns (ring layout never changed).
    let endpoint = fleet.respawn(victim);
    router.set_endpoint(victim, &endpoint);
    router.mark_up(victim);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let reply = router.predict(user, &scripts[..1]).unwrap();
        if reply.shard == victim {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "traffic never returned to the respawned shard"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
