//! Fleet weight rollouts: epoch monotonicity and a bounded mixed-epoch
//! window during a staggered shard-by-shard rollout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use prionn_fleet::coordinator::FleetCoordinator;
use prionn_fleet::router::{Router, RouterConfig};
use prionn_fleet::testkit::{demo_checkpoint, demo_corpus, LocalFleet};

fn router_for(fleet: &LocalFleet) -> Router {
    Router::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        ..RouterConfig::for_endpoints(fleet.endpoints())
    })
}

#[test]
fn staggered_rollout_epochs_never_go_backwards() {
    const SHARDS: usize = 3;
    let fleet = LocalFleet::spawn(SHARDS);
    let router = Arc::new(router_for(&fleet));
    let scripts = demo_corpus();

    let initial: Vec<u64> = (0..SHARDS)
        .map(|s| router.shard_stats(s).unwrap().epoch)
        .collect();

    // Pollers watch every shard's epoch (via stats) and the epochs
    // carried on prediction replies while the rollout runs, recording any
    // backwards movement.
    let stop = Arc::new(AtomicBool::new(false));
    let mut observers = Vec::new();
    for shard in 0..SHARDS {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        observers.push(std::thread::spawn(move || {
            let mut last = 0u64;
            let mut snapshots = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                if let Ok(stats) = router.shard_stats(shard) {
                    assert!(
                        stats.epoch >= last,
                        "shard {shard} epoch went backwards: {last} -> {}",
                        stats.epoch
                    );
                    last = stats.epoch;
                    snapshots.push(stats.epoch);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            snapshots
        }));
    }
    // A predict poller: reply epochs per shard must be monotonic too.
    let predict_observer = {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        let scripts = scripts.clone();
        std::thread::spawn(move || {
            let mut last = [0u64; SHARDS];
            let mut user = 0u64;
            while !stop.load(Ordering::SeqCst) {
                if let Ok(reply) = router.predict(user, &scripts[..1]) {
                    assert!(
                        reply.epoch >= last[reply.shard],
                        "shard {} reply epoch went backwards: {} -> {}",
                        reply.shard,
                        last[reply.shard],
                        reply.epoch
                    );
                    last[reply.shard] = reply.epoch;
                }
                user = user.wrapping_add(7919);
            }
        })
    };

    // Two staggered rollouts back to back, with a pause between shards
    // implicit in the sequential pushes.
    let coordinator = FleetCoordinator::new(&router, Duration::from_secs(30));
    let ck = demo_checkpoint();
    for round in 0..2 {
        let report = coordinator.rollout(&ck);
        assert!(
            report.fully_applied(),
            "round {round}: rollout failed on shards {:?}",
            report.failed_shards()
        );
    }

    stop.store(true, Ordering::SeqCst);
    let mut per_shard_series = Vec::new();
    for obs in observers {
        per_shard_series.push(obs.join().unwrap());
    }
    predict_observer.join().unwrap();

    // Every shard advanced exactly two epochs past its initial value,
    // and the fleet converged: all shards end on the same relative step.
    for shard in 0..SHARDS {
        let stats = router.shard_stats(shard).unwrap();
        assert_eq!(
            stats.epoch,
            initial[shard] + 2,
            "shard {shard} must end exactly two epochs up"
        );
        // The poller saw a non-empty monotone series (monotonicity itself
        // was asserted inline). Its last sample may predate the final
        // ack, but can never exceed the final epoch.
        let series = &per_shard_series[shard];
        assert!(!series.is_empty());
        assert!(*series.last().unwrap() <= stats.epoch);
    }
}

#[test]
fn mixed_epoch_window_is_bounded_to_adjacent_epochs() {
    const SHARDS: usize = 4;
    let fleet = LocalFleet::spawn(SHARDS);
    let router = Arc::new(router_for(&fleet));

    let initial: Vec<u64> = (0..SHARDS)
        .map(|s| router.shard_stats(s).unwrap().epoch)
        .collect();
    // All shards boot from the same checkpoint at the same epoch.
    assert!(initial.windows(2).all(|w| w[0] == w[1]));

    // Snapshot the fleet's epoch spread continuously during the rollout:
    // sequential pushes mean at most two *adjacent* epochs coexist.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_spread = 0u64;
            let mut saw_mixed = false;
            while !stop.load(Ordering::SeqCst) {
                let epochs: Vec<u64> = (0..SHARDS)
                    .filter_map(|s| router.shard_stats(s).ok())
                    .map(|st| st.epoch)
                    .collect();
                if epochs.len() == SHARDS {
                    let lo = *epochs.iter().min().unwrap();
                    let hi = *epochs.iter().max().unwrap();
                    max_spread = max_spread.max(hi - lo);
                    saw_mixed |= hi != lo;
                }
            }
            (max_spread, saw_mixed)
        })
    };

    let coordinator = FleetCoordinator::new(&router, Duration::from_secs(30));
    let report = coordinator.rollout(&demo_checkpoint());
    assert!(report.fully_applied());
    stop.store(true, Ordering::SeqCst);
    let (max_spread, _saw_mixed) = watcher.join().unwrap();

    assert!(
        max_spread <= 1,
        "mixed-epoch window exceeded adjacent epochs: spread {max_spread}"
    );
    for (shard, before) in initial.iter().enumerate() {
        assert_eq!(router.shard_stats(shard).unwrap().epoch, before + 1);
    }
}

#[test]
fn rollout_skips_dead_shards_without_wedging() {
    const SHARDS: usize = 3;
    let mut fleet = LocalFleet::spawn(SHARDS);
    let router = Router::new(RouterConfig {
        request_timeout: Duration::from_secs(30),
        connect_timeout: Duration::from_millis(500),
        ..RouterConfig::for_endpoints(fleet.endpoints())
    });
    let initial = router.shard_stats(0).unwrap().epoch;

    fleet.kill(1);
    let coordinator = FleetCoordinator::new(&router, Duration::from_secs(30));
    let report = coordinator.rollout(&demo_checkpoint());

    assert!(!report.fully_applied());
    assert_eq!(report.failed_shards(), vec![1]);
    for shard in [0usize, 2] {
        assert_eq!(
            router.shard_stats(shard).unwrap().epoch,
            initial + 1,
            "live shard {shard} must still take the rollout"
        );
        assert_eq!(report.shards[shard].epoch, Some(initial + 1));
    }

    // The recovered shard is re-synced by a targeted push.
    let endpoint = fleet.respawn(1);
    router.set_endpoint(1, &endpoint);
    let pushed = coordinator.push_to_shard(1, &demo_checkpoint());
    assert!(pushed.epoch.is_some(), "re-sync failed: {:?}", pushed.error);
}
