//! The fleet's binary message layer on top of [`prionn_store::wire`]
//! frames.
//!
//! Every message travels as one [`Frame`](prionn_store::wire::Frame):
//! a 21-byte header (magic, kind, correlation id, payload length, CRC32)
//! followed by a payload encoded with the store's little-endian wire
//! primitives. The correlation id lets a single TCP connection carry many
//! requests in flight at once (pipelining); responses echo the id of the
//! request they answer and may arrive out of order.
//!
//! | kind | message | payload |
//! |------|---------|---------|
//! | `0x01` | PredictRequest  | priority u8, deadline_ms u32, script count u32, then per script a length-prefixed string |
//! | `0x02` | Predictions     | epoch u64, count u32, then per prediction 3×f64 (runtime minutes, read bytes, write bytes) |
//! | `0x03` | Error           | code u8, length-prefixed message string |
//! | `0x04` | ReviseRequest   | job id u64, elapsed seconds f64, read/write bytes-so-far 2×f64, initial prediction 3×f64, coverage f64 |
//! | `0x05` | Revision        | epoch u64, then per head (runtime minutes, read bytes, write bytes) an interval lo/point/hi 3×f64 |
//! | `0x10` | Ping            | empty |
//! | `0x11` | Pong            | empty |
//! | `0x12` | StatsRequest    | empty |
//! | `0x13` | Stats           | epoch u64, live_replicas u64, queue_depth u64, requests_served u64, draining bool, requests_shed u64, failover_arrivals u64, revisions_served u64 (last three optional — absent from pre-observability shards) |
//! | `0x20` | SwapWeights     | a full checkpoint byte image (self-verifying: magic + per-section CRC) |
//! | `0x21` | SwapAck         | epoch u64 the shard's weight bus assigned |
//! | `0x30` | Drain           | empty |
//! | `0x31` | DrainAck        | empty |
//!
//! Any request kind may additionally carry the [`KIND_TRACE_FLAG`] high
//! bit (`0x80`), marking a [`TraceContext`] extension prefixed to the
//! payload: `version u8, body_len u8, trace_id u64, parent_span_id u64,
//! hop u8`. See [`strip_trace`] for the version-gating rules.

use prionn_core::ResourcePrediction;
use prionn_revise::{PredictionInterval, ProgressObs};
use prionn_serve::{Priority, ServeError};
use prionn_store::wire::{put_bool, put_f64, put_str, put_u32, put_u64, put_u8, Reader};
use prionn_store::{Result as StoreResult, StoreError};

/// Frame kind: predict request.
pub const KIND_PREDICT: u8 = 0x01;
/// Frame kind: predictions response.
pub const KIND_PREDICTIONS: u8 = 0x02;
/// Frame kind: typed error response.
pub const KIND_ERROR: u8 = 0x03;
/// Frame kind: in-flight revision request.
pub const KIND_REVISE: u8 = 0x04;
/// Frame kind: revision response (calibrated intervals).
pub const KIND_REVISION: u8 = 0x05;
/// Frame kind: liveness ping.
pub const KIND_PING: u8 = 0x10;
/// Frame kind: ping response.
pub const KIND_PONG: u8 = 0x11;
/// Frame kind: shard stats request.
pub const KIND_STATS: u8 = 0x12;
/// Frame kind: shard stats response.
pub const KIND_STATS_REPLY: u8 = 0x13;
/// Frame kind: weight hot-swap push (checkpoint bytes).
pub const KIND_SWAP_WEIGHTS: u8 = 0x20;
/// Frame kind: hot-swap acknowledgement carrying the new epoch.
pub const KIND_SWAP_ACK: u8 = 0x21;
/// Frame kind: graceful-drain command.
pub const KIND_DRAIN: u8 = 0x30;
/// Frame kind: drain acknowledgement.
pub const KIND_DRAIN_ACK: u8 = 0x31;

/// High bit of the frame kind: set when the payload begins with a
/// trace-context extension. All base kinds live below `0x80`, so a peer
/// that predates tracing rejects flagged frames as an unknown kind rather
/// than mis-parsing the payload, and unflagged frames are byte-identical
/// to the pre-tracing wire format.
pub const KIND_TRACE_FLAG: u8 = 0x80;

/// Current trace-context extension version.
pub const TRACE_EXT_VERSION: u8 = 1;

/// Distributed trace context carried in front of a flagged payload.
///
/// Wire layout: `version u8, body_len u8`, then `body_len` bytes of body.
/// Version 1's body is `trace_id u64, parent_span_id u64, hop u8` (17
/// bytes). The explicit body length is the version gate: a decoder that
/// sees a *newer* version can still skip the extension and recover the
/// base payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Fleet-wide trace id (namespaced so shards never collide).
    pub trace_id: u64,
    /// Span id of the caller's span; the shard parents its root under it.
    pub parent_span_id: u64,
    /// Ring-walk hop index: 0 for the primary owner, `n > 0` when this
    /// request arrived after `n` failovers — lets the shard count
    /// failover arrivals without a side channel.
    pub hop: u8,
}

const TRACE_EXT_BODY_LEN: usize = 17;

/// Prefix `payload` with an encoded trace-context extension. The caller
/// must also set [`KIND_TRACE_FLAG`] on the frame kind.
pub fn encode_with_trace(ctx: &TraceContext, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + TRACE_EXT_BODY_LEN + payload.len());
    put_u8(&mut buf, TRACE_EXT_VERSION);
    put_u8(&mut buf, TRACE_EXT_BODY_LEN as u8);
    put_u64(&mut buf, ctx.trace_id);
    put_u64(&mut buf, ctx.parent_span_id);
    put_u8(&mut buf, ctx.hop);
    buf.extend_from_slice(payload);
    buf
}

/// Split a received frame into its base kind, optional trace context, and
/// base payload. Unflagged kinds pass through untouched; flagged frames
/// with a future extension version drop the (unintelligible) context but
/// keep the payload.
pub fn strip_trace(kind: u8, payload: &[u8]) -> StoreResult<(u8, Option<TraceContext>, &[u8])> {
    if kind & KIND_TRACE_FLAG == 0 {
        return Ok((kind, None, payload));
    }
    let base = kind & !KIND_TRACE_FLAG;
    if payload.len() < 2 {
        return Err(StoreError::Truncated("trace extension header"));
    }
    let version = payload[0];
    let body_len = payload[1] as usize;
    if payload.len() < 2 + body_len {
        return Err(StoreError::Truncated("trace extension body"));
    }
    let body = &payload[2..2 + body_len];
    let rest = &payload[2 + body_len..];
    if version != TRACE_EXT_VERSION {
        return Ok((base, None, rest));
    }
    if body_len < TRACE_EXT_BODY_LEN {
        return Err(StoreError::Corrupt(format!(
            "trace extension v1 body is {body_len} bytes, need {TRACE_EXT_BODY_LEN}"
        )));
    }
    let mut r = Reader::new(body);
    let ctx = TraceContext {
        trace_id: r.get_u64("trace extension trace id")?,
        parent_span_id: r.get_u64("trace extension parent span id")?,
        hop: r.get_u8("trace extension hop")?,
    };
    Ok((base, Some(ctx), rest))
}

/// Typed error codes a shard can answer with. The numeric values are wire
/// format — append-only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The shard's admission queue was full ([`ServeError::Overloaded`]).
    Overloaded = 1,
    /// The request's deadline expired in the shard's queue.
    DeadlineExceeded = 2,
    /// Shed pre-emptively under forecast burst pressure.
    ShedPreBurst = 3,
    /// The shard's gateway has stopped (or lost every replica).
    Stopped = 4,
    /// The model failed on this batch.
    Model = 5,
    /// The shard is draining and takes no new work.
    Draining = 6,
    /// The request could not be decoded or used an unknown frame kind.
    BadRequest = 7,
    /// The request frame exceeded the shard's payload cap.
    TooLarge = 8,
}

impl ErrorCode {
    /// Decode a wire byte.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::ShedPreBurst,
            4 => ErrorCode::Stopped,
            5 => ErrorCode::Model,
            6 => ErrorCode::Draining,
            7 => ErrorCode::BadRequest,
            8 => ErrorCode::TooLarge,
            _ => return None,
        })
    }

    /// The code a gateway-level shed maps to on the wire.
    pub fn from_serve_error(e: &ServeError) -> ErrorCode {
        match e {
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServeError::ShedPreBurst => ErrorCode::ShedPreBurst,
            ServeError::Stopped => ErrorCode::Stopped,
            ServeError::Model(_) | ServeError::Spawn(_) => ErrorCode::Model,
        }
    }

    /// Stable label for metrics (`fleet_shed_total{reason=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline",
            ErrorCode::ShedPreBurst => "preburst",
            ErrorCode::Stopped => "stopped",
            ErrorCode::Model => "model",
            ErrorCode::Draining => "draining",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::TooLarge => "too_large",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A shard's live health snapshot, served on [`KIND_STATS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Latest weight epoch published on the shard's bus.
    pub epoch: u64,
    /// Replica worker threads still alive.
    pub live_replicas: u64,
    /// Requests currently queued in the shard's gateway.
    pub queue_depth: u64,
    /// Predict requests this shard server has answered since spawn.
    pub requests_served: u64,
    /// True once the shard has been told to drain.
    pub draining: bool,
    /// Predict requests refused with a typed error (any code) since
    /// spawn. With `requests_served` this yields a per-shard shed ratio
    /// without an ops-endpoint scrape.
    pub requests_shed: u64,
    /// Requests that arrived with a ring-walk hop index > 0 — i.e. after
    /// at least one other shard refused them.
    pub failover_arrivals: u64,
    /// In-flight revision requests answered since spawn.
    pub revisions_served: u64,
}

/// Encode a predict request payload.
pub fn encode_predict(priority: Priority, deadline_ms: u32, scripts: &[String]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + scripts.iter().map(|s| 4 + s.len()).sum::<usize>());
    put_u8(&mut buf, matches!(priority, Priority::Low) as u8);
    put_u32(&mut buf, deadline_ms);
    put_u32(&mut buf, scripts.len() as u32);
    for s in scripts {
        put_str(&mut buf, s);
    }
    buf
}

/// Decode a predict request payload.
pub fn decode_predict(payload: &[u8]) -> StoreResult<(Priority, u32, Vec<String>)> {
    let mut r = Reader::new(payload);
    let priority = match r.get_u8("predict priority")? {
        0 => Priority::Normal,
        1 => Priority::Low,
        v => {
            return Err(StoreError::Corrupt(format!(
                "predict priority byte {v} is not 0/1"
            )))
        }
    };
    let deadline_ms = r.get_u32("predict deadline")?;
    let count = r.get_u32("predict script count")? as usize;
    // A count the payload cannot possibly hold is corruption, not an
    // allocation request: each script costs at least its 4-byte length.
    if count > payload.len() / 4 {
        return Err(StoreError::Corrupt(format!(
            "script count {count} exceeds what {} payload bytes can hold",
            payload.len()
        )));
    }
    let mut scripts = Vec::with_capacity(count);
    for _ in 0..count {
        scripts.push(r.get_str("predict script")?.to_string());
    }
    r.expect_end("predict request")?;
    Ok((priority, deadline_ms, scripts))
}

/// Encode a predictions response payload.
pub fn encode_predictions(epoch: u64, preds: &[ResourcePrediction]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + preds.len() * 24);
    put_u64(&mut buf, epoch);
    put_u32(&mut buf, preds.len() as u32);
    for p in preds {
        put_f64(&mut buf, p.runtime_minutes);
        put_f64(&mut buf, p.read_bytes);
        put_f64(&mut buf, p.write_bytes);
    }
    buf
}

/// Decode a predictions response payload.
pub fn decode_predictions(payload: &[u8]) -> StoreResult<(u64, Vec<ResourcePrediction>)> {
    let mut r = Reader::new(payload);
    let epoch = r.get_u64("predictions epoch")?;
    let count = r.get_u32("predictions count")? as usize;
    if count > payload.len() / 24 {
        return Err(StoreError::Corrupt(format!(
            "prediction count {count} exceeds what {} payload bytes can hold",
            payload.len()
        )));
    }
    let mut preds = Vec::with_capacity(count);
    for _ in 0..count {
        preds.push(ResourcePrediction {
            runtime_minutes: r.get_f64("prediction runtime")?,
            read_bytes: r.get_f64("prediction read bytes")?,
            write_bytes: r.get_f64("prediction write bytes")?,
        });
    }
    r.expect_end("predictions response")?;
    Ok((epoch, preds))
}

/// Encode a typed error payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + message.len());
    put_u8(&mut buf, code as u8);
    put_str(&mut buf, message);
    buf
}

/// Decode a typed error payload.
pub fn decode_error(payload: &[u8]) -> StoreResult<(ErrorCode, String)> {
    let mut r = Reader::new(payload);
    let raw = r.get_u8("error code")?;
    let code = ErrorCode::from_u8(raw)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown error code {raw}")))?;
    let message = r.get_str("error message")?.to_string();
    r.expect_end("error response")?;
    Ok((code, message))
}

/// Encode a shard stats payload.
pub fn encode_stats(s: &ShardStats) -> Vec<u8> {
    let mut buf = Vec::with_capacity(57);
    put_u64(&mut buf, s.epoch);
    put_u64(&mut buf, s.live_replicas);
    put_u64(&mut buf, s.queue_depth);
    put_u64(&mut buf, s.requests_served);
    put_bool(&mut buf, s.draining);
    put_u64(&mut buf, s.requests_shed);
    put_u64(&mut buf, s.failover_arrivals);
    put_u64(&mut buf, s.revisions_served);
    buf
}

/// Decode a shard stats payload. The shed/failover/revision counters were
/// appended after the first release: a 33-byte payload from an old shard
/// still decodes, with those counters reported as zero.
pub fn decode_stats(payload: &[u8]) -> StoreResult<ShardStats> {
    let mut r = Reader::new(payload);
    let mut stats = ShardStats {
        epoch: r.get_u64("stats epoch")?,
        live_replicas: r.get_u64("stats live replicas")?,
        queue_depth: r.get_u64("stats queue depth")?,
        requests_served: r.get_u64("stats requests served")?,
        draining: r.get_bool("stats draining")?,
        requests_shed: 0,
        failover_arrivals: 0,
        revisions_served: 0,
    };
    if r.remaining() > 0 {
        stats.requests_shed = r.get_u64("stats requests shed")?;
        stats.failover_arrivals = r.get_u64("stats failover arrivals")?;
        stats.revisions_served = r.get_u64("stats revisions served")?;
    }
    r.expect_end("stats response")?;
    Ok(stats)
}

/// Encode a swap acknowledgement payload.
pub fn encode_swap_ack(epoch: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8);
    put_u64(&mut buf, epoch);
    buf
}

/// Decode a swap acknowledgement payload.
pub fn decode_swap_ack(payload: &[u8]) -> StoreResult<u64> {
    let mut r = Reader::new(payload);
    let epoch = r.get_u64("swap ack epoch")?;
    r.expect_end("swap ack")?;
    Ok(epoch)
}

/// An in-flight revision request: the submission-time prediction plus one
/// partial-progress observation, served on [`KIND_REVISE`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReviseRequest {
    /// The progress observation (job id, elapsed, IO-so-far).
    pub obs: ProgressObs,
    /// The submission-time prediction being revised.
    pub initial: ResourcePrediction,
    /// Nominal coverage for the conformal intervals, in `(0, 1)`.
    pub coverage: f64,
}

/// A shard's answer to [`KIND_REVISE`]: the revised point predictions
/// wrapped in split-conformal intervals calibrated on that shard's drift
/// window, plus the weight epoch the shard was serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevisionReply {
    /// Weight epoch of the answering shard.
    pub epoch: u64,
    /// Revised runtime, minutes.
    pub runtime_minutes: PredictionInterval,
    /// Revised bytes read.
    pub read_bytes: PredictionInterval,
    /// Revised bytes written.
    pub write_bytes: PredictionInterval,
}

/// Encode a revision request payload.
pub fn encode_revise(req: &ReviseRequest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u64(&mut buf, req.obs.job_id);
    put_f64(&mut buf, req.obs.elapsed_seconds);
    put_f64(&mut buf, req.obs.read_bytes_so_far);
    put_f64(&mut buf, req.obs.write_bytes_so_far);
    put_f64(&mut buf, req.initial.runtime_minutes);
    put_f64(&mut buf, req.initial.read_bytes);
    put_f64(&mut buf, req.initial.write_bytes);
    put_f64(&mut buf, req.coverage);
    buf
}

/// Decode a revision request payload. Non-finite progress numbers and a
/// coverage outside `(0, 1)` are corruption, not requests.
pub fn decode_revise(payload: &[u8]) -> StoreResult<ReviseRequest> {
    let mut r = Reader::new(payload);
    let req = ReviseRequest {
        obs: ProgressObs {
            job_id: r.get_u64("revise job id")?,
            elapsed_seconds: r.get_f64("revise elapsed seconds")?,
            read_bytes_so_far: r.get_f64("revise read bytes so far")?,
            write_bytes_so_far: r.get_f64("revise write bytes so far")?,
        },
        initial: ResourcePrediction {
            runtime_minutes: r.get_f64("revise initial runtime")?,
            read_bytes: r.get_f64("revise initial read bytes")?,
            write_bytes: r.get_f64("revise initial write bytes")?,
        },
        coverage: r.get_f64("revise coverage")?,
    };
    r.expect_end("revise request")?;
    for (name, v) in [
        ("elapsed seconds", req.obs.elapsed_seconds),
        ("read bytes so far", req.obs.read_bytes_so_far),
        ("write bytes so far", req.obs.write_bytes_so_far),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(StoreError::Corrupt(format!(
                "revise {name} {v} is not a finite non-negative number"
            )));
        }
    }
    if !req.coverage.is_finite() || !(0.0..1.0).contains(&req.coverage) {
        return Err(StoreError::Corrupt(format!(
            "revise coverage {} is outside [0, 1)",
            req.coverage
        )));
    }
    Ok(req)
}

fn put_interval(buf: &mut Vec<u8>, iv: &PredictionInterval) {
    put_f64(buf, iv.lo);
    put_f64(buf, iv.point);
    put_f64(buf, iv.hi);
}

fn get_interval(r: &mut Reader<'_>, head: &str) -> StoreResult<PredictionInterval> {
    let iv = PredictionInterval {
        lo: r.get_f64("revision interval lo")?,
        point: r.get_f64("revision interval point")?,
        hi: r.get_f64("revision interval hi")?,
    };
    if !(iv.lo.is_finite() && iv.point.is_finite() && iv.hi.is_finite()) || iv.lo > iv.hi {
        return Err(StoreError::Corrupt(format!(
            "revision {head} interval [{}, {}] is not a finite ordered pair",
            iv.lo, iv.hi
        )));
    }
    Ok(iv)
}

/// Encode a revision response payload.
pub fn encode_revision(reply: &RevisionReply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(80);
    put_u64(&mut buf, reply.epoch);
    put_interval(&mut buf, &reply.runtime_minutes);
    put_interval(&mut buf, &reply.read_bytes);
    put_interval(&mut buf, &reply.write_bytes);
    buf
}

/// Decode a revision response payload. Intervals must be finite with
/// `lo ≤ hi`; anything else is corruption.
pub fn decode_revision(payload: &[u8]) -> StoreResult<RevisionReply> {
    let mut r = Reader::new(payload);
    let reply = RevisionReply {
        epoch: r.get_u64("revision epoch")?,
        runtime_minutes: get_interval(&mut r, "runtime")?,
        read_bytes: get_interval(&mut r, "read bytes")?,
        write_bytes: get_interval(&mut r, "write bytes")?,
    };
    r.expect_end("revision response")?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_roundtrip() {
        let scripts = vec!["#!/bin/bash\nsrun ./a\n".to_string(), "job 2".to_string()];
        let payload = encode_predict(Priority::Low, 1500, &scripts);
        let (prio, deadline, back) = decode_predict(&payload).unwrap();
        assert_eq!(prio, Priority::Low);
        assert_eq!(deadline, 1500);
        assert_eq!(back, scripts);
    }

    #[test]
    fn predictions_roundtrip() {
        let preds = vec![
            ResourcePrediction {
                runtime_minutes: 12.5,
                read_bytes: 1e9,
                write_bytes: 2e8,
            },
            ResourcePrediction {
                runtime_minutes: 700.0,
                read_bytes: 0.0,
                write_bytes: 0.0,
            },
        ];
        let payload = encode_predictions(42, &preds);
        let (epoch, back) = decode_predictions(&payload).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].runtime_minutes, 12.5);
        assert_eq!(back[1].runtime_minutes, 700.0);
    }

    #[test]
    fn error_and_stats_roundtrip() {
        let payload = encode_error(ErrorCode::Draining, "shard 2 draining");
        let (code, msg) = decode_error(&payload).unwrap();
        assert_eq!(code, ErrorCode::Draining);
        assert_eq!(msg, "shard 2 draining");

        let stats = ShardStats {
            epoch: 7,
            live_replicas: 2,
            queue_depth: 3,
            requests_served: 999,
            draining: true,
            requests_shed: 41,
            failover_arrivals: 6,
            revisions_served: 17,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
    }

    #[test]
    fn legacy_33_byte_stats_payload_still_decodes() {
        // A pre-observability shard sends only the first five fields; the
        // appended counters must read back as zero, not as Truncated.
        let full = encode_stats(&ShardStats {
            epoch: 7,
            live_replicas: 2,
            queue_depth: 3,
            requests_served: 999,
            draining: false,
            requests_shed: 41,
            failover_arrivals: 6,
            revisions_served: 17,
        });
        let legacy = &full[..33];
        let stats = decode_stats(legacy).unwrap();
        assert_eq!(stats.requests_served, 999);
        assert_eq!(stats.requests_shed, 0);
        assert_eq!(stats.failover_arrivals, 0);
        assert_eq!(stats.revisions_served, 0);
    }

    #[test]
    fn malformed_stats_payloads_are_typed() {
        let full = encode_stats(&ShardStats::default());
        // Cut inside the appended counters: Truncated, not zeros.
        assert!(matches!(
            decode_stats(&full[..40]),
            Err(StoreError::Truncated(_))
        ));
        // Trailing garbage past the full layout is Corrupt.
        let mut padded = full.clone();
        padded.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(decode_stats(&padded), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn trace_context_roundtrip_and_passthrough() {
        let ctx = TraceContext {
            trace_id: (3u64 << 48) | 12,
            parent_span_id: (1u64 << 48) | 99,
            hop: 2,
        };
        let base = encode_predict(Priority::Normal, 250, &["job".to_string()]);
        let framed = encode_with_trace(&ctx, &base);
        let (kind, got, rest) = strip_trace(KIND_PREDICT | KIND_TRACE_FLAG, &framed).unwrap();
        assert_eq!(kind, KIND_PREDICT);
        assert_eq!(got, Some(ctx));
        assert_eq!(rest, &base[..]);
        // Unflagged kinds pass straight through.
        let (kind, got, rest) = strip_trace(KIND_PREDICT, &base).unwrap();
        assert_eq!(kind, KIND_PREDICT);
        assert_eq!(got, None);
        assert_eq!(rest, &base[..]);
    }

    #[test]
    fn future_trace_extension_version_is_skipped_not_fatal() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
            hop: 0,
        };
        let base = encode_predict(Priority::Normal, 250, &["job".to_string()]);
        let mut framed = encode_with_trace(&ctx, &base);
        framed[0] = TRACE_EXT_VERSION + 1; // a version we cannot parse
        let (kind, got, rest) = strip_trace(KIND_PREDICT | KIND_TRACE_FLAG, &framed).unwrap();
        assert_eq!(kind, KIND_PREDICT);
        assert_eq!(got, None, "unknown version drops the context");
        assert_eq!(rest, &base[..], "but the base payload survives");
    }

    #[test]
    fn malformed_trace_extensions_are_typed() {
        let ctx = TraceContext {
            trace_id: 1,
            parent_span_id: 2,
            hop: 1,
        };
        let framed = encode_with_trace(&ctx, b"payload");
        // Cut inside the extension header and body.
        for cut in [0, 1, 5, 18] {
            assert!(
                matches!(
                    strip_trace(KIND_PREDICT | KIND_TRACE_FLAG, &framed[..cut]),
                    Err(StoreError::Truncated(_))
                ),
                "cut at {cut} should be Truncated"
            );
        }
        // A v1 extension claiming a too-short body is Corrupt.
        let mut short = framed.clone();
        short[1] = 8;
        assert!(matches!(
            strip_trace(KIND_PREDICT | KIND_TRACE_FLAG, &short),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_counts_are_corrupt_not_allocations() {
        // A tiny payload claiming 2^31 scripts must fail on the count
        // check, not try to reserve gigabytes.
        let mut buf = Vec::new();
        put_u8(&mut buf, 0);
        put_u32(&mut buf, 0);
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(decode_predict(&buf), Err(StoreError::Corrupt(_))));

        let mut buf = Vec::new();
        put_u64(&mut buf, 1);
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            decode_predictions(&buf),
            Err(StoreError::Corrupt(_))
        ));
    }

    fn revise_request() -> ReviseRequest {
        ReviseRequest {
            obs: ProgressObs {
                job_id: 99,
                elapsed_seconds: 1800.0,
                read_bytes_so_far: 2.5e9,
                write_bytes_so_far: 1.0e8,
            },
            initial: ResourcePrediction {
                runtime_minutes: 60.0,
                read_bytes: 10.0e9,
                write_bytes: 1.0e9,
            },
            coverage: 0.9,
        }
    }

    #[test]
    fn revise_roundtrip() {
        let req = revise_request();
        assert_eq!(decode_revise(&encode_revise(&req)).unwrap(), req);
    }

    #[test]
    fn revision_roundtrip() {
        let reply = RevisionReply {
            epoch: 3,
            runtime_minutes: PredictionInterval {
                lo: 55.0,
                point: 80.0,
                hi: 130.0,
            },
            read_bytes: PredictionInterval {
                lo: 8.0e9,
                point: 10.0e9,
                hi: 14.0e9,
            },
            write_bytes: PredictionInterval::degenerate(1.0e9),
        };
        assert_eq!(decode_revision(&encode_revision(&reply)).unwrap(), reply);
    }

    #[test]
    fn revise_rejects_nonsense_numbers_as_corrupt() {
        // Coverage of 1.0 would demand an infinite interval; NaN elapsed
        // is not an observation. Both are typed Corrupt, not accepted.
        let mut bad_coverage = revise_request();
        bad_coverage.coverage = 1.0;
        assert!(matches!(
            decode_revise(&encode_revise(&bad_coverage)),
            Err(StoreError::Corrupt(_))
        ));

        let mut nan_elapsed = revise_request();
        nan_elapsed.obs.elapsed_seconds = f64::NAN;
        assert!(matches!(
            decode_revise(&encode_revise(&nan_elapsed)),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn revision_rejects_inverted_intervals_as_corrupt() {
        let reply = RevisionReply {
            epoch: 1,
            runtime_minutes: PredictionInterval {
                lo: 130.0,
                point: 80.0,
                hi: 55.0,
            },
            read_bytes: PredictionInterval::degenerate(1.0),
            write_bytes: PredictionInterval::degenerate(1.0),
        };
        assert!(matches!(
            decode_revision(&encode_revision(&reply)),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_revise_payloads_are_typed_truncated() {
        let full = encode_revise(&revise_request());
        for cut in [0, 7, 8, 20, full.len() - 1] {
            assert!(
                matches!(decode_revise(&full[..cut]), Err(StoreError::Truncated(_))),
                "cut at {cut} should be Truncated"
            );
        }
        let reply_full = encode_revision(&RevisionReply {
            epoch: 1,
            runtime_minutes: PredictionInterval::degenerate(5.0),
            read_bytes: PredictionInterval::degenerate(5.0),
            write_bytes: PredictionInterval::degenerate(5.0),
        });
        assert!(matches!(
            decode_revision(&reply_full[..reply_full.len() - 3]),
            Err(StoreError::Truncated(_))
        ));
        // Trailing garbage after a valid payload is Corrupt: the frame
        // length said more bytes than the message has fields.
        let mut padded = reply_full.clone();
        padded.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            decode_revision(&padded),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn every_serve_error_maps_to_a_code() {
        let cases = [
            (
                ServeError::Overloaded { queue_cap: 4 },
                ErrorCode::Overloaded,
            ),
            (ServeError::DeadlineExceeded, ErrorCode::DeadlineExceeded),
            (ServeError::ShedPreBurst, ErrorCode::ShedPreBurst),
            (ServeError::Stopped, ErrorCode::Stopped),
            (ServeError::Model("boom".into()), ErrorCode::Model),
        ];
        for (err, code) in cases {
            assert_eq!(ErrorCode::from_serve_error(&err), code);
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
    }
}
