//! # prionn-fleet — sharded multi-gateway serving over a binary wire protocol
//!
//! One [`prionn_serve::Gateway`] scales until it saturates a process; a
//! cluster-wide deployment needs many gateways and something to route
//! between them. This crate is that layer, built entirely on `std::net`
//! TCP (the same dependency-free pattern the observe crate's ops server
//! proves out — no async runtime, no HTTP stack):
//!
//! * **Wire protocol** ([`proto`]) — every message is one length-prefixed,
//!   CRC32-checked frame ([`prionn_store::wire`]) carrying a correlation
//!   id, so a single connection runs many requests concurrently and
//!   responses may return out of order (pipelining). Malformed frames
//!   fail with typed errors, never panics.
//! * **Shard server** ([`ShardServer`]) — fronts a gateway on a TCP
//!   listener. Per-connection worker threads feed concurrent requests
//!   into the gateway, which is exactly the shape its micro-batch fusion
//!   wants; a writer thread batches replies into shared flushes.
//! * **Router** ([`Router`]) — consistent-hash maps user ids to shards
//!   ([`HashRing`]: FNV-1a + vnodes, shard loss only remaps the lost
//!   arc), pools pipelined connections, and distinguishes *load* from
//!   *availability*: typed sheds ([`ErrorCode::Overloaded`] etc.) return
//!   to the caller unchanged, while connection loss, timeouts, and
//!   draining shards fail over along the ring's deterministic order.
//! * **Coordinator** ([`FleetCoordinator`]) — rolls a new checkpoint
//!   across the fleet shard-by-shard over each shard's all-or-nothing
//!   `WeightBus` swap, bounding the mixed-epoch window to one shard;
//!   drains shards gracefully before removal. `rollout_gated` consults a
//!   go/no-go gate (typically an SLO engine's burn-rate alert) before
//!   every push.
//! * **Observability plane** — the router opens a client span per call
//!   and injects its trace context into the frame (see
//!   [`proto::KIND_TRACE_FLAG`]); shards adopt it as the root of their
//!   gateway span tree, so `prionn_observe::FleetCollector` can stitch
//!   one fleet-wide trace and federate every shard's metrics.
//!
//! The `prionn-shard` binary serves one shard process; the `loadgen`
//! binary drives scripted users against a local fleet, including a
//! shard-kill + drain drill.

#![warn(missing_docs)]

pub mod coordinator;
pub mod proto;
pub mod ring;
pub mod router;
pub mod shard;
pub mod testkit;

pub use coordinator::{FleetCoordinator, RolloutReport, ShardRollout};
pub use proto::{ErrorCode, ReviseRequest, RevisionReply, ShardStats, TraceContext};
pub use ring::HashRing;
pub use router::{FleetError, FleetReply, FleetRevision, Router, RouterConfig};
pub use shard::{ShardConfig, ShardServer};
