//! Fleet-wide weight rollouts and drain orchestration.
//!
//! A [`FleetCoordinator`] drives a new checkpoint across the fleet
//! **shard by shard**: serialize once, push to shard 0, wait for its
//! swap-ack (each shard's `WeightBus` applies the checkpoint
//! all-or-nothing and hands back the new epoch), then move to shard 1,
//! and so on. Sequencing bounds the mixed-epoch window to a single shard
//! at any instant — clients see at most two adjacent epochs during a
//! rollout, and each individual shard's epoch only ever moves forward
//! (the bus is monotonic).
//!
//! Rollouts are *best-effort per shard*: an unreachable shard is
//! recorded and skipped rather than wedging the rollout, because a shard
//! that rejoins is re-pushed by the next rollout (or an explicit
//! [`FleetCoordinator::push_to_shard`]).

use std::time::Duration;

use prionn_store::Checkpoint;
use prionn_telemetry::Gauge;

use crate::router::Router;

/// The outcome of one shard's step in a rollout.
#[derive(Debug, Clone)]
pub struct ShardRollout {
    /// Shard index.
    pub shard: usize,
    /// The epoch the shard acked, when the push succeeded.
    pub epoch: Option<u64>,
    /// Failure detail when it did not.
    pub error: Option<String>,
}

/// The outcome of a fleet-wide rollout.
#[derive(Debug, Clone)]
pub struct RolloutReport {
    /// Per-shard outcomes, in push order.
    pub shards: Vec<ShardRollout>,
    /// Checkpoint image size pushed to each shard, in bytes.
    pub payload_bytes: usize,
}

impl RolloutReport {
    /// True when every shard acked the new weights.
    pub fn fully_applied(&self) -> bool {
        self.shards.iter().all(|s| s.epoch.is_some())
    }

    /// Shard indices that failed the push.
    pub fn failed_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| s.epoch.is_none())
            .map(|s| s.shard)
            .collect()
    }
}

/// Orchestrates epoch rollouts and drains over a [`Router`]'s admin
/// channel.
pub struct FleetCoordinator<'a> {
    router: &'a Router,
    swap_timeout: Duration,
    rollout_epoch: Gauge,
}

impl<'a> FleetCoordinator<'a> {
    /// A coordinator speaking through `router`. `swap_timeout` bounds how
    /// long one shard may take to verify + apply a checkpoint.
    pub fn new(router: &'a Router, swap_timeout: Duration) -> Self {
        let rollout_epoch = router.telemetry().gauge(
            "fleet_rollout_epoch",
            "Highest epoch acked by any shard in the latest rollout",
        );
        FleetCoordinator {
            router,
            swap_timeout,
            rollout_epoch,
        }
    }

    /// Roll `checkpoint` across every shard, one at a time, in index
    /// order. Returns per-shard epochs/errors; never panics on shard
    /// failure.
    pub fn rollout(&self, checkpoint: &Checkpoint) -> RolloutReport {
        let bytes = checkpoint.to_bytes();
        let mut shards = Vec::with_capacity(self.router.shard_count());
        for shard in 0..self.router.shard_count() {
            shards.push(self.push_bytes(shard, &bytes));
        }
        RolloutReport {
            shards,
            payload_bytes: bytes.len(),
        }
    }

    /// Push `checkpoint` to one shard only (e.g. re-sync a shard that
    /// rejoined after missing a rollout).
    pub fn push_to_shard(&self, shard: usize, checkpoint: &Checkpoint) -> ShardRollout {
        self.push_bytes(shard, &checkpoint.to_bytes())
    }

    /// [`rollout`](Self::rollout) with a go/no-go gate consulted **before
    /// every shard push**. `gate` returning `Some(reason)` pauses the
    /// rollout right there: already-pushed shards keep the new epoch,
    /// every remaining shard is reported with the gate's reason as its
    /// error and is *not* contacted. Wire the gate to an SLO engine's
    /// [`any_alert`](prionn_observe::SloEngine::any_alert) to stop
    /// rolling new weights into a fleet whose error budget is already
    /// burning.
    pub fn rollout_gated(
        &self,
        checkpoint: &Checkpoint,
        gate: &dyn Fn() -> Option<String>,
    ) -> RolloutReport {
        let bytes = checkpoint.to_bytes();
        let mut shards = Vec::with_capacity(self.router.shard_count());
        let mut paused: Option<String> = None;
        for shard in 0..self.router.shard_count() {
            if paused.is_none() {
                if let Some(reason) = gate() {
                    self.router.telemetry().events().record(
                        "fleet_rollout_paused",
                        format!("shard={shard} reason={reason}"),
                        0,
                    );
                    paused = Some(reason);
                }
            }
            match &paused {
                Some(reason) => shards.push(ShardRollout {
                    shard,
                    epoch: None,
                    error: Some(format!("rollout paused: {reason}")),
                }),
                None => shards.push(self.push_bytes(shard, &bytes)),
            }
        }
        RolloutReport {
            shards,
            payload_bytes: bytes.len(),
        }
    }

    fn push_bytes(&self, shard: usize, bytes: &[u8]) -> ShardRollout {
        match self.router.swap_weights(shard, bytes, self.swap_timeout) {
            Ok(epoch) => {
                self.rollout_epoch.set(epoch as f64);
                self.router.telemetry().events().record(
                    "fleet_rollout_shard",
                    format!("shard={shard} epoch={epoch}"),
                    0,
                );
                ShardRollout {
                    shard,
                    epoch: Some(epoch),
                    error: None,
                }
            }
            Err(error) => {
                self.router.telemetry().events().record(
                    "fleet_rollout_shard_failed",
                    format!("shard={shard} error={error}"),
                    0,
                );
                ShardRollout {
                    shard,
                    epoch: None,
                    error: Some(error),
                }
            }
        }
    }

    /// Gracefully remove a shard: tell it to drain (typed Draining
    /// answers start immediately), giving callers' routers time to fail
    /// over before the process exits.
    pub fn drain_shard(&self, shard: usize) -> Result<(), String> {
        self.router.drain_shard(shard)
    }
}
