//! Fleet load generator and failure-drill driver.
//!
//! ```text
//! loadgen [--users N] [--shards N] [--clients N] [--smoke]
//!         [--kill-drill] [--serve-seconds S] [--spawn PATH]
//! ```
//!
//! Boots a local fleet (in-process by default; `--spawn
//! path/to/prionn-shard` runs each shard as a separate OS process),
//! drives scripted users through a consistent-hash [`Router`], and
//! reports aggregate throughput and latency percentiles. With
//! `--kill-drill` it additionally runs the availability drill: drain one
//! shard gracefully (users fail over, nothing is lost), kill a shard
//! abruptly (typed shed at the router, failover succeeds), then respawn
//! it and verify traffic returns — the fleet recovers without wedging.
//!
//! Output contract (consumed by the CI fleet job):
//! * `OPS_ADDR_<i>=<addr>` — one line per shard's ops endpoint;
//! * `LOADGEN_OK` — printed only when load + every drill invariant held;
//! * with `--serve-seconds S` the fleet then stays up for S seconds so
//!   an outside process can scrape `/metrics`.
//!
//! Default scale is 100 000 scripted users; `--smoke` keeps the user id
//! space but sends a reduced request sample, for CI.

use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prionn_fleet::router::{FleetError, Router, RouterConfig};
use prionn_fleet::testkit::{demo_corpus, LocalFleet};
use prionn_observe::ops::{OpsOptions, OpsServer};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The fleet under test: in-process shards or spawned child processes.
/// Either way each shard exposes the wire port plus an ops endpoint.
enum Backend {
    InProcess {
        fleet: Box<LocalFleet>,
        ops: Vec<Option<OpsServer>>,
    },
    Spawned {
        bin: String,
        children: Vec<Option<ChildShard>>,
    },
}

struct ChildShard {
    child: Child,
    stdin: ChildStdin,
    shard_addr: String,
    ops_addr: String,
}

fn spawn_child(bin: &str) -> ChildShard {
    let mut child = Command::new(bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let stdin = child.stdin.take().expect("child stdin");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut shard_addr = None;
    let mut ops_addr = None;
    while shard_addr.is_none() || ops_addr.is_none() {
        let line = lines
            .next()
            .expect("child exited before printing addresses")
            .expect("read child stdout");
        if let Some(v) = line.strip_prefix("SHARD_ADDR=") {
            shard_addr = Some(v.to_string());
        } else if let Some(v) = line.strip_prefix("OPS_ADDR=") {
            ops_addr = Some(v.to_string());
        }
    }
    ChildShard {
        child,
        stdin,
        shard_addr: shard_addr.unwrap(),
        ops_addr: ops_addr.unwrap(),
    }
}

impl Backend {
    fn boot(shards: usize, spawn_bin: Option<String>) -> Backend {
        match spawn_bin {
            Some(bin) => {
                let children = (0..shards).map(|_| Some(spawn_child(&bin))).collect();
                Backend::Spawned { bin, children }
            }
            None => {
                let fleet = LocalFleet::spawn(shards);
                let ops = (0..shards)
                    .map(|i| {
                        let telemetry = fleet.shard(i).gateway.telemetry().clone();
                        Some(
                            OpsServer::start(
                                "127.0.0.1:0",
                                OpsOptions {
                                    telemetry: Some(telemetry),
                                    ..OpsOptions::default()
                                },
                            )
                            .expect("start ops server"),
                        )
                    })
                    .collect();
                Backend::InProcess {
                    fleet: Box::new(fleet),
                    ops,
                }
            }
        }
    }

    fn endpoints(&self) -> Vec<String> {
        match self {
            Backend::InProcess { fleet, .. } => fleet.endpoints(),
            Backend::Spawned { children, .. } => children
                .iter()
                .map(|c| c.as_ref().expect("shard killed").shard_addr.clone())
                .collect(),
        }
    }

    fn ops_addrs(&self) -> Vec<String> {
        match self {
            Backend::InProcess { ops, .. } => ops
                .iter()
                .map(|o| o.as_ref().expect("shard killed").addr().to_string())
                .collect(),
            Backend::Spawned { children, .. } => children
                .iter()
                .map(|c| c.as_ref().expect("shard killed").ops_addr.clone())
                .collect(),
        }
    }

    /// Abrupt loss: no drain, connections die mid-flight.
    fn kill(&mut self, i: usize) {
        match self {
            Backend::InProcess { fleet, ops } => {
                fleet.kill(i);
                if let Some(o) = ops[i].take() {
                    o.shutdown();
                }
            }
            Backend::Spawned { children, .. } => {
                if let Some(mut c) = children[i].take() {
                    let _ = c.child.kill();
                    let _ = c.child.wait();
                }
            }
        }
    }

    /// Replacement shard on a fresh port; returns its new endpoint.
    fn respawn(&mut self, i: usize) -> String {
        match self {
            Backend::InProcess { fleet, ops } => {
                let endpoint = fleet.respawn(i);
                let telemetry = fleet.shard(i).gateway.telemetry().clone();
                ops[i] = Some(
                    OpsServer::start(
                        "127.0.0.1:0",
                        OpsOptions {
                            telemetry: Some(telemetry),
                            ..OpsOptions::default()
                        },
                    )
                    .expect("restart ops server"),
                );
                endpoint
            }
            Backend::Spawned { bin, children } => {
                let child = spawn_child(bin);
                let endpoint = child.shard_addr.clone();
                children[i] = Some(child);
                endpoint
            }
        }
    }

    fn shutdown(&mut self) {
        match self {
            Backend::InProcess { fleet, ops } => {
                fleet.shutdown();
                for o in ops.iter_mut().filter_map(|o| o.take()) {
                    o.shutdown();
                }
            }
            Backend::Spawned { children, .. } => {
                for c in children.iter_mut().filter_map(|c| c.take()) {
                    // Closing stdin asks the child to drain and exit.
                    let ChildShard {
                        mut child, stdin, ..
                    } = c;
                    drop(stdin);
                    let deadline = Instant::now() + Duration::from_secs(5);
                    loop {
                        match child.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(20))
                            }
                            _ => {
                                let _ = child.kill();
                                let _ = child.wait();
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Read one counter value out of the router's Prometheus export.
fn metric_value(prometheus: &str, needle: &str) -> f64 {
    prometheus
        .lines()
        .filter(|l| l.starts_with(needle))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

struct LoadReport {
    ok: u64,
    rejected: u64,
    unavailable: u64,
    wall: f64,
    lat_sorted: Vec<f64>,
}

/// Drive `total` requests from `clients` closed-loop threads. User ids
/// walk a deterministic stride over the full `users` id space, so shard
/// assignment is stable run-to-run.
fn drive(
    router: &Router,
    scripts: &[String],
    users: u64,
    total: usize,
    clients: usize,
) -> LoadReport {
    let started = Instant::now();
    let results: Vec<(u64, u64, u64, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut ok = 0u64;
                    let mut rejected = 0u64;
                    let mut unavailable = 0u64;
                    let mut lat = Vec::with_capacity(total / clients + 1);
                    let mut r = c;
                    while r < total {
                        // Stride by a large odd constant: successive
                        // requests land on different shards, like real
                        // interleaved user traffic.
                        let user = (r as u64).wrapping_mul(2_654_435_761) % users.max(1);
                        let script =
                            std::slice::from_ref(&scripts[(user % scripts.len() as u64) as usize]);
                        let t = Instant::now();
                        match router.predict(user, script) {
                            Ok(_) => {
                                ok += 1;
                                lat.push(t.elapsed().as_secs_f64());
                            }
                            Err(FleetError::Rejected { .. }) => rejected += 1,
                            Err(_) => unavailable += 1,
                        }
                        r += clients;
                    }
                    (ok, rejected, unavailable, lat)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let mut lat_sorted = Vec::new();
    let (mut ok, mut rejected, mut unavailable) = (0, 0, 0);
    for (o, rj, un, lat) in results {
        ok += o;
        rejected += rj;
        unavailable += un;
        lat_sorted.extend(lat);
    }
    lat_sorted.sort_by(|a, b| a.total_cmp(b));
    LoadReport {
        ok,
        rejected,
        unavailable,
        wall,
        lat_sorted,
    }
}

/// Users (drawn from the load's id space) whose primary shard is `shard`.
fn users_owned_by(router: &Router, users: u64, shard: usize, want: usize) -> Vec<u64> {
    (0..users)
        .filter(|&u| router.route(u) == Some(shard))
        .take(want)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let kill_drill = args.iter().any(|a| a == "--kill-drill");
    let users: u64 = arg_value(&args, "--users")
        .map(|v| v.parse().expect("--users must be an integer"))
        .unwrap_or(100_000);
    let shards: usize = arg_value(&args, "--shards")
        .map(|v| v.parse().expect("--shards must be an integer"))
        .unwrap_or(4);
    let clients: usize = arg_value(&args, "--clients")
        .map(|v| v.parse().expect("--clients must be an integer"))
        .unwrap_or(8);
    let serve_seconds: u64 = arg_value(&args, "--serve-seconds")
        .map(|v| v.parse().expect("--serve-seconds must be an integer"))
        .unwrap_or(0);
    let spawn_bin = arg_value(&args, "--spawn");
    let total: usize = match arg_value(&args, "--requests") {
        Some(v) => v.parse().expect("--requests must be an integer"),
        None if smoke => 2_000,
        None => users as usize,
    };

    println!(
        "loadgen: {shards} shards, {users} scripted users, {total} requests, {clients} clients{}",
        if spawn_bin.is_some() {
            " (spawned processes)"
        } else {
            " (in-process)"
        }
    );

    let mut backend = Backend::boot(shards, spawn_bin);
    let scripts = demo_corpus();
    let router = Arc::new(Router::new(RouterConfig::for_endpoints(
        backend.endpoints(),
    )));

    // Main load phase.
    let report = drive(&router, &scripts, users, total, clients);
    let rps = report.ok as f64 / report.wall;
    println!(
        "load: {} ok, {} rejected, {} unavailable in {:.2}s — {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
        report.ok,
        report.rejected,
        report.unavailable,
        report.wall,
        rps,
        percentile(&report.lat_sorted, 0.50) * 1e3,
        percentile(&report.lat_sorted, 0.99) * 1e3,
    );

    // Per-shard health over the wire (no ops scrape needed): the Stats
    // frame carries served/shed/failover/revision counters, so the shed
    // ratio of every shard is one admin round-trip away.
    for shard in 0..shards {
        match router.shard_stats(shard) {
            Ok(stats) => {
                let attempts = stats.requests_served + stats.requests_shed;
                let shed_pct = if attempts > 0 {
                    stats.requests_shed as f64 / attempts as f64 * 100.0
                } else {
                    0.0
                };
                println!(
                    "shard {shard}: {} served, {} shed ({shed_pct:.2}%), \
                     {} failover arrivals, {} revisions, epoch {}",
                    stats.requests_served,
                    stats.requests_shed,
                    stats.failover_arrivals,
                    stats.revisions_served,
                    stats.epoch,
                );
            }
            Err(e) => println!("shard {shard}: stats unavailable ({e})"),
        }
    }

    let mut all_ok = report.ok > 0 && report.unavailable == 0;
    if !all_ok {
        eprintln!("FAIL: load phase saw unavailable requests or no successes");
    }

    if kill_drill && all_ok {
        let victim = shards - 1;
        let probes = users_owned_by(&router, users.min(10_000), victim, 50);
        assert!(
            !probes.is_empty(),
            "no users routed to shard {victim}; ring is broken"
        );

        // 1. Graceful drain: every probe fails over, nothing is lost.
        println!("drill: draining shard {victim}");
        router.drain_shard(victim).expect("drain command");
        let mut drained_ok = true;
        for &u in &probes {
            match router.predict(u, std::slice::from_ref(&scripts[0])) {
                Ok(reply) if reply.shard != victim => {}
                Ok(reply) => {
                    eprintln!("FAIL: drained shard {} still served user {u}", reply.shard);
                    drained_ok = false;
                }
                Err(e) => {
                    eprintln!("FAIL: user {u} lost during drain: {e}");
                    drained_ok = false;
                }
            }
        }
        let draining_sheds = metric_value(
            &router.telemetry().prometheus(),
            "fleet_shed_total{reason=\"draining\"}",
        );
        if draining_sheds < 1.0 {
            eprintln!("FAIL: no typed draining sheds observed at the router");
            drained_ok = false;
        }
        println!("drill: drain ok={drained_ok} (typed draining sheds: {draining_sheds})");

        // 2. Abrupt kill: connections die; failover still answers everyone.
        println!("drill: killing shard {victim}");
        backend.kill(victim);
        let mut killed_ok = true;
        for &u in &probes {
            match router.predict(u, std::slice::from_ref(&scripts[0])) {
                Ok(reply) if reply.shard != victim => {}
                Ok(_) => {
                    eprintln!("FAIL: killed shard answered");
                    killed_ok = false;
                }
                Err(e) => {
                    eprintln!("FAIL: user {u} lost after kill: {e}");
                    killed_ok = false;
                }
            }
        }
        println!("drill: kill ok={killed_ok}");

        // 3. Recovery: replacement process, traffic returns to the slot.
        let endpoint = backend.respawn(victim);
        router.set_endpoint(victim, &endpoint);
        router.mark_up(victim);
        println!("drill: respawned shard {victim} at {endpoint}");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut recovered = false;
        while Instant::now() < deadline {
            if let Ok(reply) = router.predict(probes[0], std::slice::from_ref(&scripts[0])) {
                if reply.shard == victim {
                    recovered = true;
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        if !recovered {
            eprintln!("FAIL: traffic did not return to respawned shard {victim}");
        }
        println!("drill: recovery ok={recovered}");
        all_ok = all_ok && drained_ok && killed_ok && recovered;
    }

    for (i, addr) in backend.ops_addrs().iter().enumerate() {
        println!("OPS_ADDR_{i}={addr}");
    }
    if all_ok {
        println!("LOADGEN_OK");
    } else {
        println!("LOADGEN_FAILED");
    }
    std::io::stdout().flush().ok();

    if serve_seconds > 0 {
        println!("holding fleet up for {serve_seconds}s for external scrapes");
        std::io::stdout().flush().ok();
        std::thread::sleep(Duration::from_secs(serve_seconds));
    }

    backend.shutdown();
    std::process::exit(if all_ok { 0 } else { 1 });
}
