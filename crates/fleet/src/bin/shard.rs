//! One fleet shard as a standalone process: a gateway behind the fleet
//! wire protocol, plus an ops endpoint for `/metrics` and `/readyz`.
//!
//! ```text
//! prionn-shard [--listen ADDR] [--ops ADDR] [--checkpoint PATH]
//!              [--replicas N] [--workers N] [--trace-namespace N]
//! ```
//!
//! The gateway records request span trees into a flight recorder served
//! on `/traces`, with trace ids minted in `--trace-namespace` (give each
//! shard of one fleet a distinct value, conventionally `2 + shard
//! index`, so a collector can stitch cross-shard traces without id
//! collisions; the router uses namespace 1).
//!
//! With `--checkpoint` the shard serves those weights; without it a small
//! demo model is trained at startup (sub-second), which is what the CI
//! fleet job and local experiments use. The bound addresses are printed
//! as `SHARD_ADDR=<addr>` and `OPS_ADDR=<addr>` lines so a parent process
//! can harvest the ephemeral ports. The shard then serves until stdin
//! reaches EOF (parent exit or explicit close), drains, and shuts down.

use std::io::Read as _;
use std::sync::Arc;
use std::time::Duration;

use prionn_fleet::shard::{ShardConfig, ShardServer};
use prionn_fleet::testkit;
use prionn_observe::ops::{OpsOptions, OpsServer, Readiness};
use prionn_observe::{FlightConfig, FlightRecorder, Tracer};
use prionn_serve::Gateway;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let listen = arg_value(&args, "--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let ops_bind = arg_value(&args, "--ops").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let replicas: usize = arg_value(&args, "--replicas")
        .map(|v| v.parse().expect("--replicas must be an integer"))
        .unwrap_or(1);
    let workers: usize = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers must be an integer"))
        .unwrap_or(8);
    let trace_namespace: u16 = arg_value(&args, "--trace-namespace")
        .map(|v| v.parse().expect("--trace-namespace must be a u16"))
        .unwrap_or(2);

    let recorder = FlightRecorder::new(FlightConfig::default());
    let mut gateway_cfg = testkit::demo_gateway_config();
    gateway_cfg.replicas = replicas;
    gateway_cfg.tracer = Some(Tracer::with_namespace(&recorder, trace_namespace));

    let gateway = match arg_value(&args, "--checkpoint") {
        Some(path) => Gateway::spawn_from_checkpoint(&path, gateway_cfg)
            .unwrap_or_else(|e| panic!("load checkpoint {path}: {e}")),
        None => Gateway::spawn(testkit::demo_model(), gateway_cfg).expect("spawn gateway"),
    };
    let gateway = Arc::new(gateway);

    let server = ShardServer::spawn(
        Arc::clone(&gateway),
        ShardConfig {
            bind: listen,
            workers_per_conn: workers,
            ..ShardConfig::default()
        },
    )
    .expect("bind shard listener");

    let ready_gateway = Arc::clone(&gateway);
    let ops = OpsServer::start(
        &ops_bind,
        OpsOptions {
            telemetry: Some(gateway.telemetry().clone()),
            recorder: Some(recorder.clone()),
            readiness: Some(Arc::new(move || {
                let (ready, detail) = ready_gateway.readiness();
                Readiness { ready, detail }
            })),
            ..OpsOptions::default()
        },
    )
    .expect("bind ops listener");

    println!("SHARD_ADDR={}", server.addr());
    println!("OPS_ADDR={}", ops.addr());
    // The parent reads the lines above; make sure they are not buffered.
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    // Serve until the parent closes our stdin.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    server.drain(Duration::from_secs(2));
    server.shutdown();
    ops.shutdown();
    gateway.shutdown();
}
