//! The fleet observability collector as a standalone process: scrapes
//! every shard's ops endpoint on a cadence, merges their metrics, and
//! serves the federated view on its own ops endpoint's `/fleet/*`
//! routes.
//!
//! ```text
//! fleet-collector [--ops ADDR] [--quorum N] [--interval-ms M]
//!                 [--slo-latency-ms T] <shard_ops_addr>...
//! ```
//!
//! Positional arguments are the shard ops endpoints to federate, in
//! shard order. `--quorum 0` (the default) requires a strict majority of
//! shards up for `/fleet/healthz` to report 200. With `--slo-latency-ms`
//! a p99-style predict-latency SLO (99% of predicts under T ms, judged
//! on the merged `serve_predict_seconds` histogram) is evaluated with
//! multi-window burn-rate alerting and exported as `slo_*` series.
//!
//! The bound address is printed as `COLLECTOR_ADDR=<addr>` so a parent
//! process can harvest the ephemeral port; the collector then serves
//! until stdin reaches EOF.

use std::io::Read as _;
use std::time::Duration;

use prionn_observe::ops::{OpsOptions, OpsServer};
use prionn_observe::{CollectorConfig, FleetCollector, ShardTarget, SloSource, SloSpec};
use prionn_telemetry::Telemetry;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops_bind = arg_value(&args, "--ops").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let quorum: usize = arg_value(&args, "--quorum")
        .map(|v| v.parse().expect("--quorum must be an integer"))
        .unwrap_or(0);
    let interval_ms: u64 = arg_value(&args, "--interval-ms")
        .map(|v| v.parse().expect("--interval-ms must be an integer"))
        .unwrap_or(1_000);
    let slo_latency_ms: Option<f64> =
        arg_value(&args, "--slo-latency-ms").map(|v| v.parse().expect("--slo-latency-ms"));

    // Positional args (skipping flags and their values) are shard ops
    // endpoints, in shard order.
    let mut shard_addrs = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            shard_addrs.push(args[i].clone());
            i += 1;
        }
    }
    assert!(
        !shard_addrs.is_empty(),
        "usage: fleet-collector [--ops ADDR] [--quorum N] [--interval-ms M] \
         [--slo-latency-ms T] <shard_ops_addr>..."
    );

    let slos = slo_latency_ms
        .map(|ms| {
            vec![SloSpec::new(
                "predict_p99",
                0.99,
                SloSource::LatencyBuckets {
                    histogram: "serve_predict_seconds".into(),
                    threshold: ms / 1e3,
                },
            )]
        })
        .unwrap_or_default();

    let collector = FleetCollector::spawn(CollectorConfig {
        shards: shard_addrs
            .into_iter()
            .enumerate()
            .map(|(i, ops_addr)| ShardTarget {
                name: i.to_string(),
                ops_addr,
            })
            .collect(),
        interval: Duration::from_millis(interval_ms),
        quorum,
        telemetry: Some(Telemetry::new()),
        slos,
        ..CollectorConfig::default()
    });

    let ops = OpsServer::start(
        &ops_bind,
        OpsOptions {
            telemetry: collector.telemetry().clone().into(),
            fleet: Some(collector.clone()),
            ..OpsOptions::default()
        },
    )
    .expect("bind collector ops listener");

    println!("COLLECTOR_ADDR={}", ops.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    // Serve until the parent closes our stdin.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    ops.shutdown();
    collector.shutdown();
}
