//! Support for fleet tests, benches, and the bundled binaries: a small
//! trained model and a helper that boots an N-shard fleet in-process.
//!
//! Everything here runs real components — real gateways, real TCP
//! listeners on ephemeral loopback ports — just sized small enough to
//! start in well under a second, so integration tests and the `loadgen`
//! binary's default mode can stand up a whole fleet without fixtures on
//! disk.

use std::sync::Arc;
use std::time::Duration;

use prionn_core::{Prionn, PrionnConfig};
use prionn_observe::{FlightConfig, FlightRecorder, OpsOptions, OpsServer, Tracer};
use prionn_serve::{Gateway, GatewayConfig};
use prionn_store::Checkpoint;
use prionn_telemetry::Telemetry;

use crate::shard::{ShardConfig, ShardServer};

/// Trace-id namespace of the fleet router (shard `i` gets `2 + i`), so
/// span ids allocated on different processes of one fleet never collide
/// when the collector stitches them back together.
pub const ROUTER_TRACE_NAMESPACE: u16 = 1;

/// A small mixed corpus of short and long job scripts.
pub fn demo_corpus() -> Vec<String> {
    let mut scripts = Vec::new();
    for i in 0..16 {
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 2\n#SBATCH -t 02:00:00\nmodule load mkl\nsrun ./short_app run{i}\n"
        ));
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 64\n#SBATCH -t 12:00:00\nmodule load big\nexport OMP_NUM_THREADS=4\nsrun ./long_app case{i}\nsync\n"
        ));
    }
    scripts
}

/// A quickly-trained model over [`demo_corpus`]: real weights, one epoch,
/// small grid — enough structure for predictions to be deterministic and
/// epoch handling to be exercised end to end.
pub fn demo_model() -> Prionn {
    let scripts = demo_corpus();
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let cfg = PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 64,
        predict_io: false,
        epochs: 1,
        batch_size: 32,
        ..Default::default()
    };
    let mut model = Prionn::new(cfg, &refs).expect("build demo model");
    let runtimes: Vec<f64> = (0..refs.len())
        .map(|i| if i % 2 == 0 { 100.0 } else { 700.0 })
        .collect();
    model
        .retrain(&refs, &runtimes, &[], &[])
        .expect("train demo model");
    model
}

/// [`demo_model`] serialised to the checkpoint wire format.
pub fn demo_checkpoint() -> Checkpoint {
    demo_model().to_checkpoint().expect("checkpoint demo model")
}

/// A gateway config sized for fleet tests: single replica, aggressive
/// batching window, bounded queue.
pub fn demo_gateway_config() -> GatewayConfig {
    GatewayConfig {
        replicas: 1,
        max_batch: 16,
        max_wait: Duration::from_micros(500),
        queue_cap: 256,
        ..GatewayConfig::default()
    }
}

/// One shard of a [`LocalFleet`]: the gateway plus the TCP server
/// fronting it.
pub struct LocalShard {
    /// The shard's gateway (shared so callers can inspect stats/epoch).
    pub gateway: Arc<Gateway>,
    /// The TCP front door.
    pub server: ShardServer,
    /// The shard's flight recorder, when booted observed.
    pub recorder: Option<FlightRecorder>,
    /// The shard's ops endpoint (`/metrics`, `/traces`, …), when booted
    /// observed.
    pub ops: Option<OpsServer>,
}

/// An N-shard fleet running in this process on ephemeral loopback ports.
///
/// Shards can be killed abruptly ([`LocalFleet::kill`]) and respawned at
/// a new port ([`LocalFleet::respawn`]) to drive failure drills.
pub struct LocalFleet {
    checkpoint: Checkpoint,
    gateway_cfg: GatewayConfig,
    shard_cfg: ShardConfig,
    observed: bool,
    shards: Vec<Option<LocalShard>>,
}

impl LocalFleet {
    /// Boot `n` shards from one [`demo_checkpoint`] with the demo gateway
    /// config.
    pub fn spawn(n: usize) -> LocalFleet {
        Self::spawn_with(n, demo_gateway_config(), ShardConfig::default())
    }

    /// Boot `n` shards with explicit gateway/shard configs. The configs
    /// are kept as templates so [`respawn`](Self::respawn) rebuilds a
    /// shard identically.
    pub fn spawn_with(n: usize, gateway_cfg: GatewayConfig, shard_cfg: ShardConfig) -> LocalFleet {
        Self::spawn_inner(n, gateway_cfg, shard_cfg, false)
    }

    /// Boot `n` *observed* shards: each gets its own telemetry registry,
    /// flight recorder, namespaced [`Tracer`] (`2 + i`, so stitched span
    /// ids never collide with the router's namespace `1`), and an ops
    /// endpoint on an ephemeral port — everything a [`FleetCollector`]
    /// (`prionn_observe::FleetCollector`) needs to scrape.
    pub fn spawn_observed(n: usize) -> LocalFleet {
        Self::spawn_inner(n, demo_gateway_config(), ShardConfig::default(), true)
    }

    fn spawn_inner(
        n: usize,
        gateway_cfg: GatewayConfig,
        shard_cfg: ShardConfig,
        observed: bool,
    ) -> LocalFleet {
        let checkpoint = demo_checkpoint();
        let mut fleet = LocalFleet {
            checkpoint,
            gateway_cfg,
            shard_cfg,
            observed,
            shards: Vec::new(),
        };
        for i in 0..n {
            let shard = fleet.boot_shard(i);
            fleet.shards.push(Some(shard));
        }
        fleet
    }

    fn boot_shard(&self, i: usize) -> LocalShard {
        let model = Prionn::from_checkpoint(&self.checkpoint).expect("model from checkpoint");
        let mut gateway_cfg = self.gateway_cfg.clone();
        let observability = self.observed.then(|| {
            let telemetry = Telemetry::new();
            let recorder = FlightRecorder::new(FlightConfig::default());
            recorder.attach_telemetry(&telemetry);
            let namespace = ROUTER_TRACE_NAMESPACE + 1 + u16::try_from(i).expect("shard index");
            gateway_cfg.telemetry = Some(telemetry.clone());
            gateway_cfg.tracer = Some(Tracer::with_namespace(&recorder, namespace));
            (telemetry, recorder)
        });
        let gateway = Arc::new(Gateway::spawn(model, gateway_cfg).expect("spawn gateway"));
        let server = ShardServer::spawn(Arc::clone(&gateway), self.shard_cfg.clone())
            .expect("spawn shard server");
        let (recorder, ops) = match observability {
            Some((telemetry, recorder)) => {
                let ops = OpsServer::start(
                    "127.0.0.1:0",
                    OpsOptions {
                        telemetry: Some(telemetry),
                        recorder: Some(recorder.clone()),
                        ..OpsOptions::default()
                    },
                )
                .expect("start shard ops endpoint");
                (Some(recorder), Some(ops))
            }
            None => (None, None),
        };
        LocalShard {
            gateway,
            server,
            recorder,
            ops,
        }
    }

    /// Number of shard slots (killed shards still count).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the fleet has no shard slots.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The live shard at `i`; panics if it was killed.
    pub fn shard(&self, i: usize) -> &LocalShard {
        self.shards[i].as_ref().expect("shard was killed")
    }

    /// Endpoint strings in shard order. Panics if any shard has been
    /// killed — query while all shards are up (typically at boot, to
    /// build the router config).
    pub fn endpoints(&self) -> Vec<String> {
        (0..self.shards.len())
            .map(|i| self.shard(i).server.addr().to_string())
            .collect()
    }

    /// Ops-endpoint addresses in shard order. Panics unless the fleet
    /// was booted with [`spawn_observed`](Self::spawn_observed) and all
    /// shards are up.
    pub fn ops_endpoints(&self) -> Vec<String> {
        (0..self.shards.len())
            .map(|i| {
                self.shard(i)
                    .ops
                    .as_ref()
                    .expect("fleet was not spawned observed")
                    .addr()
                    .to_string()
            })
            .collect()
    }

    /// Abruptly kill shard `i`: close its listener and connections and
    /// stop its gateway, with no drain. Simulates process loss.
    pub fn kill(&mut self, i: usize) {
        if let Some(shard) = self.shards[i].take() {
            // Gateway first: it fails queued requests (typed Stopped), so
            // shard workers blocked in predict return and the server's
            // thread joins cannot wedge.
            shard.gateway.shutdown();
            shard.server.shutdown();
            if let Some(ops) = shard.ops {
                ops.shutdown();
            }
        }
    }

    /// Bring shard `i` back on a fresh ephemeral port (a replacement
    /// process). Returns the new endpoint.
    pub fn respawn(&mut self, i: usize) -> String {
        assert!(self.shards[i].is_none(), "shard {i} is still running");
        let shard = self.boot_shard(i);
        let endpoint = shard.server.addr().to_string();
        self.shards[i] = Some(shard);
        endpoint
    }

    /// Stop everything still running.
    pub fn shutdown(&mut self) {
        for slot in &mut self.shards {
            if let Some(shard) = slot.take() {
                shard.gateway.shutdown();
                shard.server.shutdown();
                if let Some(ops) = shard.ops {
                    ops.shutdown();
                }
            }
        }
    }
}

impl Drop for LocalFleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}
