//! Consistent-hash routing of user ids to shards.
//!
//! Each shard contributes `vnodes` points to a 64-bit hash ring; a user id
//! is served by the first shard point at or clockwise-after its hash.
//! Virtual nodes smooth the load split (128 points per shard keeps the
//! per-shard share within a few percent of uniform for large user
//! populations), and consistency means shard loss only remaps the lost
//! shard's arc: users on surviving shards keep their assignment, so their
//! shards keep warm per-user state (drift windows, cache locality) across
//! fleet membership changes.

/// FNV-1a, 64-bit: tiny, dependency-free, and uniform enough for ring
/// placement (the ring's balance comes from vnode count, not hash
/// perfection).
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The splitmix64 finaliser: full-avalanche bit mixing. FNV over short,
/// similar keys (`shard-0#0`, `shard-0#1`, ...) leaves the low-entropy
/// structure of its input visible in the high bits, which skews ring arc
/// lengths badly; a finalising mix restores uniform dispersion.
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash point for one user id: mixing keeps sequential ids (user 0, 1,
/// 2, ...) from clustering on the ring.
fn user_point(user: u64) -> u64 {
    mix64(user)
}

/// An immutable consistent-hash ring over shard indices `0..n`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// (point, shard index), sorted by point.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// Build a ring with `vnodes` points per shard id. Shard ids are
    /// hashed by *name*, so the ring layout is stable across processes
    /// and restarts as long as the names are.
    pub fn new(shard_ids: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shard_ids.len() * vnodes);
        for (idx, id) in shard_ids.iter().enumerate() {
            for v in 0..vnodes {
                let key = format!("{id}#{v}");
                points.push((mix64(hash64(key.as_bytes())), idx as u32));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(p, _)| *p);
        HashRing {
            points,
            shards: shard_ids.len(),
        }
    }

    /// Number of shards this ring routes over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The owning shard index for a user id (ignores health).
    pub fn owner(&self, user: u64) -> Option<usize> {
        self.owners(user).next()
    }

    /// All shards in preference order for a user id: the owner first, then
    /// each distinct shard met walking clockwise. Failover tries them in
    /// this order, so a given user's fallback shard is deterministic too.
    pub fn owners(&self, user: u64) -> impl Iterator<Item = usize> + '_ {
        let start = match self.points.is_empty() {
            true => 0,
            false => self.points.partition_point(|(p, _)| *p < user_point(user)),
        };
        let n = self.points.len();
        let mut seen = vec![false; self.shards];
        let mut emitted = 0;
        let shards = self.shards;
        (0..n).filter_map(move |i| {
            if emitted == shards {
                return None;
            }
            let (_, shard) = self.points[(start + i) % n];
            let shard = shard as usize;
            if seen[shard] {
                None
            } else {
                seen[shard] = true;
                emitted += 1;
                Some(shard)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(&ids(4), 128);
        for user in 0..1000u64 {
            let a = ring.owner(user).unwrap();
            let b = ring.owner(user).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn load_split_is_roughly_uniform() {
        let ring = HashRing::new(&ids(4), 128);
        let mut counts = [0usize; 4];
        let users = 100_000u64;
        for user in 0..users {
            counts[ring.owner(user).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / users as f64;
            assert!(
                (0.15..=0.35).contains(&share),
                "shard {i} got share {share:.3}, outside [0.15, 0.35]: {counts:?}"
            );
        }
    }

    #[test]
    fn owners_are_distinct_and_cover_every_shard() {
        let ring = HashRing::new(&ids(4), 64);
        for user in [0u64, 1, 99, 12345, u64::MAX] {
            let order: Vec<usize> = ring.owners(user).collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "owners {order:?} must be distinct");
            assert_eq!(order.len(), 4, "owners {order:?} must cover all shards");
        }
    }

    #[test]
    fn shard_loss_only_remaps_the_lost_arc() {
        // Consistency: users whose owner survives keep their assignment
        // when one shard leaves the ring entirely.
        let four = HashRing::new(&ids(4), 128);
        let three = HashRing::new(&ids(3), 128); // shard-3 removed
        for user in 0..20_000u64 {
            let before = four.owner(user).unwrap();
            if before < 3 {
                assert_eq!(
                    three.owner(user).unwrap(),
                    before,
                    "user {user} moved although its shard survived"
                );
            }
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(&[], 128);
        assert!(ring.owner(7).is_none());
        assert_eq!(ring.owners(7).count(), 0);
    }
}
