//! The shard server: one gateway process's TCP front door.
//!
//! A [`ShardServer`] listens on a `std::net::TcpListener` (the same
//! dependency-free pattern as the observe crate's `OpsServer`) and speaks
//! the [`proto`](crate::proto) frame protocol. Each accepted connection
//! gets:
//!
//! * a **reader** thread decoding frames and answering admin messages
//!   (ping, stats, drain, weight swap) inline;
//! * a bounded **work queue** feeding `workers_per_conn` threads that run
//!   blocking [`Gateway::predict_prioritized`] calls — many workers
//!   blocked in the gateway at once is exactly what feeds its micro-batch
//!   fusion;
//! * a **writer** thread that owns the send half behind a `BufWriter` and
//!   flushes once per drain of its reply channel, so responses completing
//!   close together share one syscall.
//!
//! Because every frame carries a correlation id, responses may be written
//! in completion order: the connection is fully pipelined.
//!
//! **Drain semantics:** [`ShardServer::drain`] flips the shard into
//! draining mode — new predict frames are answered with a typed
//! [`ErrorCode::Draining`] error while in-flight requests finish
//! normally. The listener keeps accepting connections (a client that
//! dials in must learn the state through a typed answer, not a refused
//! connection) and ops keeps serving `/metrics`, until
//! [`ShardServer::shutdown`].

use std::io::{BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use prionn_observe::{DriftHead, SpanCtx};
use prionn_revise::{ConformalCalibrator, PredictionInterval, ReviseConfig, Reviser};
use prionn_serve::{Gateway, Priority};
use prionn_store::wire::{encode_frame, read_frame, Frame};
use prionn_store::{Checkpoint, StoreError};
use prionn_telemetry::{Counter, Gauge};

use crate::proto::{
    decode_predict, decode_revise, encode_error, encode_predictions, encode_revision, encode_stats,
    encode_swap_ack, strip_trace, ErrorCode, RevisionReply, ShardStats, TraceContext, KIND_DRAIN,
    KIND_DRAIN_ACK, KIND_ERROR, KIND_PING, KIND_PONG, KIND_PREDICT, KIND_PREDICTIONS, KIND_REVISE,
    KIND_REVISION, KIND_STATS, KIND_STATS_REPLY, KIND_SWAP_ACK, KIND_SWAP_WEIGHTS,
};

/// Tuning knobs for [`ShardServer::spawn`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Bind address; use `127.0.0.1:0` for an ephemeral port.
    pub bind: String,
    /// Worker threads per connection running blocking gateway predicts.
    /// More workers = more requests in flight per connection = larger
    /// fused batches inside the gateway.
    pub workers_per_conn: usize,
    /// Cap on one frame's payload; oversized frames are answered with a
    /// typed error and the connection is closed (framing is lost).
    pub max_payload: usize,
    /// Bound on the per-connection work queue (decoded predicts waiting
    /// for a worker). Backpressures the reader instead of buffering
    /// without bound.
    pub work_queue_cap: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            bind: "127.0.0.1:0".to_string(),
            workers_per_conn: 8,
            max_payload: prionn_store::wire::MAX_FRAME_PAYLOAD,
            work_queue_cap: 64,
        }
    }
}

/// Instruments registered in the gateway's telemetry registry, so one
/// `/metrics` scrape shows the serve and fleet surfaces together.
struct ShardMetrics {
    connections: Gauge,
    frames_rx: Counter,
    frames_tx: Counter,
    bytes_rx: Counter,
    bytes_tx: Counter,
    requests: Counter,
    revisions: Counter,
    shed_draining: Counter,
    failover_arrivals: Counter,
    decode_errors: Counter,
    draining: Gauge,
    in_flight: Gauge,
}

impl ShardMetrics {
    fn build(gateway: &Gateway) -> Self {
        let t = gateway.telemetry();
        ShardMetrics {
            connections: t.gauge("fleet_shard_connections", "Open fleet protocol connections"),
            frames_rx: t.counter_with(
                "fleet_shard_frames_total",
                "Wire frames by direction",
                &[("dir", "rx")],
            ),
            frames_tx: t.counter_with(
                "fleet_shard_frames_total",
                "Wire frames by direction",
                &[("dir", "tx")],
            ),
            bytes_rx: t.counter_with(
                "fleet_shard_bytes_total",
                "Wire bytes by direction (headers included)",
                &[("dir", "rx")],
            ),
            bytes_tx: t.counter_with(
                "fleet_shard_bytes_total",
                "Wire bytes by direction (headers included)",
                &[("dir", "tx")],
            ),
            requests: t.counter(
                "fleet_shard_requests_total",
                "Predict requests received over the wire",
            ),
            revisions: t.counter(
                "fleet_shard_revisions_total",
                "In-flight revision requests answered over the wire",
            ),
            shed_draining: t.counter_with(
                "fleet_shard_shed_total",
                "Requests shed at the shard server",
                &[("reason", "draining")],
            ),
            failover_arrivals: t.counter(
                "fleet_shard_failover_arrivals_total",
                "Predict requests that arrived after another shard refused them (trace hop > 0)",
            ),
            decode_errors: t.counter(
                "fleet_shard_decode_errors_total",
                "Connections dropped on malformed frames",
            ),
            draining: t.gauge("fleet_shard_draining", "1 while draining, else 0"),
            in_flight: t.gauge(
                "fleet_shard_in_flight",
                "Predict requests currently being served",
            ),
        }
    }
}

struct ShardInner {
    gateway: Arc<Gateway>,
    cfg: ShardConfig,
    draining: AtomicBool,
    stopping: AtomicBool,
    in_flight: AtomicUsize,
    requests_served: AtomicU64,
    requests_shed: AtomicU64,
    failover_arrivals: AtomicU64,
    revisions_served: AtomicU64,
    /// Live connection streams keyed by token, for prompt close at
    /// shutdown. A connection removes itself when its thread exits, so
    /// the map does not grow with connection churn.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    conn_tokens: AtomicU64,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: ShardMetrics,
}

/// A running shard server. Shuts down on drop (the gateway it fronts is
/// shared and stays up — stop it separately).
pub struct ShardServer {
    addr: SocketAddr,
    inner: Arc<ShardInner>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl ShardServer {
    /// Bind and start serving `gateway` over the fleet protocol.
    pub fn spawn(gateway: Arc<Gateway>, cfg: ShardConfig) -> std::io::Result<ShardServer> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let metrics = ShardMetrics::build(&gateway);
        let inner = Arc::new(ShardInner {
            gateway,
            cfg,
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            requests_served: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            failover_arrivals: AtomicU64::new(0),
            revisions_served: AtomicU64::new(0),
            conns: Mutex::new(std::collections::HashMap::new()),
            conn_tokens: AtomicU64::new(0),
            conn_handles: Mutex::new(Vec::new()),
            metrics,
        });
        let accept_inner = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name(format!("prionn-shard-accept-{}", addr.port()))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    accept_inner.metrics.connections.add(1.0);
                    let token = accept_inner.conn_tokens.fetch_add(1, Ordering::Relaxed);
                    accept_inner
                        .conns
                        .lock()
                        .insert(token, stream.try_clone().expect("clone accepted stream"));
                    let conn_inner = Arc::clone(&accept_inner);
                    let handle = std::thread::Builder::new()
                        .name("prionn-shard-conn".to_string())
                        .spawn(move || {
                            serve_connection(stream, &conn_inner);
                            // Close our registry dup too, or the peer
                            // never sees EOF; then forget the token.
                            if let Some(s) = conn_inner.conns.lock().remove(&token) {
                                let _ = s.shutdown(std::net::Shutdown::Both);
                            }
                            conn_inner.metrics.connections.add(-1.0);
                        })
                        .expect("spawn connection thread");
                    let mut handles = accept_inner.conn_handles.lock();
                    handles.retain(|h| !h.is_finished());
                    handles.push(handle);
                }
            })?;
        Ok(ShardServer {
            addr,
            inner,
            accept_handle: Mutex::new(Some(accept_handle)),
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once [`drain`](Self::drain) has been called (locally or over
    /// the wire).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Predict requests currently inside the gateway.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Predict requests answered since spawn.
    pub fn requests_served(&self) -> u64 {
        self.inner.requests_served.load(Ordering::SeqCst)
    }

    /// Enter draining mode and wait up to `grace` for in-flight requests
    /// to finish. New predicts are answered with a typed
    /// [`ErrorCode::Draining`] error. Returns true if the shard fully
    /// quiesced within the grace period.
    pub fn drain(&self, grace: Duration) -> bool {
        self.enter_draining();
        let deadline = Instant::now() + grace;
        while self.inner.in_flight.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    fn enter_draining(&self) {
        if !self.inner.draining.swap(true, Ordering::SeqCst) {
            self.inner.metrics.draining.set(1.0);
            self.inner.gateway.telemetry().events().record(
                "fleet_shard_drain",
                format!("addr={}", self.addr),
                0,
            );
        }
    }

    /// Stop accepting, close every connection, join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept_handle.lock().take() {
            let _ = h.join();
        }
        for (_, conn) in self.inner.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = self.inner.conn_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What the writer thread sends: an already-encoded frame.
type OutFrame = Vec<u8>;

/// One decoded predict waiting for a worker.
struct WorkItem {
    id: u64,
    priority: Priority,
    deadline: Option<Duration>,
    scripts: Vec<String>,
    /// Trace context from the frame's extension, if the caller sent one.
    trace: Option<TraceContext>,
}

fn serve_connection(stream: TcpStream, inner: &Arc<ShardInner>) {
    let (reply_tx, reply_rx) = unbounded::<OutFrame>();
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };

    // Writer: drain the reply channel, flush once per lull.
    let writer_metrics_tx = inner.metrics.frames_tx.clone();
    let writer_bytes_tx = inner.metrics.bytes_tx.clone();
    let writer = std::thread::Builder::new()
        .name("prionn-shard-writer".to_string())
        .spawn(move || {
            let mut out = BufWriter::new(write_stream);
            while let Ok(frame) = reply_rx.recv() {
                let mut wrote = frame.len();
                if out.write_all(&frame).is_err() {
                    return;
                }
                writer_metrics_tx.inc();
                // Opportunistically batch everything already queued into
                // the same flush.
                while let Ok(next) = reply_rx.try_recv() {
                    if out.write_all(&next).is_err() {
                        return;
                    }
                    writer_metrics_tx.inc();
                    wrote += next.len();
                }
                writer_bytes_tx.add(wrote as u64);
                if out.flush().is_err() {
                    return;
                }
            }
            let _ = out.flush();
        })
        .expect("spawn writer thread");

    // Workers: blocking gateway predicts.
    let (work_tx, work_rx) = bounded::<WorkItem>(inner.cfg.work_queue_cap.max(1));
    let workers: Vec<JoinHandle<()>> = (0..inner.cfg.workers_per_conn.max(1))
        .map(|w| {
            let rx: Receiver<WorkItem> = work_rx.clone();
            let tx: Sender<OutFrame> = reply_tx.clone();
            let inner = Arc::clone(inner);
            std::thread::Builder::new()
                .name(format!("prionn-shard-worker-{w}"))
                .spawn(move || {
                    while let Ok(item) = rx.recv() {
                        // Adopt the caller's trace so the gateway span
                        // tree stitches under the router's hop span.
                        let parent = item
                            .trace
                            .map(|t| SpanCtx {
                                trace_id: t.trace_id,
                                span_id: t.parent_span_id,
                            })
                            .unwrap_or(SpanCtx::NONE);
                        let reply = match inner.gateway.predict_traced(
                            &item.scripts,
                            item.deadline,
                            item.priority,
                            parent,
                        ) {
                            Ok(reply) => {
                                inner.requests_served.fetch_add(1, Ordering::SeqCst);
                                encode_frame(
                                    KIND_PREDICTIONS,
                                    item.id,
                                    &encode_predictions(reply.epoch, &reply.predictions),
                                )
                            }
                            Err(e) => {
                                inner.requests_shed.fetch_add(1, Ordering::SeqCst);
                                encode_frame(
                                    KIND_ERROR,
                                    item.id,
                                    &encode_error(ErrorCode::from_serve_error(&e), &e.to_string()),
                                )
                            }
                        };
                        let left = inner.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
                        inner.metrics.in_flight.set(left as f64);
                        if tx.send(reply).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn worker thread")
        })
        .collect();
    drop(work_rx);

    // Reader: decode frames until EOF, error, or shutdown closes the
    // socket under us.
    let mut read_stream = stream;
    loop {
        match read_frame(&mut read_stream, inner.cfg.max_payload) {
            Ok(None) => break,
            Ok(Some(frame)) => {
                inner.metrics.frames_rx.inc();
                inner
                    .metrics
                    .bytes_rx
                    .add((prionn_store::wire::FRAME_HEADER_LEN + frame.payload.len()) as u64);
                if !dispatch_frame(frame, inner, &work_tx, &reply_tx) {
                    break;
                }
            }
            Err(StoreError::FrameTooLarge { declared, cap }) => {
                // Typed answer, then close: the oversized payload bytes
                // are still in the pipe, so framing cannot be recovered.
                inner.metrics.decode_errors.inc();
                let _ = reply_tx.send(encode_frame(
                    KIND_ERROR,
                    0,
                    &encode_error(
                        ErrorCode::TooLarge,
                        &format!("frame payload {declared} exceeds cap {cap}"),
                    ),
                ));
                break;
            }
            Err(_) => {
                // Truncated / corrupt / checksum-failed stream: nothing
                // trustworthy left to answer to. Count and drop.
                inner.metrics.decode_errors.inc();
                break;
            }
        }
    }

    // Teardown: workers finish queued items, writer flushes their replies.
    drop(work_tx);
    for w in workers {
        let _ = w.join();
    }
    drop(reply_tx);
    let _ = writer.join();
}

/// Handle one decoded frame. Returns false when the connection must close.
fn dispatch_frame(
    frame: Frame,
    inner: &Arc<ShardInner>,
    work_tx: &Sender<WorkItem>,
    reply_tx: &Sender<OutFrame>,
) -> bool {
    let id = frame.id;
    let send = |f: OutFrame| reply_tx.send(f).is_ok();
    // Peel the optional trace-context extension off the payload before
    // kind dispatch; a malformed extension is a typed refusal, not a
    // dropped connection (the frame itself passed its checksum).
    let (kind, trace, payload) = match strip_trace(frame.kind, &frame.payload) {
        Ok(parts) => parts,
        Err(e) => {
            inner.metrics.decode_errors.inc();
            return send(encode_frame(
                KIND_ERROR,
                id,
                &encode_error(ErrorCode::BadRequest, &format!("bad trace extension: {e}")),
            ));
        }
    };
    match kind {
        KIND_PREDICT => {
            inner.metrics.requests.inc();
            if let Some(t) = &trace {
                if t.hop > 0 {
                    inner.failover_arrivals.fetch_add(1, Ordering::SeqCst);
                    inner.metrics.failover_arrivals.inc();
                }
            }
            if inner.draining.load(Ordering::SeqCst) || inner.stopping.load(Ordering::SeqCst) {
                inner.metrics.shed_draining.inc();
                inner.requests_shed.fetch_add(1, Ordering::SeqCst);
                return send(encode_frame(
                    KIND_ERROR,
                    id,
                    &encode_error(ErrorCode::Draining, "shard is draining"),
                ));
            }
            match decode_predict(payload) {
                Ok((priority, deadline_ms, scripts)) => {
                    let n = inner.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    inner.metrics.in_flight.set(n as f64);
                    let item = WorkItem {
                        id,
                        priority,
                        deadline: (deadline_ms > 0)
                            .then(|| Duration::from_millis(deadline_ms as u64)),
                        scripts,
                        trace,
                    };
                    if work_tx.send(item).is_err() {
                        let left = inner.in_flight.fetch_sub(1, Ordering::SeqCst) - 1;
                        inner.metrics.in_flight.set(left as f64);
                        return false;
                    }
                    true
                }
                Err(e) => {
                    inner.metrics.decode_errors.inc();
                    inner.requests_shed.fetch_add(1, Ordering::SeqCst);
                    send(encode_frame(
                        KIND_ERROR,
                        id,
                        &encode_error(ErrorCode::BadRequest, &e.to_string()),
                    ))
                }
            }
        }
        KIND_REVISE => {
            // Revisions are pure math over the drift window — no model
            // inference, no queue. They are answered inline on the reader
            // thread, and they keep serving while draining: in-flight
            // jobs still need their intervals during a rollout.
            inner.metrics.revisions.inc();
            match decode_revise(payload) {
                Ok(req) => {
                    let reviser = Reviser::new(ReviseConfig::default());
                    let revised = reviser.revise(&req.initial, &req.obs);
                    let gw = &inner.gateway;
                    let interval_for = |head: DriftHead, point: f64| match gw.drift() {
                        Some(d) => ConformalCalibrator::from_window(&d.outcome_window(head))
                            .interval(point, req.coverage),
                        None => PredictionInterval::degenerate(point),
                    };
                    let reply = RevisionReply {
                        epoch: gw.epoch(),
                        runtime_minutes: interval_for(DriftHead::Runtime, revised.runtime_minutes),
                        read_bytes: interval_for(DriftHead::Read, revised.read_bytes),
                        write_bytes: interval_for(DriftHead::Write, revised.write_bytes),
                    };
                    inner.requests_served.fetch_add(1, Ordering::SeqCst);
                    inner.revisions_served.fetch_add(1, Ordering::SeqCst);
                    send(encode_frame(KIND_REVISION, id, &encode_revision(&reply)))
                }
                Err(e) => {
                    inner.metrics.decode_errors.inc();
                    send(encode_frame(
                        KIND_ERROR,
                        id,
                        &encode_error(ErrorCode::BadRequest, &e.to_string()),
                    ))
                }
            }
        }
        KIND_PING => send(encode_frame(KIND_PONG, id, &[])),
        KIND_STATS => {
            let gw = &inner.gateway;
            let stats = ShardStats {
                epoch: gw.epoch(),
                live_replicas: gw.live_replicas() as u64,
                queue_depth: gw.queue_depth() as u64,
                requests_served: inner.requests_served.load(Ordering::SeqCst),
                draining: inner.draining.load(Ordering::SeqCst),
                requests_shed: inner.requests_shed.load(Ordering::SeqCst),
                failover_arrivals: inner.failover_arrivals.load(Ordering::SeqCst),
                revisions_served: inner.revisions_served.load(Ordering::SeqCst),
            };
            send(encode_frame(KIND_STATS_REPLY, id, &encode_stats(&stats)))
        }
        KIND_SWAP_WEIGHTS => match Checkpoint::from_bytes(payload) {
            Ok(ck) => {
                let epoch = inner.gateway.hot_swap_checkpoint(ck);
                inner.gateway.telemetry().events().record(
                    "fleet_shard_swap",
                    format!("epoch={epoch}"),
                    0,
                );
                send(encode_frame(KIND_SWAP_ACK, id, &encode_swap_ack(epoch)))
            }
            Err(e) => {
                inner.metrics.decode_errors.inc();
                send(encode_frame(
                    KIND_ERROR,
                    id,
                    &encode_error(ErrorCode::BadRequest, &format!("bad checkpoint: {e}")),
                ))
            }
        },
        KIND_DRAIN => {
            if !inner.draining.swap(true, Ordering::SeqCst) {
                inner.metrics.draining.set(1.0);
                inner
                    .gateway
                    .telemetry()
                    .events()
                    .record("fleet_shard_drain", "remote", 0);
            }
            send(encode_frame(KIND_DRAIN_ACK, id, &[]))
        }
        other => {
            inner.metrics.decode_errors.inc();
            send(encode_frame(
                KIND_ERROR,
                id,
                &encode_error(
                    ErrorCode::BadRequest,
                    &format!("unknown frame kind {other}"),
                ),
            ))
        }
    }
}
