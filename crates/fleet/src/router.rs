//! The fleet router: a client library that maps users to shards and
//! keeps pipelined connections to each.
//!
//! Routing is consistent hashing over the [`HashRing`]: a user id always
//! lands on the same shard while the fleet membership holds, and shard
//! loss only remaps the lost shard's arc. Each shard gets a small pool of
//! TCP connections; every connection is **pipelined** — requests carry
//! correlation ids, a dedicated reader thread demultiplexes responses to
//! per-request channels, so hundreds of callers can share one socket
//! without head-of-line blocking on the response side.
//!
//! **Shed vs. failover.** A live shard answering with a typed error
//! ([`ErrorCode::Overloaded`], deadline, pre-burst, model) is a *load
//! decision*: the router surfaces it to the caller unchanged rather than
//! hammering the next shard — retrying an overload elsewhere just moves
//! the hotspot. Only *availability* failures route around: connection
//! loss, timeouts, [`ErrorCode::Draining`] and [`ErrorCode::Stopped`]
//! walk the ring's deterministic failover order, and if every candidate
//! is unavailable the caller gets a typed [`FleetError::Unavailable`].

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use prionn_core::ResourcePrediction;
use prionn_observe::Tracer;
use prionn_serve::Priority;
use prionn_store::wire::{encode_frame, read_frame, Frame, MAX_FRAME_PAYLOAD};
use prionn_telemetry::{Counter, Gauge, Histogram, Telemetry};

use crate::proto::{
    decode_error, decode_predictions, decode_revision, decode_stats, decode_swap_ack,
    encode_predict, encode_revise, encode_with_trace, ErrorCode, ReviseRequest, RevisionReply,
    ShardStats, TraceContext, KIND_DRAIN, KIND_DRAIN_ACK, KIND_ERROR, KIND_PING, KIND_PONG,
    KIND_PREDICT, KIND_PREDICTIONS, KIND_REVISE, KIND_REVISION, KIND_STATS, KIND_STATS_REPLY,
    KIND_SWAP_ACK, KIND_SWAP_WEIGHTS, KIND_TRACE_FLAG,
};
use crate::ring::HashRing;

/// Why a fleet request failed.
#[derive(Debug)]
pub enum FleetError {
    /// A live shard refused the request with a typed code. Not retried on
    /// other shards: the refusal is a load decision, not an outage.
    Rejected {
        /// Shard index that answered.
        shard: usize,
        /// The typed wire code.
        code: ErrorCode,
        /// Human-readable detail from the shard.
        message: String,
    },
    /// Every candidate shard in the user's failover order was down,
    /// draining, or timed out.
    Unavailable {
        /// How many shards were tried.
        attempts: usize,
        /// The last failure seen, for diagnostics.
        last: String,
    },
    /// The router has no shards configured.
    EmptyFleet,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Rejected {
                shard,
                code,
                message,
            } => write!(f, "shard {shard} rejected request ({code}): {message}"),
            FleetError::Unavailable { attempts, last } => {
                write!(
                    f,
                    "no shard available after {attempts} attempts (last: {last})"
                )
            }
            FleetError::EmptyFleet => write!(f, "router has no shards configured"),
        }
    }
}

impl std::error::Error for FleetError {}

impl FleetError {
    /// Stable label for `fleet_shed_total{reason=...}`.
    pub fn label(&self) -> &'static str {
        match self {
            FleetError::Rejected { code, .. } => code.label(),
            FleetError::Unavailable { .. } => "unavailable",
            FleetError::EmptyFleet => "empty_fleet",
        }
    }
}

/// A successful fleet prediction.
#[derive(Debug, Clone)]
pub struct FleetReply {
    /// One prediction per submitted script.
    pub predictions: Vec<ResourcePrediction>,
    /// The weight epoch the serving shard used.
    pub epoch: u64,
    /// Which shard served the request (after any failover).
    pub shard: usize,
}

/// A successful fleet revision.
#[derive(Debug, Clone, Copy)]
pub struct FleetRevision {
    /// The revised intervals and the serving shard's weight epoch.
    pub revision: RevisionReply,
    /// Which shard served the request (after any failover).
    pub shard: usize,
}

/// Router construction knobs.
#[derive(Clone)]
pub struct RouterConfig {
    /// One endpoint (`host:port`) per shard, indexed by shard id.
    pub endpoints: Vec<String>,
    /// Stable shard names for ring placement. Defaults to `shard-<i>`;
    /// override when shards can be replaced at different addresses so
    /// ring layout survives the address change.
    pub shard_names: Option<Vec<String>>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Pipelined connections per shard.
    pub conns_per_shard: usize,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-request response timeout (independent of the model deadline
    /// carried inside the request).
    pub request_timeout: Duration,
    /// After a connect failure the shard is considered down for this
    /// long before the router re-attempts it.
    pub down_backoff: Duration,
    /// Registry for `fleet_*` router metrics; a fresh one when `None`.
    pub telemetry: Option<Telemetry>,
    /// Tracer for client-side request spans. When set, every predict
    /// opens a `fleet_predict` root with one `hop` child per shard tried,
    /// and the trace context rides the wire to the serving shard (the
    /// frame kind gains [`KIND_TRACE_FLAG`]). Give it a distinct
    /// namespace from the shards' tracers
    /// ([`Tracer::with_namespace`]) so stitched ids never collide.
    /// Disabled (and zero-overhead on the wire) when `None`.
    pub tracer: Option<Tracer>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            endpoints: Vec::new(),
            shard_names: None,
            vnodes: 128,
            conns_per_shard: 2,
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            down_backoff: Duration::from_millis(250),
            telemetry: None,
            tracer: None,
        }
    }
}

impl std::fmt::Debug for RouterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl: Tracer is an opaque handle.
        f.debug_struct("RouterConfig")
            .field("endpoints", &self.endpoints)
            .field("shard_names", &self.shard_names)
            .field("vnodes", &self.vnodes)
            .field("conns_per_shard", &self.conns_per_shard)
            .field("connect_timeout", &self.connect_timeout)
            .field("request_timeout", &self.request_timeout)
            .field("down_backoff", &self.down_backoff)
            .field("tracer", &self.tracer.as_ref().map(|_| "<tracer>"))
            .finish_non_exhaustive()
    }
}

impl RouterConfig {
    /// A config for `endpoints` with all other knobs at their defaults.
    pub fn for_endpoints(endpoints: Vec<String>) -> Self {
        RouterConfig {
            endpoints,
            ..RouterConfig::default()
        }
    }
}

/// One pipelined connection: writes go through a mutex-guarded stream,
/// a reader thread routes responses to per-request channels by id.
struct Conn {
    writer: Mutex<TcpStream>,
    shared: Arc<ConnShared>,
}

struct ConnShared {
    pending: Mutex<HashMap<u64, Sender<Frame>>>,
    alive: AtomicBool,
}

impl Conn {
    fn connect(addr: &SocketAddr, connect_timeout: Duration) -> std::io::Result<Arc<Conn>> {
        let stream = TcpStream::connect_timeout(addr, connect_timeout)?;
        let _ = stream.set_nodelay(true);
        let read_stream = stream.try_clone()?;
        let shared = Arc::new(ConnShared {
            pending: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        let reader_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("prionn-router-reader".to_string())
            .spawn(move || {
                let mut r = read_stream;
                // Clean close, truncation, corruption: either way the
                // connection is done once frames stop. Dropping the
                // pending senders wakes every waiter with Disconnected.
                while let Ok(Some(frame)) = read_frame(&mut r, MAX_FRAME_PAYLOAD) {
                    let waiter = reader_shared.pending.lock().remove(&frame.id);
                    if let Some(tx) = waiter {
                        let _ = tx.send(frame);
                    }
                }
                reader_shared.alive.store(false, Ordering::SeqCst);
                reader_shared.pending.lock().clear();
            })?;
        Ok(Arc::new(Conn {
            writer: Mutex::new(stream),
            shared,
        }))
    }

    fn is_alive(&self) -> bool {
        self.shared.alive.load(Ordering::SeqCst)
    }

    /// Send one frame and wait for the response with the same id.
    fn request(
        &self,
        kind: u8,
        id: u64,
        payload: &[u8],
        timeout: Duration,
    ) -> Result<Frame, ConnFailure> {
        if !self.is_alive() {
            return Err(ConnFailure::Closed);
        }
        let (tx, rx) = bounded::<Frame>(1);
        self.shared.pending.lock().insert(id, tx);
        let bytes = encode_frame(kind, id, payload);
        {
            let mut w = self.writer.lock();
            if w.write_all(&bytes).is_err() {
                self.shared.pending.lock().remove(&id);
                self.shared.alive.store(false, Ordering::SeqCst);
                return Err(ConnFailure::Closed);
            }
        }
        match rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => {
                self.shared.pending.lock().remove(&id);
                Err(ConnFailure::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ConnFailure::Closed),
        }
    }
}

enum ConnFailure {
    Closed,
    Timeout,
}

impl ConnFailure {
    fn describe(&self, shard: usize) -> String {
        match self {
            ConnFailure::Closed => format!("shard {shard}: connection closed"),
            ConnFailure::Timeout => format!("shard {shard}: response timeout"),
        }
    }
}

struct ShardState {
    endpoint: Mutex<String>,
    conns: Mutex<Vec<Arc<Conn>>>,
    rr: AtomicUsize,
    down_until: Mutex<Option<Instant>>,
    up: Gauge,
    /// Requests this shard ultimately served, failovers included — the
    /// per-shard attribution the federated view aggregates.
    served: Counter,
}

struct RouterMetrics {
    requests: Counter,
    latency: Histogram,
    failovers: Counter,
    reconnects: Counter,
    /// Indexed so `shed[code as usize]` works; slot 0 unused.
    shed: Vec<Counter>,
    shed_unavailable: Counter,
}

impl RouterMetrics {
    fn build(t: &Telemetry) -> Self {
        let codes = [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ShedPreBurst,
            ErrorCode::Stopped,
            ErrorCode::Model,
            ErrorCode::Draining,
            ErrorCode::BadRequest,
            ErrorCode::TooLarge,
        ];
        let mut shed = vec![t.counter_with(
            "fleet_shed_total",
            "Requests answered with a typed shed, by reason",
            &[("reason", "unknown")],
        )];
        for code in codes {
            shed.push(t.counter_with(
                "fleet_shed_total",
                "Requests answered with a typed shed, by reason",
                &[("reason", code.label())],
            ));
        }
        RouterMetrics {
            requests: t.counter("fleet_requests_total", "Predict requests routed"),
            latency: t.histogram(
                "fleet_request_seconds",
                "End-to-end fleet request latency (seconds)",
            ),
            failovers: t.counter(
                "fleet_failover_total",
                "Requests that moved past an unavailable shard",
            ),
            reconnects: t.counter(
                "fleet_reconnects_total",
                "New TCP connections dialed to shards",
            ),
            shed,
            shed_unavailable: t.counter_with(
                "fleet_shed_total",
                "Requests answered with a typed shed, by reason",
                &[("reason", "unavailable")],
            ),
        }
    }

    fn count_shed(&self, code: ErrorCode) {
        self.shed[code as usize].inc();
    }
}

/// The fleet client: consistent-hash routing, pooled pipelined
/// connections, typed shed, ring-ordered failover.
pub struct Router {
    ring: HashRing,
    shards: Vec<ShardState>,
    cfg: RouterConfig,
    telemetry: Telemetry,
    tracer: Tracer,
    next_id: AtomicU64,
    metrics: RouterMetrics,
}

impl Router {
    /// Build a router over `cfg.endpoints`. Does not dial anything yet —
    /// connections are established lazily on first use per shard.
    pub fn new(cfg: RouterConfig) -> Router {
        let names: Vec<String> = match &cfg.shard_names {
            Some(names) => names.clone(),
            None => (0..cfg.endpoints.len())
                .map(|i| format!("shard-{i}"))
                .collect(),
        };
        assert_eq!(
            names.len(),
            cfg.endpoints.len(),
            "shard_names must match endpoints one-to-one"
        );
        let telemetry = cfg.telemetry.clone().unwrap_or_default();
        let metrics = RouterMetrics::build(&telemetry);
        let shards = cfg
            .endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| ShardState {
                endpoint: Mutex::new(ep.clone()),
                conns: Mutex::new(Vec::new()),
                rr: AtomicUsize::new(0),
                down_until: Mutex::new(None),
                up: telemetry.gauge_with(
                    "fleet_shard_up",
                    "1 while the router considers the shard reachable",
                    &[("shard", &i.to_string())],
                ),
                served: telemetry.counter_with(
                    "fleet_served_total",
                    "Requests served, by the shard that ultimately answered",
                    &[("shard", &i.to_string())],
                ),
            })
            .collect();
        let ring = HashRing::new(&names, cfg.vnodes);
        let tracer = cfg.tracer.clone().unwrap_or_default();
        Router {
            ring,
            shards,
            cfg,
            telemetry,
            tracer,
            next_id: AtomicU64::new(1),
            metrics,
        }
    }

    /// The registry holding this router's `fleet_*` metrics.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a user id maps to while all shards are healthy.
    pub fn route(&self, user: u64) -> Option<usize> {
        self.ring.owner(user)
    }

    /// Predict with default priority and no deadline.
    pub fn predict(&self, user: u64, scripts: &[String]) -> Result<FleetReply, FleetError> {
        self.predict_for_user(user, scripts, None, Priority::Normal)
    }

    /// Route a predict request for `user`, failing over along the ring on
    /// unavailability and returning typed errors on shed.
    pub fn predict_for_user(
        &self,
        user: u64,
        scripts: &[String],
        deadline: Option<Duration>,
        priority: Priority,
    ) -> Result<FleetReply, FleetError> {
        if self.shards.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        self.metrics.requests.inc();
        let started = Instant::now();
        let deadline_ms = deadline.map_or(0, |d| d.as_millis().min(u32::MAX as u128) as u32);
        let payload = encode_predict(priority, deadline_ms, scripts);
        // Waiting for a response should outlast the in-shard deadline;
        // otherwise the shard's typed DeadlineExceeded never reaches us.
        let timeout = match deadline {
            Some(d) => self.cfg.request_timeout.max(d + Duration::from_millis(500)),
            None => self.cfg.request_timeout,
        };

        // Client-side trace root: one `hop` child per shard tried. The
        // hop span's context rides the wire so the shard's Gateway tree
        // parents under it — one stitched fleet-wide trace.
        let mut root = self.tracer.root("fleet_predict");
        if root.is_recording() {
            root.set_detail(format!("user={user} scripts={}", scripts.len()));
        }
        let mut attempts = 0usize;
        let mut last = String::from("no shard tried");
        let mut failed_over = false;
        for shard in self.ring.owners(user) {
            let mut hop = root.child("hop");
            let trace = hop.is_recording().then(|| TraceContext {
                trace_id: hop.ctx().trace_id,
                parent_span_id: hop.ctx().span_id,
                hop: attempts.min(u8::MAX as usize) as u8,
            });
            attempts += 1;
            match self.try_predict_on(shard, &payload, timeout, trace) {
                Ok((epoch, predictions)) => {
                    if failed_over {
                        self.metrics.failovers.inc();
                    }
                    self.shards[shard].served.inc();
                    if hop.is_recording() {
                        hop.set_detail(format!("shard={shard} served"));
                        root.set_detail(format!(
                            "user={user} scripts={} served_by={shard}",
                            scripts.len()
                        ));
                    }
                    self.metrics
                        .latency
                        .observe(started.elapsed().as_secs_f64());
                    return Ok(FleetReply {
                        predictions,
                        epoch,
                        shard,
                    });
                }
                Err(TryError::Reject(code, message)) => {
                    self.metrics.count_shed(code);
                    if hop.is_recording() {
                        hop.set_detail(format!("shard={shard} reject={code}"));
                    }
                    self.metrics
                        .latency
                        .observe(started.elapsed().as_secs_f64());
                    return Err(FleetError::Rejected {
                        shard,
                        code,
                        message,
                    });
                }
                Err(TryError::Failover(reason)) => {
                    if hop.is_recording() {
                        hop.set_detail(format!("shard={shard} failover: {reason}"));
                    }
                    last = reason;
                    failed_over = true;
                }
            }
        }
        self.metrics.shed_unavailable.inc();
        if root.is_recording() {
            root.set_detail(format!("user={user} unavailable after {attempts} attempts"));
        }
        self.metrics
            .latency
            .observe(started.elapsed().as_secs_f64());
        Err(FleetError::Unavailable { attempts, last })
    }

    fn try_predict_on(
        &self,
        shard: usize,
        payload: &[u8],
        timeout: Duration,
        trace: Option<TraceContext>,
    ) -> Result<(u64, Vec<ResourcePrediction>), TryError> {
        let conn = self.conn_for(shard).map_err(TryError::Failover)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let framed;
        let (kind, bytes): (u8, &[u8]) = match &trace {
            Some(ctx) => {
                framed = encode_with_trace(ctx, payload);
                (KIND_PREDICT | KIND_TRACE_FLAG, &framed)
            }
            None => (KIND_PREDICT, payload),
        };
        let frame = match conn.request(kind, id, bytes, timeout) {
            Ok(f) => f,
            Err(fail) => {
                if matches!(fail, ConnFailure::Closed) {
                    self.mark_down(shard);
                }
                return Err(TryError::Failover(fail.describe(shard)));
            }
        };
        match frame.kind {
            KIND_PREDICTIONS => match decode_predictions(&frame.payload) {
                Ok(ok) => Ok(ok),
                Err(e) => Err(TryError::Failover(format!(
                    "shard {shard}: bad predictions payload: {e}"
                ))),
            },
            KIND_ERROR => match decode_error(&frame.payload) {
                // Availability errors walk the ring; load/validity errors
                // surface typed.
                Ok((ErrorCode::Draining, msg)) => {
                    self.metrics.count_shed(ErrorCode::Draining);
                    Err(TryError::Failover(format!("shard {shard} draining: {msg}")))
                }
                Ok((ErrorCode::Stopped, msg)) => {
                    self.metrics.count_shed(ErrorCode::Stopped);
                    Err(TryError::Failover(format!("shard {shard} stopped: {msg}")))
                }
                Ok((code, msg)) => Err(TryError::Reject(code, msg)),
                Err(e) => Err(TryError::Failover(format!(
                    "shard {shard}: bad error payload: {e}"
                ))),
            },
            other => Err(TryError::Failover(format!(
                "shard {shard}: unexpected frame kind {other}"
            ))),
        }
    }

    /// Route an in-flight revision request, hashing on the job id so a
    /// job's revisions land on one shard (one drift window calibrates
    /// all of its intervals). Fails over along the ring like predicts;
    /// typed refusals surface unchanged.
    pub fn revise(&self, req: &ReviseRequest) -> Result<FleetRevision, FleetError> {
        if self.shards.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        self.metrics.requests.inc();
        let started = Instant::now();
        let payload = encode_revise(req);
        let mut attempts = 0usize;
        let mut last = String::from("no shard tried");
        let mut failed_over = false;
        for shard in self.ring.owners(req.obs.job_id) {
            attempts += 1;
            match self.try_revise_on(shard, &payload) {
                Ok(revision) => {
                    if failed_over {
                        self.metrics.failovers.inc();
                    }
                    self.shards[shard].served.inc();
                    self.metrics
                        .latency
                        .observe(started.elapsed().as_secs_f64());
                    return Ok(FleetRevision { revision, shard });
                }
                Err(TryError::Reject(code, message)) => {
                    self.metrics.count_shed(code);
                    self.metrics
                        .latency
                        .observe(started.elapsed().as_secs_f64());
                    return Err(FleetError::Rejected {
                        shard,
                        code,
                        message,
                    });
                }
                Err(TryError::Failover(reason)) => {
                    last = reason;
                    failed_over = true;
                }
            }
        }
        self.metrics.shed_unavailable.inc();
        self.metrics
            .latency
            .observe(started.elapsed().as_secs_f64());
        Err(FleetError::Unavailable { attempts, last })
    }

    fn try_revise_on(&self, shard: usize, payload: &[u8]) -> Result<RevisionReply, TryError> {
        let conn = self.conn_for(shard).map_err(TryError::Failover)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = match conn.request(KIND_REVISE, id, payload, self.cfg.request_timeout) {
            Ok(f) => f,
            Err(fail) => {
                if matches!(fail, ConnFailure::Closed) {
                    self.mark_down(shard);
                }
                return Err(TryError::Failover(fail.describe(shard)));
            }
        };
        match frame.kind {
            KIND_REVISION => decode_revision(&frame.payload).map_err(|e| {
                TryError::Failover(format!("shard {shard}: bad revision payload: {e}"))
            }),
            KIND_ERROR => match decode_error(&frame.payload) {
                Ok((ErrorCode::Stopped, msg)) => {
                    self.metrics.count_shed(ErrorCode::Stopped);
                    Err(TryError::Failover(format!("shard {shard} stopped: {msg}")))
                }
                Ok((code, msg)) => Err(TryError::Reject(code, msg)),
                Err(e) => Err(TryError::Failover(format!(
                    "shard {shard}: bad error payload: {e}"
                ))),
            },
            other => Err(TryError::Failover(format!(
                "shard {shard}: unexpected frame kind {other}"
            ))),
        }
    }

    /// Liveness probe: true when the shard answers a ping in time.
    pub fn ping(&self, shard: usize) -> bool {
        matches!(
            self.admin_request(shard, KIND_PING, &[], self.cfg.request_timeout),
            Ok(f) if f.kind == KIND_PONG
        )
    }

    /// Fetch a shard's health snapshot.
    pub fn shard_stats(&self, shard: usize) -> Result<ShardStats, String> {
        let frame = self.admin_request(shard, KIND_STATS, &[], self.cfg.request_timeout)?;
        match frame.kind {
            KIND_STATS_REPLY => decode_stats(&frame.payload).map_err(|e| e.to_string()),
            KIND_ERROR => Err(describe_error_frame(&frame)),
            other => Err(format!("unexpected frame kind {other}")),
        }
    }

    /// Tell a shard to drain: it answers new predicts with a typed
    /// Draining error and finishes in-flight work.
    pub fn drain_shard(&self, shard: usize) -> Result<(), String> {
        let frame = self.admin_request(shard, KIND_DRAIN, &[], self.cfg.request_timeout)?;
        match frame.kind {
            KIND_DRAIN_ACK => Ok(()),
            KIND_ERROR => Err(describe_error_frame(&frame)),
            other => Err(format!("unexpected frame kind {other}")),
        }
    }

    /// Push checkpoint bytes to one shard's weight bus; returns the epoch
    /// the shard assigned. `timeout` should be generous — the shard
    /// verifies section CRCs and deserialises the model before acking.
    pub fn swap_weights(
        &self,
        shard: usize,
        checkpoint_bytes: &[u8],
        timeout: Duration,
    ) -> Result<u64, String> {
        let frame = self.admin_request(shard, KIND_SWAP_WEIGHTS, checkpoint_bytes, timeout)?;
        match frame.kind {
            KIND_SWAP_ACK => decode_swap_ack(&frame.payload).map_err(|e| e.to_string()),
            KIND_ERROR => Err(describe_error_frame(&frame)),
            other => Err(format!("unexpected frame kind {other}")),
        }
    }

    /// Point a shard slot at a new address (a replacement process) and
    /// clear its down state. The ring layout is untouched — the slot
    /// keeps its name, so users keep their assignment.
    pub fn set_endpoint(&self, shard: usize, endpoint: &str) {
        let state = &self.shards[shard];
        *state.endpoint.lock() = endpoint.to_string();
        state.conns.lock().clear();
        *state.down_until.lock() = None;
    }

    /// Forget a shard's backoff so the next request re-dials immediately
    /// (used after a known recovery instead of waiting out the backoff).
    pub fn mark_up(&self, shard: usize) {
        *self.shards[shard].down_until.lock() = None;
    }

    fn mark_down(&self, shard: usize) {
        let state = &self.shards[shard];
        state.conns.lock().retain(|c| c.is_alive());
        if state.conns.lock().is_empty() {
            *state.down_until.lock() = Some(Instant::now() + self.cfg.down_backoff);
            state.up.set(0.0);
        }
    }

    fn admin_request(
        &self,
        shard: usize,
        kind: u8,
        payload: &[u8],
        timeout: Duration,
    ) -> Result<Frame, String> {
        let conn = self.conn_for(shard)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        conn.request(kind, id, payload, timeout).map_err(|fail| {
            if matches!(fail, ConnFailure::Closed) {
                self.mark_down(shard);
            }
            fail.describe(shard)
        })
    }

    /// Round-robin a live connection for a shard, dialing up to the pool
    /// size. Returns a failover reason when the shard is in backoff or
    /// unreachable.
    fn conn_for(&self, shard: usize) -> Result<Arc<Conn>, String> {
        let state = &self.shards[shard];
        if let Some(until) = *state.down_until.lock() {
            if Instant::now() < until {
                return Err(format!("shard {shard} in down backoff"));
            }
        }
        {
            let mut conns = state.conns.lock();
            conns.retain(|c| c.is_alive());
            if conns.len() >= self.cfg.conns_per_shard.max(1) {
                let i = state.rr.fetch_add(1, Ordering::Relaxed) % conns.len();
                return Ok(Arc::clone(&conns[i]));
            }
        }
        let endpoint = state.endpoint.lock().clone();
        let addr =
            resolve(&endpoint).ok_or_else(|| format!("shard {shard}: bad endpoint {endpoint}"))?;
        match Conn::connect(&addr, self.cfg.connect_timeout) {
            Ok(conn) => {
                self.metrics.reconnects.inc();
                state.up.set(1.0);
                *state.down_until.lock() = None;
                state.conns.lock().push(Arc::clone(&conn));
                Ok(conn)
            }
            Err(e) => {
                let mut conns = state.conns.lock();
                conns.retain(|c| c.is_alive());
                if let Some(c) = conns.first() {
                    // Dial failed but an older connection still lives —
                    // keep using it rather than declaring the shard down.
                    return Ok(Arc::clone(c));
                }
                drop(conns);
                *state.down_until.lock() = Some(Instant::now() + self.cfg.down_backoff);
                state.up.set(0.0);
                Err(format!("shard {shard}: connect {endpoint} failed: {e}"))
            }
        }
    }
}

enum TryError {
    /// Typed refusal from a live shard — return to caller.
    Reject(ErrorCode, String),
    /// Availability failure — try the next shard in ring order.
    Failover(String),
}

fn describe_error_frame(frame: &Frame) -> String {
    match decode_error(&frame.payload) {
        Ok((code, msg)) => format!("{code}: {msg}"),
        Err(e) => format!("undecodable error frame: {e}"),
    }
}

fn resolve(endpoint: &str) -> Option<SocketAddr> {
    endpoint.to_socket_addrs().ok()?.next()
}
