//! End-to-end gateway tests: fused batching correctness, atomic hot-swap
//! under fire, background retrain with the latest-wins queue, and the
//! Prometheus metric surface.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use prionn_core::{Prionn, PrionnConfig, TrainingBatch};
use prionn_serve::{Gateway, GatewayConfig, ServeError};
use prionn_telemetry::Telemetry;

fn tiny_cfg() -> PrionnConfig {
    PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 8,
        io_bins: 4,
        epochs: 2,
        batch_size: 32,
        lr: 3e-3,
        ..Default::default()
    }
}

/// Two visually distinct script families (the paper's whole-script inputs).
fn corpus() -> Vec<String> {
    let mut scripts = Vec::new();
    for i in 0..8 {
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 2\nsrun ./short_app run{i}\n"
        ));
        scripts.push(format!(
            "#!/bin/bash\n#SBATCH -N 64\nmodule load big\nsrun ./long_app case{i}\nsync\n"
        ));
    }
    scripts
}

fn trained_model(rounds: usize) -> Prionn {
    let scripts = corpus();
    let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
    let mut model = Prionn::new(tiny_cfg(), &refs).unwrap();
    let runtimes: Vec<f64> = (0..refs.len())
        .map(|i| if i % 2 == 0 { 100.0 } else { 800.0 })
        .collect();
    let reads: Vec<f64> = (0..refs.len())
        .map(|i| if i % 2 == 0 { 1e7 } else { 1e12 })
        .collect();
    let writes = reads.clone();
    for _ in 0..rounds {
        model.retrain(&refs, &runtimes, &reads, &writes).unwrap();
    }
    model
}

fn retrain_batch(flip: bool) -> TrainingBatch {
    let scripts = corpus();
    let n = scripts.len();
    let hi = if flip { 100.0 } else { 800.0 };
    let lo = if flip { 800.0 } else { 100.0 };
    TrainingBatch {
        scripts,
        runtime_minutes: (0..n).map(|i| if i % 2 == 0 { lo } else { hi }).collect(),
        read_bytes: vec![1e9; n],
        write_bytes: vec![1e9; n],
    }
}

/// Micro-batched answers must be bit-identical to serial, batch-1 answers
/// from an equivalent model: fusion is a latency/throughput optimisation,
/// never a numerical one. Eight concurrent clients hammer one replica so
/// requests genuinely coalesce.
#[test]
fn fused_batches_match_serial_predictions_bitwise() {
    let model = trained_model(2);
    let mut reference = model.fork_replica().unwrap();
    let scripts = corpus();
    let gw = Gateway::spawn(
        model,
        GatewayConfig {
            replicas: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    let expected: Vec<_> = scripts
        .iter()
        .map(|s| reference.predict(&[s.as_str()]).unwrap()[0])
        .collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|c| {
                let gw = &gw;
                let scripts = &scripts;
                s.spawn(move || {
                    let mut got = Vec::new();
                    for round in 0..4 {
                        let idx = (c + round * 3) % scripts.len();
                        let reply = gw
                            .predict_detailed(std::slice::from_ref(&scripts[idx]), None)
                            .unwrap();
                        assert_eq!(reply.epoch, 0, "no swap was ever published");
                        got.push((idx, reply.predictions[0]));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (idx, pred) in h.join().unwrap() {
                assert_eq!(
                    pred, expected[idx],
                    "fused prediction for script {idx} diverged from serial"
                );
            }
        }
    });

    let stats = gw.stats();
    assert_eq!(stats.requests_admitted.load(Ordering::SeqCst), 32);
    assert_eq!(stats.scripts_predicted.load(Ordering::SeqCst), 32);
    // With one replica and eight concurrent clients at least some requests
    // must have coalesced into shared forward passes.
    assert!(
        stats.batches_served.load(Ordering::SeqCst) <= 32,
        "batch accounting broken"
    );
    gw.shutdown();
}

/// The acceptance-criteria torn-model test: clients hammer the gateway
/// while weights are hot-swapped back and forth between two differently
/// trained models. Every reply must be bitwise-identical to one model or
/// the other — a half-applied swap would produce predictions matching
/// neither — and the reply's epoch tag must identify which one.
#[test]
fn hot_swap_never_exposes_a_torn_model() {
    let model_a = trained_model(2);
    let mut a_copy = model_a.fork_replica().unwrap();
    // Model B: same architecture, visibly different weights (trained
    // further with inverted targets).
    let mut model_b = model_a.fork_replica().unwrap();
    {
        let batch = retrain_batch(true);
        let refs: Vec<&str> = batch.scripts.iter().map(|s| s.as_str()).collect();
        for _ in 0..2 {
            model_b
                .retrain(
                    &refs,
                    &batch.runtime_minutes,
                    &batch.read_bytes,
                    &batch.write_bytes,
                )
                .unwrap();
        }
    }

    let scripts = corpus();
    let probe = vec![scripts[0].clone(), scripts[1].clone()];
    let probe_refs: Vec<&str> = probe.iter().map(|s| s.as_str()).collect();
    let ref_a = a_copy.predict(&probe_refs).unwrap();
    let ref_b = model_b.predict(&probe_refs).unwrap();
    assert_ne!(ref_a, ref_b, "models must be distinguishable for this test");

    let gw = Gateway::spawn(
        model_a,
        GatewayConfig {
            replicas: 2,
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    std::thread::scope(|s| {
        let clients: Vec<_> = (0..3)
            .map(|_| {
                let gw = &gw;
                let probe = &probe;
                let ref_a = &ref_a;
                let ref_b = &ref_b;
                s.spawn(move || {
                    for _ in 0..40 {
                        let reply = gw.predict_detailed(probe, None).unwrap();
                        // Swaps alternate B (odd epochs) and A (even
                        // epochs); epoch 0 is the spawn weights, i.e. A.
                        let want = if reply.epoch % 2 == 1 { ref_b } else { ref_a };
                        assert_eq!(
                            &reply.predictions, want,
                            "torn or mislabelled model at epoch {}",
                            reply.epoch
                        );
                    }
                })
            })
            .collect();

        // Swap while the clients are in flight.
        for _ in 0..10 {
            gw.hot_swap(&model_b).unwrap();
            std::thread::sleep(Duration::from_millis(2));
            gw.hot_swap(&a_copy).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        for c in clients {
            c.join().unwrap();
        }
    });

    assert_eq!(gw.epoch(), 20);
    assert!(
        gw.stats().swaps_applied.load(Ordering::SeqCst) > 0,
        "no replica ever applied a swap — the test exercised nothing"
    );
    assert!(gw.last_error().is_none(), "{:?}", gw.last_error());
    gw.shutdown();
}

/// Background retrains go through the latest-wins bounded queue, publish a
/// fresh epoch on success, and replicas pick the new weights up before
/// their next batch.
#[test]
fn background_retrain_publishes_and_replicas_catch_up() {
    let gw = Gateway::spawn(
        trained_model(1),
        GatewayConfig {
            replicas: 1,
            retrain_queue_cap: 1,
            max_wait: Duration::from_micros(200),
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    // Flood the depth-1 queue: the latest-wins policy must drop some
    // batches and account for every one of them.
    for i in 0..3 {
        gw.retrain_async(retrain_batch(i % 2 == 0));
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while gw.stats().retrains_pending.load(Ordering::SeqCst) > 0 {
        assert!(Instant::now() < deadline, "trainer never drained the queue");
        std::thread::sleep(Duration::from_millis(5));
    }

    let done = gw.stats().retrains_done.load(Ordering::SeqCst);
    let dropped = gw.stats().retrains_dropped.load(Ordering::SeqCst);
    assert_eq!(done + dropped, 3, "done={done} dropped={dropped}");
    assert!(done >= 1 && dropped >= 1, "done={done} dropped={dropped}");
    assert_eq!(gw.epoch() as usize, done, "one epoch per completed retrain");

    // The next prediction must already run on the retrained weights.
    let scripts = corpus();
    let reply = gw.predict_detailed(&scripts[..1], None).unwrap();
    assert_eq!(reply.epoch as usize, done);
    assert!(gw.last_error().is_none(), "{:?}", gw.last_error());
    gw.shutdown();
}

/// A hot-swap whose architecture does not match is rejected whole: the
/// replica keeps serving its spawn weights and reports the rejection.
#[test]
fn mismatched_hot_swap_is_rejected_not_applied() {
    let model = trained_model(1);
    let mut reference = model.fork_replica().unwrap();
    let scripts = corpus();
    let expected = reference
        .predict(&[scripts[0].as_str(), scripts[1].as_str()])
        .unwrap();

    // A donor with a different architecture (wider model).
    let donor = {
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let cfg = PrionnConfig {
            base_width: 4,
            ..tiny_cfg()
        };
        Prionn::new(cfg, &refs).unwrap()
    };

    let gw = Gateway::spawn(
        model,
        GatewayConfig {
            replicas: 1,
            max_wait: Duration::from_micros(200),
            ..GatewayConfig::default()
        },
    )
    .unwrap();
    let epoch = gw.hot_swap(&donor).unwrap();
    assert_eq!(epoch, 1);

    let reply = gw.predict_detailed(&scripts[..2], None).unwrap();
    // The swap was rejected: epoch stays at the spawn weights and the
    // predictions are untouched.
    assert_eq!(reply.epoch, 0);
    assert_eq!(reply.predictions, expected);
    let err = gw.last_error().expect("rejection must be reported");
    assert!(err.contains("hot-swap rejected"), "{err}");
    assert_eq!(gw.stats().swaps_applied.load(Ordering::SeqCst), 0);
    gw.shutdown();
}

/// Request-scoped tracing across micro-batch fusion: N concurrent predicts
/// coalesced into shared forward passes must each yield a complete span
/// tree (admission → queued → fused) under a *distinct* trace id, with the
/// shared fused-forward span linked from every participating request.
#[test]
fn concurrent_fused_predictions_carry_complete_linked_span_trees() {
    use prionn_observe::{FlightConfig, FlightRecorder, Tracer};

    let rec = FlightRecorder::new(FlightConfig::default());
    let tracer = Tracer::new(&rec);
    let scripts = corpus();
    const CLIENTS: usize = 4;
    let gw = Gateway::spawn(
        trained_model(1),
        GatewayConfig {
            replicas: 1,
            max_batch: CLIENTS,
            // A generous linger so concurrently submitted requests reliably
            // coalesce into one fused batch.
            max_wait: Duration::from_millis(50),
            tracer: Some(tracer.clone()),
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let gw = &gw;
                let scripts = &scripts;
                s.spawn(move || gw.predict_detailed(std::slice::from_ref(&scripts[c]), None))
            })
            .collect();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    });
    gw.shutdown();

    let spans = rec.snapshot();
    let roots: Vec<_> = spans.iter().filter(|s| s.name == "predict").collect();
    assert_eq!(roots.len(), CLIENTS, "one root span per request");
    let mut trace_ids: Vec<u64> = roots.iter().map(|r| r.trace_id).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();
    assert_eq!(trace_ids.len(), CLIENTS, "trace ids must be distinct");

    // Every request's tree is complete: admission, queue wait, and the
    // fused stage all recorded under the caller's trace.
    let mut fused_targets: Vec<u64> = Vec::new();
    for root in &roots {
        for stage in ["admission", "queued", "fused"] {
            let span = spans
                .iter()
                .find(|s| s.trace_id == root.trace_id && s.name == stage)
                .unwrap_or_else(|| panic!("missing `{stage}` span in trace {}", root.trace_id));
            assert_eq!(span.parent_id, root.span_id, "`{stage}` hangs off the root");
            if stage == "fused" {
                assert_eq!(span.links.len(), 1, "fused stage links the shared batch");
                fused_targets.push(span.links[0].span_id);
            }
        }
    }
    // At least two requests must have coalesced into the *same* fused
    // forward pass — their link targets coincide.
    fused_targets.sort_unstable();
    let distinct_batches = {
        let mut t = fused_targets.clone();
        t.dedup();
        t.len()
    };
    assert!(
        distinct_batches < CLIENTS,
        "no coalescing observed: {fused_targets:?}"
    );

    // The fused forward passes are their own traces, linking back to every
    // participating caller, with per-layer spans nested beneath them.
    let fused_roots: Vec<_> = spans.iter().filter(|s| s.name == "fused_forward").collect();
    assert!(!fused_roots.is_empty());
    let linked_callers: usize = fused_roots.iter().map(|f| f.links.len()).sum();
    assert_eq!(linked_callers, CLIENTS, "every caller linked from a batch");
    for f in &fused_roots {
        for link in &f.links {
            assert!(
                trace_ids.binary_search(&link.trace_id).is_ok(),
                "fused_forward links an unknown trace"
            );
        }
        assert!(
            spans
                .iter()
                .any(|s| s.trace_id == f.trace_id && s.name.starts_with("layer:")),
            "no per-layer spans under fused_forward"
        );
    }
}

/// The gateway's metric surface: every serve_* series must appear in the
/// Prometheus text export with the documented names and labels.
#[test]
fn prometheus_export_carries_the_serve_metric_surface() {
    let telemetry = Telemetry::new();
    let gw = Gateway::spawn(
        trained_model(1),
        GatewayConfig {
            replicas: 1,
            queue_cap: 1,
            max_wait: Duration::from_micros(200),
            telemetry: Some(telemetry.clone()),
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    let scripts = corpus();
    gw.predict(&scripts[..2]).unwrap();
    gw.retrain_async(retrain_batch(false));
    let deadline = Instant::now() + Duration::from_secs(60);
    while gw.stats().retrains_pending.load(Ordering::SeqCst) > 0 {
        assert!(Instant::now() < deadline, "trainer never drained the queue");
        std::thread::sleep(Duration::from_millis(5));
    }
    // One shed via an already-expired deadline.
    let err = gw
        .predict_with_deadline(&scripts[..1], Duration::ZERO)
        .unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded);

    let text = gw.telemetry().prometheus();
    for series in [
        "# TYPE serve_predict_seconds histogram",
        "# TYPE serve_queue_wait_seconds histogram",
        "# TYPE serve_batch_scripts histogram",
        "# TYPE serve_retrain_seconds histogram",
        "# TYPE serve_requests_total counter",
        "# TYPE serve_batches_total counter",
        "# TYPE serve_shed_total counter",
        "# TYPE serve_retrains_dropped_total counter",
        "# TYPE serve_replica_panics_total counter",
        "# TYPE serve_swaps_applied_total counter",
        "# TYPE serve_queue_depth gauge",
        "# TYPE serve_swap_epoch gauge",
        "# TYPE serve_retrain_queue_depth gauge",
        r#"serve_shed_total{reason="overloaded"} 0"#,
        r#"serve_shed_total{reason="deadline"} 1"#,
        r#"serve_swaps_applied_total{replica="0"}"#,
        "serve_predict_seconds_bucket",
        "serve_batch_scripts_sum",
        "serve_swap_epoch 1",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }
    // The shared registry also carries the model-level metrics, proving
    // the replicas report into the same export.
    assert!(text.contains("prionn_predict_seconds"), "{text}");
    gw.shutdown();
}
