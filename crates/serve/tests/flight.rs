//! Flight-recorder crash forensics: a replica panic (contained by the
//! gateway's catch_unwind) must leave a parseable `flight-*.json` dump on
//! disk carrying the panicking request's trace.
//!
//! Kept in its own integration binary: `install_panic_hook` chains a
//! process-global hook, which must not interfere with other tests' panics.

use std::time::Duration;

use prionn_core::{Prionn, PrionnConfig};
use prionn_observe::{FlightConfig, FlightRecorder, Tracer};
use prionn_serve::{Gateway, GatewayConfig, ServeError};

fn tiny_model() -> Prionn {
    let cfg = PrionnConfig {
        grid: (16, 16),
        base_width: 2,
        runtime_bins: 8,
        io_bins: 4,
        epochs: 2,
        batch_size: 32,
        ..Default::default()
    };
    let corpus = ["#!/bin/bash\nsrun ./app\n"];
    Prionn::new(cfg, &corpus).unwrap()
}

#[test]
fn replica_panic_dumps_a_parseable_flight_recording_with_the_dying_trace() {
    let dump_dir = std::env::temp_dir().join(format!("prionn-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);

    let rec = FlightRecorder::new(FlightConfig::default());
    rec.set_dump_dir(&dump_dir);
    rec.install_panic_hook();
    let tracer = Tracer::new(&rec);

    let gw = Gateway::spawn(
        tiny_model(),
        GatewayConfig {
            replicas: 1,
            max_wait: Duration::from_micros(100),
            tracer: Some(tracer),
            test_panic_marker: true,
            ..GatewayConfig::default()
        },
    )
    .unwrap();

    // The reserved marker script kills the replica mid-batch; the caller's
    // reply channel dies with it. The panic hook runs before the unwind is
    // contained, so the dump is on disk by the time the error surfaces.
    let err = gw
        .predict(&["__serve_test_panic__".to_string()])
        .unwrap_err();
    assert_eq!(err, ServeError::Stopped);
    assert_eq!(rec.dumps_written(), 1, "panic hook wrote exactly one dump");

    let dump_path = std::fs::read_dir(&dump_dir)
        .expect("dump dir created")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .expect("no flight-*.json written");

    let text = std::fs::read_to_string(&dump_path).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("dump must be valid JSON");
    let field = |v: &serde_json::Value, k: &str| -> serde_json::Value {
        v.get(k).unwrap_or_else(|| panic!("missing `{k}`")).clone()
    };
    let reason = field(&doc, "reason").as_str().unwrap().to_string();
    assert!(reason.contains("panic"), "{reason}");
    assert!(reason.contains("injected replica panic"), "{reason}");

    // Flatten every thread's spans and find the dying batch: the
    // `batch_assembled` marker is recorded immediately (not on scope exit),
    // so it survives into the dump and its links name the request's trace.
    let spans: Vec<serde_json::Value> = field(&doc, "threads")
        .as_array()
        .unwrap()
        .iter()
        .flat_map(|t| field(t, "spans").as_array().unwrap().clone())
        .collect();
    let name_of = |s: &serde_json::Value| field(s, "name").as_str().unwrap().to_string();
    let assembled = spans
        .iter()
        .find(|s| name_of(s) == "batch_assembled")
        .expect("dump carries the dying batch's assembly marker");
    let linked_trace = field(
        &field(assembled, "links").as_array().unwrap()[0],
        "trace_id",
    )
    .as_u64()
    .unwrap();
    assert!(linked_trace > 0);
    // The panicking request's own spans (admission happened on the caller
    // thread before the crash) are in the dump under that same trace id.
    assert!(
        spans
            .iter()
            .any(|s| field(s, "trace_id").as_u64() == Some(linked_trace)
                && name_of(s) == "admission"),
        "panicking request's trace missing from the dump"
    );

    gw.shutdown();
    let _ = std::fs::remove_dir_all(&dump_dir);
}
