//! The gateway implementation: admission, replica workers, trainer thread.

use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use prionn_core::{Prionn, PrionnService, ResourcePrediction, TrainingBatch};
use prionn_observe::{trace, DriftHead, DriftMonitor, OutcomeStatus, Span, SpanCtx, Tracer};
use prionn_store::broadcast::WeightBus;
use prionn_store::Checkpoint;
use prionn_telemetry::{Counter, Gauge, Histogram, Telemetry};

/// Errors surfaced to gateway callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue was full; the request was shed at
    /// admission without queueing. Callers should back off and retry.
    Overloaded {
        /// Capacity of the request queue that rejected the request.
        queue_cap: usize,
    },
    /// The request sat in the queue past its deadline and was shed before
    /// a forward pass was spent on it.
    DeadlineExceeded,
    /// Shed by the pre-burst admission tightener: an IO burst is forecast
    /// (the configured [`PressureProbe`] returned true) and the request
    /// was either low-priority or beyond the tightened queue cap.
    ShedPreBurst,
    /// The gateway has shut down (or every replica died) before the
    /// request could be served.
    Stopped,
    /// The model itself failed on this batch (mapping or forward error).
    Model(String),
    /// The gateway could not be constructed.
    Spawn(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue_cap } => {
                write!(f, "gateway overloaded: request queue full ({queue_cap})")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded in queue"),
            ServeError::ShedPreBurst => {
                write!(
                    f,
                    "shed pre-emptively: IO burst forecast, admission tightened"
                )
            }
            ServeError::Stopped => write!(f, "gateway stopped"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Spawn(e) => write!(f, "gateway spawn failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Result alias for gateway operations.
pub type ServeResult<T> = Result<T, ServeError>;

/// Forecast pressure probe: returns true while an IO burst is forecast
/// within the lead horizon. A closure rather than a typed handle so the
/// gateway stays decoupled from `prionn-forecast` — wire
/// `ForecastEngine::pressure_probe()` in here.
pub type PressureProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// Request priority class for [`Gateway::predict_prioritized`].
///
/// Priorities only matter while the [`PressureProbe`] reports forecast
/// burst pressure: low-priority requests are shed outright and normal ones
/// face a tightened queue cap. Without pressure both classes are admitted
/// identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive / scheduler-critical work; admitted under pressure up
    /// to the tightened queue cap.
    #[default]
    Normal,
    /// Batch / speculative work; shed at admission while a burst is
    /// forecast.
    Low,
}

/// Numeric precision replica workers serve predictions at.
///
/// The trainer's master model always stays f32 — precision only affects
/// the forked replica copies. Int8 replicas quantize their dense-layer
/// weights at spawn (via `Prionn::set_quantized_inference`) and re-quantize
/// automatically on every weight hot-swap, so published f32 checkpoints
/// never serve through stale int8 codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision f32 inference (the default).
    #[default]
    F32,
    /// Int8 quantized inference: ~4× smaller dense weights per replica and
    /// an integer GEMM forward, at a small relative-accuracy cost (bounded
    /// at ≤ 0.01 mean delta by the core acceptance test).
    Int8,
}

/// Tuning knobs for [`Gateway::spawn`].
#[derive(Clone)]
pub struct GatewayConfig {
    /// Number of replica worker threads, each owning a private model copy.
    /// `0` is allowed (accept-and-queue only, useful for tests and staged
    /// start-up): requests queue until shed and are failed at shutdown.
    pub replicas: usize,
    /// Max scripts fused into one forward pass.
    pub max_batch: usize,
    /// How long a replica lingers for more requests after the first one
    /// arrives, before running a partial batch.
    pub max_wait: Duration,
    /// Bound on the shared request queue; admission control rejects
    /// requests beyond this with [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Deadline applied to every request that does not carry its own
    /// (via [`Gateway::predict_with_deadline`]). `None` means no deadline.
    pub default_deadline: Option<Duration>,
    /// Bound on the background retrain queue (latest-wins drop policy).
    pub retrain_queue_cap: usize,
    /// Metrics registry; a private one is created when `None`.
    pub telemetry: Option<Telemetry>,
    /// Span tracer; `None` disables request tracing (zero per-request
    /// cost beyond one branch per call site). Pass a
    /// [`Tracer`] backed by a flight recorder to get per-request span
    /// trees through admission, fusion, and the per-layer forward.
    pub tracer: Option<Tracer>,
    /// Drift monitor; when present the trainer marks every published
    /// weight epoch on it and [`Gateway::record_outcome`] feeds completed
    /// jobs into its rolling-accuracy windows.
    pub drift: Option<DriftMonitor>,
    /// Forecast pressure probe; when present, admission tightens while it
    /// returns true (see [`Priority`]). `None` disables pre-shedding.
    pub pressure: Option<PressureProbe>,
    /// Numeric precision for replica inference (see [`Precision`]). The
    /// trainer keeps full f32 weights either way.
    pub precision: Precision,
    /// Fraction of [`queue_cap`](Self::queue_cap) normal-priority requests
    /// may still fill while a burst is forecast (clamped to `(0, 1]`;
    /// the tightened cap never drops below 1).
    pub preshed_queue_frac: f64,
    /// Test hook (integration tests and failure drills): when true, a
    /// request containing the reserved script `__serve_test_panic__`
    /// panics the serving replica, exercising the panic-containment and
    /// flight-dump paths. Never enable in production.
    #[doc(hidden)]
    pub test_panic_marker: bool,
}

impl std::fmt::Debug for GatewayConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl: the pressure probe is an opaque closure.
        f.debug_struct("GatewayConfig")
            .field("replicas", &self.replicas)
            .field("max_batch", &self.max_batch)
            .field("max_wait", &self.max_wait)
            .field("queue_cap", &self.queue_cap)
            .field("default_deadline", &self.default_deadline)
            .field("retrain_queue_cap", &self.retrain_queue_cap)
            .field("pressure", &self.pressure.as_ref().map(|_| "<probe>"))
            .field("precision", &self.precision)
            .field("preshed_queue_frac", &self.preshed_queue_frac)
            .field("test_panic_marker", &self.test_panic_marker)
            .finish_non_exhaustive()
    }
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            replicas: 2,
            max_batch: 16,
            max_wait: Duration::from_micros(2000),
            queue_cap: 128,
            default_deadline: None,
            retrain_queue_cap: 8,
            telemetry: None,
            tracer: None,
            drift: None,
            pressure: None,
            precision: Precision::F32,
            preshed_queue_frac: 0.5,
            test_panic_marker: false,
        }
    }
}

/// Cheap cross-thread counters mirroring the telemetry instruments, for
/// assertions and quick logging without parsing the Prometheus text.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Requests accepted into the queue.
    pub requests_admitted: AtomicUsize,
    /// Requests rejected at admission because the queue was full.
    pub requests_shed_overload: AtomicUsize,
    /// Requests shed by a replica because their deadline had passed.
    pub requests_shed_deadline: AtomicUsize,
    /// Requests shed pre-emptively while an IO burst was forecast.
    pub requests_shed_preburst: AtomicUsize,
    /// Fused forward passes run across all replicas.
    pub batches_served: AtomicUsize,
    /// Scripts predicted across all replicas.
    pub scripts_predicted: AtomicUsize,
    /// Background retrains completed by the trainer thread.
    pub retrains_done: AtomicUsize,
    /// Retrain batches queued but not yet trained on.
    pub retrains_pending: AtomicUsize,
    /// Retrain batches evicted by newer ones (latest-wins queue).
    pub retrains_dropped: AtomicUsize,
    /// Weight checkpoints published on the bus (trainer + manual swaps).
    pub swaps_published: AtomicUsize,
    /// Swap applications performed by replicas (≤ replicas × published).
    pub swaps_applied: AtomicUsize,
    /// Replica or trainer threads lost to a panic.
    pub replica_panics: AtomicUsize,
}

/// A prediction plus the weight epoch that produced it.
///
/// The epoch is the [`WeightBus`] tag of the checkpoint the serving replica
/// had applied when it ran the batch; epoch `0` means the replica still
/// runs the weights it was spawned with.
#[derive(Debug, Clone)]
pub struct PredictionReply {
    /// One prediction per submitted script, in submission order.
    pub predictions: Vec<ResourcePrediction>,
    /// Weight epoch in effect for the whole fused batch.
    pub epoch: u64,
}

/// One queued predict call.
struct Job {
    scripts: Vec<String>,
    reply: Sender<ServeResult<PredictionReply>>,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// The caller's trace context ([`SpanCtx::NONE`] when untraced).
    trace: SpanCtx,
}

/// Telemetry instruments shared by the admission path and the workers.
#[derive(Clone)]
struct Instruments {
    predict_seconds: Histogram,
    queue_wait_seconds: Histogram,
    batch_scripts: Histogram,
    requests_total: Counter,
    batches_total: Counter,
    shed_overload: Counter,
    shed_deadline: Counter,
    shed_preburst: Counter,
    preshed_active: Gauge,
    queue_depth: Gauge,
    swap_epoch: Gauge,
    retrain_seconds: Histogram,
    retrain_queue_depth: Gauge,
    retrains_dropped: Counter,
    replica_panics: Counter,
}

impl Instruments {
    fn build(t: &Telemetry, max_batch: usize) -> Self {
        Instruments {
            predict_seconds: t.histogram(
                "serve_predict_seconds",
                "Gateway predict latency, admission to reply (queue wait included)",
            ),
            queue_wait_seconds: t.histogram(
                "serve_queue_wait_seconds",
                "Time requests spent queued before a replica picked them up",
            ),
            batch_scripts: t.histogram_custom(
                "serve_batch_scripts",
                "Scripts fused per forward pass",
                &[],
                || Histogram::with_linear_buckets(1.0, 1.0, max_batch.clamp(1, 64)),
            ),
            requests_total: t.counter("serve_requests_total", "Requests admitted to the queue"),
            batches_total: t.counter("serve_batches_total", "Fused forward passes served"),
            shed_overload: t.counter_with(
                "serve_shed_total",
                "Requests shed by admission control",
                &[("reason", "overloaded")],
            ),
            shed_deadline: t.counter_with(
                "serve_shed_total",
                "Requests shed by admission control",
                &[("reason", "deadline")],
            ),
            shed_preburst: t.counter_with(
                "serve_shed_total",
                "Requests shed by admission control",
                &[("reason", "preburst")],
            ),
            preshed_active: t.gauge(
                "serve_preshed_active",
                "1 while forecast pressure is tightening admission, else 0",
            ),
            queue_depth: t.gauge("serve_queue_depth", "Requests currently queued"),
            swap_epoch: t.gauge(
                "serve_swap_epoch",
                "Latest weight epoch published on the bus",
            ),
            retrain_seconds: t.histogram(
                "serve_retrain_seconds",
                "Background retrain duration on the trainer thread",
            ),
            retrain_queue_depth: t.gauge(
                "serve_retrain_queue_depth",
                "Retrain batches queued behind the trainer",
            ),
            retrains_dropped: t.counter(
                "serve_retrains_dropped_total",
                "Retrain batches evicted by newer ones (latest-wins queue)",
            ),
            replica_panics: t.counter(
                "serve_replica_panics_total",
                "Replica or trainer threads lost to a panic",
            ),
        }
    }
}

/// Commands for the trainer thread.
enum TrainerCmd {
    /// A retrain batch was enqueued; drain one from the retrain queue.
    Tick,
    /// Exit after the commands queued so far.
    Shutdown,
}

/// A sharded, micro-batching inference front-end over [`Prionn`].
///
/// See the [crate docs](crate) for the architecture. All methods take
/// `&self`; the gateway is meant to be shared across submitting threads
/// (e.g. behind an `Arc`).
pub struct Gateway {
    req_tx: Mutex<Option<Sender<Job>>>,
    req_rx: Receiver<Job>,
    retrain_tx: Sender<TrainingBatch>,
    retrain_rx: Receiver<TrainingBatch>,
    trainer_tx: Sender<TrainerCmd>,
    trainer_handle: Mutex<Option<JoinHandle<()>>>,
    replica_handles: Mutex<Vec<JoinHandle<()>>>,
    bus: WeightBus,
    stats: Arc<GatewayStats>,
    last_error: Arc<Mutex<Option<String>>>,
    stopped: Arc<AtomicBool>,
    telemetry: Telemetry,
    tracer: Tracer,
    drift: Option<DriftMonitor>,
    instruments: Instruments,
    live_replicas: Arc<AtomicUsize>,
    configured_replicas: usize,
    queue_cap: usize,
    default_deadline: Option<Duration>,
    pressure: Option<PressureProbe>,
    preshed_cap: usize,
    preshed_engaged: AtomicBool,
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Gateway {
    /// Spawn a gateway serving `model`. The model becomes the trainer's
    /// master copy; each replica is forked from its checkpoint, so all
    /// replicas start bit-identical to it.
    pub fn spawn(model: Prionn, cfg: GatewayConfig) -> ServeResult<Self> {
        let spawn_err = |e: &dyn std::fmt::Display| ServeError::Spawn(e.to_string());
        let master_ck = model.to_checkpoint().map_err(|e| spawn_err(&e))?;

        let telemetry = cfg.telemetry.clone().unwrap_or_default();
        let tracer = cfg.tracer.clone().unwrap_or_default();
        let instruments = Instruments::build(&telemetry, cfg.max_batch);
        let (req_tx, req_rx) = bounded::<Job>(cfg.queue_cap.max(1));
        let (retrain_tx, retrain_rx) = bounded::<TrainingBatch>(cfg.retrain_queue_cap.max(1));
        let (trainer_tx, trainer_rx) = unbounded::<TrainerCmd>();
        let bus = WeightBus::new();
        let stats = Arc::new(GatewayStats::default());
        let last_error = Arc::new(Mutex::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let live_replicas = Arc::new(AtomicUsize::new(cfg.replicas));

        let max_batch = cfg.max_batch.max(1);
        let mut replica_handles = Vec::with_capacity(cfg.replicas);
        for i in 0..cfg.replicas {
            let mut replica = Prionn::from_checkpoint(&master_ck).map_err(|e| spawn_err(&e))?;
            replica.set_telemetry(&telemetry);
            if cfg.precision == Precision::Int8 {
                // Quantize at fork time; every hot-swap applied below
                // re-quantizes through `apply_weights_checkpoint`.
                replica.set_quantized_inference(true);
            }
            let rx = req_rx.clone();
            let bus = bus.clone();
            let stats = Arc::clone(&stats);
            let last_error = Arc::clone(&last_error);
            let live = Arc::clone(&live_replicas);
            let instr = instruments.clone();
            let replica_tracer = tracer.clone();
            let panic_marker = cfg.test_panic_marker;
            let swaps_applied = telemetry.counter_with(
                "serve_swaps_applied_total",
                "Weight swaps applied, per replica",
                &[("replica", &i.to_string())],
            );
            let handle = std::thread::Builder::new()
                .name(format!("prionn-serve-replica-{i}"))
                .spawn(move || {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        replica_loop(
                            replica,
                            &rx,
                            &bus,
                            max_batch,
                            cfg.max_wait,
                            &stats,
                            &last_error,
                            &instr,
                            &swaps_applied,
                            &replica_tracer,
                            panic_marker,
                        );
                    }));
                    if let Err(payload) = result {
                        stats.replica_panics.fetch_add(1, Ordering::SeqCst);
                        instr.replica_panics.inc();
                        *last_error.lock() = Some(format!(
                            "replica {i} panicked: {}",
                            panic_message(payload.as_ref())
                        ));
                        // If this was the last live replica, nothing will
                        // ever answer queued requests: fail them fast until
                        // the gateway drops its sender at shutdown. Without
                        // this, callers block on replies that never come.
                        if live.fetch_sub(1, Ordering::SeqCst) == 1 {
                            while let Ok(job) = rx.recv() {
                                let _ = job.reply.send(Err(ServeError::Stopped));
                            }
                        }
                    } else {
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                })
                .map_err(|e| spawn_err(&e))?;
            replica_handles.push(handle);
        }

        let trainer_handle = {
            let mut master = model;
            master.set_telemetry(&telemetry);
            let rx = trainer_rx;
            let batches = retrain_rx.clone();
            let bus = bus.clone();
            let stats = Arc::clone(&stats);
            let last_error = Arc::clone(&last_error);
            let instr = instruments.clone();
            let events = telemetry.clone();
            let trainer_drift = cfg.drift.clone();
            std::thread::Builder::new()
                .name("prionn-serve-trainer".to_string())
                .spawn(move || {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        trainer_loop(
                            &mut master,
                            &rx,
                            &batches,
                            &bus,
                            &stats,
                            &last_error,
                            &instr,
                            &events,
                            trainer_drift.as_ref(),
                        );
                    }));
                    if let Err(payload) = result {
                        stats.replica_panics.fetch_add(1, Ordering::SeqCst);
                        instr.replica_panics.inc();
                        *last_error.lock() = Some(format!(
                            "trainer panicked: {}",
                            panic_message(payload.as_ref())
                        ));
                    }
                })
                .map_err(|e| spawn_err(&e))?
        };

        Ok(Gateway {
            req_tx: Mutex::new(Some(req_tx)),
            req_rx,
            retrain_tx,
            retrain_rx,
            trainer_tx,
            trainer_handle: Mutex::new(Some(trainer_handle)),
            replica_handles: Mutex::new(replica_handles),
            bus,
            stats,
            last_error,
            stopped,
            telemetry,
            tracer,
            drift: cfg.drift,
            instruments,
            live_replicas,
            configured_replicas: cfg.replicas,
            queue_cap: cfg.queue_cap.max(1),
            default_deadline: cfg.default_deadline,
            pressure: cfg.pressure,
            preshed_cap: {
                let frac = if cfg.preshed_queue_frac > 0.0 && cfg.preshed_queue_frac <= 1.0 {
                    cfg.preshed_queue_frac
                } else {
                    0.5
                };
                ((cfg.queue_cap.max(1) as f64 * frac) as usize).max(1)
            },
            preshed_engaged: AtomicBool::new(false),
        })
    }

    /// Spawn a gateway from a checkpoint file written by
    /// [`Prionn::save`](prionn_core::Prionn) / `prionn-store`.
    pub fn spawn_from_checkpoint(path: impl AsRef<Path>, cfg: GatewayConfig) -> ServeResult<Self> {
        let model = Prionn::load(path).map_err(|e| ServeError::Spawn(e.to_string()))?;
        Self::spawn(model, cfg)
    }

    /// Spawn a gateway from the live model inside a running
    /// [`PrionnService`], without stopping the service: the model is
    /// exported between requests on the service worker, so the fork never
    /// observes a half-applied retrain.
    pub fn spawn_from_service(service: &PrionnService, cfg: GatewayConfig) -> ServeResult<Self> {
        let ck = service
            .model_checkpoint()
            .map_err(|e| ServeError::Spawn(e.to_string()))?;
        let model = Prionn::from_checkpoint(&ck).map_err(|e| ServeError::Spawn(e.to_string()))?;
        Self::spawn(model, cfg)
    }

    /// Predict resources for `scripts`, using the gateway's default
    /// deadline (if any). Blocks until a replica serves the fused batch
    /// containing this request.
    pub fn predict(&self, scripts: &[String]) -> ServeResult<Vec<ResourcePrediction>> {
        self.predict_detailed(scripts, self.default_deadline)
            .map(|r| r.predictions)
    }

    /// [`predict`](Self::predict) with an explicit queueing deadline: if no
    /// replica picks the request up within `deadline`, it is shed with
    /// [`ServeError::DeadlineExceeded`] instead of being served stale.
    pub fn predict_with_deadline(
        &self,
        scripts: &[String],
        deadline: Duration,
    ) -> ServeResult<Vec<ResourcePrediction>> {
        self.predict_detailed(scripts, Some(deadline))
            .map(|r| r.predictions)
    }

    /// Full-fidelity predict: returns the weight epoch alongside the
    /// predictions so callers can correlate answers with hot-swaps.
    /// Admits at [`Priority::Normal`].
    pub fn predict_detailed(
        &self,
        scripts: &[String],
        deadline: Option<Duration>,
    ) -> ServeResult<PredictionReply> {
        self.predict_prioritized(scripts, deadline, Priority::Normal)
    }

    /// [`predict_detailed`](Self::predict_detailed) with an explicit
    /// [`Priority`]. While the configured [`PressureProbe`] reports a
    /// forecast IO burst, [`Priority::Low`] requests are shed with
    /// [`ServeError::ShedPreBurst`] and normal requests face the tightened
    /// queue cap ([`GatewayConfig::preshed_queue_frac`]) — load is
    /// shed *before* the burst arrives rather than during it.
    pub fn predict_prioritized(
        &self,
        scripts: &[String],
        deadline: Option<Duration>,
        priority: Priority,
    ) -> ServeResult<PredictionReply> {
        self.predict_traced(scripts, deadline, priority, SpanCtx::NONE)
    }

    /// [`predict_prioritized`](Self::predict_prioritized) with a foreign
    /// trace parent: when `parent` is set (e.g. extracted from a fleet
    /// frame's trace-context extension), the request's root span adopts
    /// the caller's trace id and parents under the caller's span, so the
    /// shard-side tree stitches into the fleet-wide trace instead of
    /// starting a disconnected one.
    pub fn predict_traced(
        &self,
        scripts: &[String],
        deadline: Option<Duration>,
        priority: Priority,
        parent: SpanCtx,
    ) -> ServeResult<PredictionReply> {
        if scripts.is_empty() {
            return Ok(PredictionReply {
                predictions: Vec::new(),
                epoch: self.bus.epoch(),
            });
        }
        if self.stopped.load(Ordering::SeqCst) {
            return Err(ServeError::Stopped);
        }
        let under_pressure = self.refresh_pressure();
        if under_pressure && priority == Priority::Low {
            self.stats
                .requests_shed_preburst
                .fetch_add(1, Ordering::SeqCst);
            self.instruments.shed_preburst.inc();
            return Err(ServeError::ShedPreBurst);
        }
        // The request's trace root: records on every exit path (shed,
        // stopped, served) so failed requests leave evidence too.
        let mut root = if parent.is_none() {
            self.tracer.root("predict")
        } else {
            self.tracer.span_within(parent, "predict")
        };
        if root.is_recording() {
            root.set_detail(format!("scripts={}", scripts.len()));
        }
        let now = Instant::now();
        let (reply_tx, reply_rx) = unbounded();
        let job = Job {
            scripts: scripts.to_vec(),
            reply: reply_tx,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            trace: root.ctx(),
        };
        {
            // Admission happens under the sender lock so shutdown's
            // take-then-drain cannot race a straggling enqueue.
            let mut admission = root.child("admission");
            let guard = self.req_tx.lock();
            let Some(tx) = guard.as_ref() else {
                return Err(ServeError::Stopped);
            };
            // Pre-burst tightening: while a burst is forecast, normal
            // requests only fill a fraction of the queue, keeping headroom
            // for the burst itself.
            if under_pressure && self.req_rx.len() >= self.preshed_cap {
                self.stats
                    .requests_shed_preburst
                    .fetch_add(1, Ordering::SeqCst);
                self.instruments.shed_preburst.inc();
                admission.set_detail("shed=preburst");
                return Err(ServeError::ShedPreBurst);
            }
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.stats
                        .requests_shed_overload
                        .fetch_add(1, Ordering::SeqCst);
                    self.instruments.shed_overload.inc();
                    admission.set_detail("shed=overloaded");
                    return Err(ServeError::Overloaded {
                        queue_cap: self.queue_cap,
                    });
                }
                Err(TrySendError::Disconnected(_)) => return Err(ServeError::Stopped),
            }
        }
        self.stats.requests_admitted.fetch_add(1, Ordering::SeqCst);
        self.instruments.requests_total.inc();
        self.instruments.queue_depth.set(self.req_rx.len() as f64);
        let timer = self.instruments.predict_seconds.start_timer();
        let queued = root.child("queued");
        let out = reply_rx.recv().map_err(|_| ServeError::Stopped)?;
        drop(queued);
        timer.stop();
        out
    }

    /// Queue a retrain batch for the background trainer. Never blocks:
    /// when the bounded retrain queue is full, the *oldest* queued batch
    /// is evicted (latest-wins, counted in
    /// [`GatewayStats::retrains_dropped`]) — under a backlog, training on
    /// the freshest jobs matters more than training on all of them.
    /// After a successful retrain the trainer publishes the new weights;
    /// replicas pick them up before their next batch.
    pub fn retrain_async(&self, mut batch: TrainingBatch) {
        let pending = self.stats.retrains_pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.instruments.retrain_queue_depth.set(pending as f64);
        loop {
            match self.retrain_tx.try_send(batch) {
                Ok(()) => break,
                Err(TrySendError::Full(b)) => {
                    if self.retrain_rx.try_recv().is_ok() {
                        self.stats.retrains_dropped.fetch_add(1, Ordering::SeqCst);
                        self.instruments.retrains_dropped.inc();
                        let left = self.stats.retrains_pending.fetch_sub(1, Ordering::SeqCst) - 1;
                        self.instruments.retrain_queue_depth.set(left as f64);
                    }
                    batch = b;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.stats.retrains_pending.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
            }
        }
        let _ = self.trainer_tx.send(TrainerCmd::Tick);
    }

    /// Publish `model`'s weights to every replica as a new epoch. Returns
    /// the epoch. The architecture must match the serving model; replicas
    /// reject (and log via [`last_error`](Self::last_error)) mismatched
    /// checkpoints and keep serving their current weights.
    pub fn hot_swap(&self, model: &Prionn) -> ServeResult<u64> {
        let ck = model
            .weights_checkpoint()
            .map_err(|e| ServeError::Model(e.to_string()))?;
        Ok(self.hot_swap_checkpoint(ck))
    }

    /// Publish an already-encoded weights checkpoint (the
    /// [`Prionn::weights_checkpoint`] section format) as a new epoch.
    pub fn hot_swap_checkpoint(&self, ck: Checkpoint) -> u64 {
        let epoch = self.bus.publish(ck);
        self.stats.swaps_published.fetch_add(1, Ordering::SeqCst);
        self.instruments.swap_epoch.set(epoch as f64);
        if let Some(d) = &self.drift {
            d.mark_weight_update();
        }
        epoch
    }

    /// Latest weight epoch published on the bus (0 = spawn weights).
    pub fn epoch(&self) -> u64 {
        self.bus.epoch()
    }

    /// Requests currently sitting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.req_rx.len()
    }

    /// Cross-thread counters (cheap; no parsing needed).
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// The metrics registry serving this gateway (shared with the model
    /// replicas), for Prometheus/JSON export.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The tracer serving this gateway (disabled when none was configured).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The drift monitor, when one was configured.
    pub fn drift(&self) -> Option<&DriftMonitor> {
        self.drift.as_ref()
    }

    /// Feed a completed job back into the drift monitor: `prediction` is
    /// what the gateway answered at submission, the rest is ground truth
    /// observed at completion. No-op without a configured monitor.
    pub fn record_outcome(
        &self,
        prediction: &ResourcePrediction,
        runtime_minutes: f64,
        read_bytes: f64,
        write_bytes: f64,
    ) {
        self.record_outcome_with_status(
            prediction,
            runtime_minutes,
            read_bytes,
            write_bytes,
            OutcomeStatus::Completed,
        );
    }

    /// [`record_outcome`](Self::record_outcome) with an explicit terminal
    /// status. Jobs the kill/requeue policy terminated still carry an
    /// observed (partial) truth; folding them into the drift windows keeps
    /// the rolling statistics — and the conformal calibration built on
    /// them — free of survivorship bias.
    pub fn record_outcome_with_status(
        &self,
        prediction: &ResourcePrediction,
        runtime_minutes: f64,
        read_bytes: f64,
        write_bytes: f64,
        status: OutcomeStatus,
    ) {
        let Some(d) = &self.drift else { return };
        d.record_with_status(
            DriftHead::Runtime,
            runtime_minutes,
            prediction.runtime_minutes,
            status,
        );
        d.record_with_status(DriftHead::Read, read_bytes, prediction.read_bytes, status);
        d.record_with_status(
            DriftHead::Write,
            write_bytes,
            prediction.write_bytes,
            status,
        );
    }

    /// Replica worker threads still alive (panics decrement this).
    pub fn live_replicas(&self) -> usize {
        self.live_replicas.load(Ordering::SeqCst)
    }

    /// Poll the pressure probe, record engage/release edges in the event
    /// log, and return the current verdict. `false` without a probe.
    fn refresh_pressure(&self) -> bool {
        let Some(probe) = &self.pressure else {
            return false;
        };
        let now = probe();
        let was = self.preshed_engaged.swap(now, Ordering::SeqCst);
        if now != was {
            self.instruments
                .preshed_active
                .set(if now { 1.0 } else { 0.0 });
            self.telemetry.events().record(
                if now {
                    "serve_preshed_engage"
                } else {
                    "serve_preshed_release"
                },
                format!("tightened_cap={}/{}", self.preshed_cap, self.queue_cap),
                0,
            );
        }
        now
    }

    /// True while forecast pressure is tightening admission (the verdict
    /// from the most recent admission attempt).
    pub fn preshed_active(&self) -> bool {
        self.preshed_engaged.load(Ordering::SeqCst)
    }

    /// Readiness verdict for ops probes (`/readyz`): ready while the
    /// gateway is running, at least one configured replica is alive, and
    /// the admission queue has headroom. The detail string is what the
    /// probe body shows.
    pub fn readiness(&self) -> (bool, String) {
        let live = self.live_replicas();
        let depth = self.req_rx.len();
        let stopped = self.stopped.load(Ordering::SeqCst);
        let ready =
            !stopped && (self.configured_replicas == 0 || live > 0) && depth < self.queue_cap;
        (
            ready,
            format!(
                "live_replicas={live}/{} queue={depth}/{}{}",
                self.configured_replicas,
                self.queue_cap,
                if stopped { " stopped" } else { "" }
            ),
        )
    }

    /// Most recent background failure (replica panic, rejected hot-swap,
    /// failed retrain), if any. Mirrors [`PrionnService::last_error`].
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Drain the queue and stop every thread. Queued requests are served
    /// (or failed) before the replicas exit; queued retrains are trained
    /// before the trainer exits. Idempotent, and safe to call from any
    /// thread sharing the gateway; also runs on `Drop`.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        let tx = self.req_tx.lock().take();
        drop(tx);
        let mut handles = self.replica_handles.lock();
        if handles.is_empty() {
            // No replica will ever answer the queue: fail queued callers
            // so they unblock. New enqueues are impossible (sender taken).
            while let Ok(job) = self.req_rx.try_recv() {
                let _ = job.reply.send(Err(ServeError::Stopped));
            }
        }
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
        drop(handles);
        let _ = self.trainer_tx.send(TrainerCmd::Shutdown);
        if let Some(handle) = self.trainer_handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker loop for one replica: collect a micro-batch, catch up to the
/// latest published weights, run one fused forward, split the replies.
#[allow(clippy::too_many_arguments)]
fn replica_loop(
    mut model: Prionn,
    rx: &Receiver<Job>,
    bus: &WeightBus,
    max_batch: usize,
    max_wait: Duration,
    stats: &GatewayStats,
    last_error: &Mutex<Option<String>>,
    instr: &Instruments,
    swaps_applied: &Counter,
    tracer: &Tracer,
    test_panic_marker: bool,
) {
    // Epoch of the weights this replica currently serves. Only this loop
    // mutates `model`, so between the pre-batch swap and the reply the
    // weights cannot change — that ownership is what makes the per-reply
    // epoch tag exact and torn reads impossible.
    let mut local_epoch = 0u64;
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break, // gateway dropped the sender: drained, exit
        };
        let mut jobs = vec![first];
        let mut n_scripts = jobs[0].scripts.len();
        let linger_until = jobs[0].enqueued + max_wait;
        while n_scripts < max_batch {
            match rx.try_recv() {
                Ok(job) => {
                    n_scripts += job.scripts.len();
                    jobs.push(job);
                }
                Err(TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= linger_until {
                        break;
                    }
                    match rx.recv_timeout(linger_until - now) {
                        Ok(job) => {
                            n_scripts += job.scripts.len();
                            jobs.push(job);
                        }
                        Err(_) => break, // linger expired (or disconnected)
                    }
                }
                Err(TryRecvError::Disconnected) => break,
            }
        }
        instr.queue_depth.set(rx.len() as f64);

        // Shed expired requests before spending a forward pass on them.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline.is_some_and(|d| now > d) {
                stats.requests_shed_deadline.fetch_add(1, Ordering::SeqCst);
                instr.shed_deadline.inc();
                tracer.instant(job.trace, "shed", "reason=deadline", vec![]);
                let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }

        // The fused forward is a trace of its own — one batch serves many
        // callers — linked both ways: the fused span lists every caller
        // context, and each caller's tree gains a `fused` child pointing
        // back. The `batch_assembled` instant records *immediately* (span
        // guards only record on drop), so a crash dump taken mid-batch
        // still names the requests that were on board.
        let mut fused = tracer.root("fused_forward");
        for job in &live {
            fused.add_link(job.trace);
        }
        // Held until the replies are sent: each caller's tree shows a
        // `fused` span covering its share of the batch.
        let _job_spans: Vec<Span> = live
            .iter()
            .map(|job| {
                let mut s = tracer.span_within(job.trace, "fused");
                s.add_link(fused.ctx());
                s
            })
            .collect();
        if fused.is_recording() {
            tracer.instant(
                fused.ctx(),
                "batch_assembled",
                format!("jobs={}", live.len()),
                live.iter().map(|j| j.trace).collect(),
            );
        }

        // Test hook: a reserved script marker kills this replica so the
        // panic-surfacing, no-wedge, and flight-dump guarantees can be
        // exercised (placed after `batch_assembled` so the dump carries
        // the dying batch's trace links).
        if test_panic_marker
            && live
                .iter()
                .any(|j| j.scripts.iter().any(|s| s == "__serve_test_panic__"))
        {
            panic!("injected replica panic");
        }

        // Pre-batch epoch check: catch up to the latest published weights.
        // The bus payload is an immutable snapshot and the apply is
        // all-or-nothing, so the batch runs entirely on old or entirely on
        // new weights — never a mix. On a rejected checkpoint the replica
        // keeps its current weights and will retry at the next epoch.
        let latest = bus.latest();
        if latest.epoch != local_epoch {
            if let Some(payload) = latest.payload.as_deref() {
                let mut swap_span = fused.child("weight_swap");
                match model.apply_weights_checkpoint(payload) {
                    Ok(()) => {
                        local_epoch = latest.epoch;
                        stats.swaps_applied.fetch_add(1, Ordering::SeqCst);
                        swaps_applied.inc();
                        swap_span.set_detail(format!("epoch={}", latest.epoch));
                    }
                    Err(e) => {
                        swap_span.set_detail("rejected");
                        *last_error.lock() = Some(format!("hot-swap rejected: {e}"));
                    }
                }
            }
        }
        let epoch = local_epoch;

        for job in &live {
            instr
                .queue_wait_seconds
                .observe(now.saturating_duration_since(job.enqueued).as_secs_f64());
        }
        let total: usize = live.iter().map(|j| j.scripts.len()).sum();
        instr.batch_scripts.observe(total as f64);
        if fused.is_recording() {
            fused.set_detail(format!("jobs={} scripts={total} epoch={epoch}", live.len()));
        }

        let refs: Vec<&str> = live
            .iter()
            .flat_map(|j| j.scripts.iter().map(String::as_str))
            .collect();
        // The implicit context makes the per-layer forward spans children
        // of the fused span without any nn-crate API change.
        let ctx_guard = trace::push_current(tracer, fused.ctx());
        let predicted = model.predict(&refs);
        drop(ctx_guard);
        match predicted {
            Ok(mut preds) => {
                // Post-batch epoch check: this loop owns the weights, so
                // the epoch cannot have moved under the forward pass.
                debug_assert_eq!(epoch, local_epoch, "weights mutated mid-batch");
                stats.batches_served.fetch_add(1, Ordering::SeqCst);
                stats.scripts_predicted.fetch_add(total, Ordering::SeqCst);
                instr.batches_total.inc();
                for job in live {
                    let rest = preds.split_off(job.scripts.len());
                    let part = std::mem::replace(&mut preds, rest);
                    let _ = job.reply.send(Ok(PredictionReply {
                        predictions: part,
                        epoch,
                    }));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                *last_error.lock() = Some(format!("replica predict failed: {msg}"));
                for job in live {
                    let _ = job.reply.send(Err(ServeError::Model(msg.clone())));
                }
            }
        }
    }
}

/// Trainer loop: drain retrain batches (latest-wins queue), retrain the
/// master model, publish the new weights as the next epoch.
#[allow(clippy::too_many_arguments)]
fn trainer_loop(
    master: &mut Prionn,
    cmd_rx: &Receiver<TrainerCmd>,
    batches: &Receiver<TrainingBatch>,
    bus: &WeightBus,
    stats: &GatewayStats,
    last_error: &Mutex<Option<String>>,
    instr: &Instruments,
    telemetry: &Telemetry,
    drift: Option<&DriftMonitor>,
) {
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            TrainerCmd::Tick => {
                // The batch this tick announced may have been evicted by a
                // newer one; in that case the tick is a no-op.
                let Ok(batch) = batches.try_recv() else {
                    continue;
                };
                let refs: Vec<&str> = batch.scripts.iter().map(String::as_str).collect();
                let started = Instant::now();
                let result = master.retrain(
                    &refs,
                    &batch.runtime_minutes,
                    &batch.read_bytes,
                    &batch.write_bytes,
                );
                instr
                    .retrain_seconds
                    .observe(started.elapsed().as_secs_f64());
                let left = stats.retrains_pending.fetch_sub(1, Ordering::SeqCst) - 1;
                instr.retrain_queue_depth.set(left as f64);
                match result {
                    Ok(()) => {
                        stats.retrains_done.fetch_add(1, Ordering::SeqCst);
                        match master.weights_checkpoint() {
                            Ok(ck) => {
                                let epoch = bus.publish(ck);
                                stats.swaps_published.fetch_add(1, Ordering::SeqCst);
                                instr.swap_epoch.set(epoch as f64);
                                if let Some(d) = drift {
                                    d.mark_weight_update();
                                }
                                telemetry.events().record(
                                    "serve_hot_swap",
                                    format!("epoch={epoch}"),
                                    started.elapsed().as_micros() as u64,
                                );
                            }
                            Err(e) => {
                                *last_error.lock() = Some(format!("weight publish failed: {e}"));
                            }
                        }
                    }
                    Err(e) => {
                        *last_error.lock() = Some(format!("background retrain failed: {e}"));
                    }
                }
            }
            TrainerCmd::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prionn_core::PrionnConfig;

    fn tiny_cfg() -> PrionnConfig {
        PrionnConfig {
            grid: (16, 16),
            base_width: 2,
            runtime_bins: 8,
            io_bins: 4,
            epochs: 2,
            batch_size: 32,
            lr: 3e-3,
            ..Default::default()
        }
    }

    fn corpus() -> Vec<String> {
        (0..8)
            .map(|i| format!("#!/bin/bash\n#SBATCH -N 2\nsrun ./app run{i}\n"))
            .collect()
    }

    fn tiny_model() -> Prionn {
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        Prionn::new(tiny_cfg(), &refs).unwrap()
    }

    /// A replica panic must surface through `last_error`, fail queued and
    /// future callers fast (no wedged `recv`), and leave `shutdown`
    /// working. This is the serve-side mirror of the service worker's
    /// panic test.
    #[test]
    fn replica_panic_surfaces_and_never_wedges() {
        let gw = Gateway::spawn(
            tiny_model(),
            GatewayConfig {
                replicas: 1,
                max_wait: Duration::from_micros(100),
                test_panic_marker: true,
                ..GatewayConfig::default()
            },
        )
        .unwrap();

        // The killing request itself fails fast: its reply sender dies
        // with the unwinding replica.
        let err = gw
            .predict(&["__serve_test_panic__".to_string()])
            .unwrap_err();
        assert_eq!(err, ServeError::Stopped);

        // The dead replica's drain loop answers later requests instead of
        // letting them block forever on an unserved queue.
        let scripts = corpus();
        let err = gw.predict(&scripts[..1]).unwrap_err();
        assert_eq!(err, ServeError::Stopped);

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(e) = gw.last_error() {
                assert!(e.contains("panicked"), "unexpected error: {e}");
                assert!(e.contains("injected replica panic"), "{e}");
                break;
            }
            assert!(Instant::now() < deadline, "panic never surfaced");
            std::thread::yield_now();
        }
        assert_eq!(gw.stats().replica_panics.load(Ordering::SeqCst), 1);

        // Shutdown must not wedge on the dead replica.
        gw.shutdown();
    }

    /// With zero replicas the queue fills deterministically: admission
    /// control must shed with the typed error, and shutdown must fail the
    /// queued callers instead of leaking them.
    #[test]
    fn overload_sheds_typed_error_and_shutdown_drains_queued_callers() {
        let gw = Gateway::spawn(
            tiny_model(),
            GatewayConfig {
                replicas: 0,
                queue_cap: 2,
                ..GatewayConfig::default()
            },
        )
        .unwrap();

        std::thread::scope(|s| {
            let clients: Vec<_> = (0..2)
                .map(|_| s.spawn(|| gw.predict(&corpus()[..1])))
                .collect();
            let deadline = Instant::now() + Duration::from_secs(5);
            while gw.queue_depth() < 2 {
                assert!(Instant::now() < deadline, "clients never queued");
                std::thread::yield_now();
            }

            let err = gw.predict(&corpus()[..1]).unwrap_err();
            assert_eq!(err, ServeError::Overloaded { queue_cap: 2 });
            assert_eq!(gw.stats().requests_shed_overload.load(Ordering::SeqCst), 1);
            assert_eq!(gw.stats().requests_admitted.load(Ordering::SeqCst), 2);

            // Shutdown unblocks both queued callers with a typed error.
            gw.shutdown();
            for c in clients {
                let res = c.join().unwrap();
                assert_eq!(res.unwrap_err(), ServeError::Stopped);
            }
        });
    }

    /// A request whose deadline expires while queued is shed before any
    /// forward pass is spent on it.
    #[test]
    fn expired_deadlines_are_shed_before_the_forward_pass() {
        let gw = Gateway::spawn(
            tiny_model(),
            GatewayConfig {
                replicas: 1,
                // Long linger guarantees the deadline is past by the time
                // the replica evaluates the batch.
                max_wait: Duration::from_millis(30),
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let err = gw
            .predict_with_deadline(&corpus()[..1], Duration::ZERO)
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(gw.stats().requests_shed_deadline.load(Ordering::SeqCst), 1);
        assert_eq!(gw.stats().batches_served.load(Ordering::SeqCst), 0);
        gw.shutdown();
    }

    /// Empty requests answer immediately without touching the queue.
    #[test]
    fn empty_request_short_circuits() {
        let gw = Gateway::spawn(
            tiny_model(),
            GatewayConfig {
                replicas: 0,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let reply = gw.predict_detailed(&[], None).unwrap();
        assert!(reply.predictions.is_empty());
        assert_eq!(reply.epoch, 0);
        assert_eq!(gw.stats().requests_admitted.load(Ordering::SeqCst), 0);
        gw.shutdown();
    }

    /// The precision knob end to end: an Int8 gateway serves predictions
    /// within the quantization accuracy bound of an f32 gateway forked
    /// from the same master, and a weight hot-swap serves the *new*
    /// weights through freshly re-quantized int8 codes — never stale ones
    /// and never raw f32.
    #[test]
    fn int8_replicas_track_f32_and_requantize_on_hot_swap() {
        let mut master = tiny_model();
        let scripts = corpus();
        let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
        let minutes: Vec<f64> = (0..8).map(|i| 10.0 + 7.0 * i as f64).collect();
        let reads: Vec<f64> = (0..8).map(|i| 1e6 * (i + 1) as f64).collect();
        let writes: Vec<f64> = (0..8).map(|i| 5e5 * (i + 1) as f64).collect();
        master.retrain(&refs, &minutes, &reads, &writes).unwrap();

        let quick = |precision| GatewayConfig {
            replicas: 1,
            max_wait: Duration::from_micros(100),
            precision,
            ..GatewayConfig::default()
        };
        let f32_gw = Gateway::spawn(master.fork_replica().unwrap(), quick(Precision::F32)).unwrap();
        let int8_gw =
            Gateway::spawn(master.fork_replica().unwrap(), quick(Precision::Int8)).unwrap();

        let f32_preds = f32_gw.predict(&scripts).unwrap();
        let q_preds = int8_gw.predict(&scripts).unwrap();
        for (a, b) in f32_preds.iter().zip(&q_preds) {
            let ra = prionn_core::relative_accuracy(a.runtime_minutes, b.runtime_minutes);
            assert!(
                ra >= 0.99,
                "int8 runtime {} too far from f32 {} (relative accuracy {ra})",
                b.runtime_minutes,
                a.runtime_minutes
            );
        }

        // Train the master further, hot-swap the int8 gateway, and wait
        // for the replica to apply the new epoch.
        master.retrain(&refs, &minutes, &reads, &writes).unwrap();
        let epoch = int8_gw.hot_swap(&master).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let post_swap = loop {
            let reply = int8_gw.predict_detailed(&scripts, None).unwrap();
            if reply.epoch == epoch {
                break reply.predictions;
            }
            assert!(Instant::now() < deadline, "replica never applied epoch");
            std::thread::yield_now();
        };

        // The swapped replica must match an int8-quantized fork of the
        // *new* master: fresh codes for fresh weights.
        let mut q_ref = master.fork_replica().unwrap();
        q_ref.set_quantized_inference(true);
        let expect = q_ref.predict(&refs).unwrap();
        for (got, want) in post_swap.iter().zip(&expect) {
            let rel = (got.runtime_minutes - want.runtime_minutes).abs()
                / want.runtime_minutes.abs().max(1e-9);
            assert!(
                rel < 1e-5,
                "post-swap int8 prediction {} diverges from requantized master {}",
                got.runtime_minutes,
                want.runtime_minutes
            );
        }

        f32_gw.shutdown();
        int8_gw.shutdown();
    }

    /// While the pressure probe reports a forecast burst, low-priority
    /// requests are shed outright, normal ones face the tightened cap, and
    /// the engage/release edges land in the event log exactly once each.
    #[test]
    fn forecast_pressure_sheds_low_priority_and_tightens_the_cap() {
        let pressure = Arc::new(AtomicBool::new(false));
        let probe_flag = Arc::clone(&pressure);
        let telemetry = Telemetry::new();
        let gw = Gateway::spawn(
            tiny_model(),
            GatewayConfig {
                replicas: 0,
                queue_cap: 4,
                preshed_queue_frac: 0.5, // tightened cap = 2
                telemetry: Some(telemetry.clone()),
                pressure: Some(Arc::new(move || probe_flag.load(Ordering::SeqCst))),
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let scripts = corpus();

        std::thread::scope(|s| {
            // No pressure: both priorities queue freely.
            let clients: Vec<_> = (0..3)
                .map(|i| {
                    let scripts = &scripts;
                    let gw = &gw;
                    s.spawn(move || {
                        let prio = if i == 0 {
                            Priority::Low
                        } else {
                            Priority::Normal
                        };
                        gw.predict_prioritized(&scripts[..1], None, prio)
                    })
                })
                .collect();
            let deadline = Instant::now() + Duration::from_secs(5);
            while gw.queue_depth() < 3 {
                assert!(Instant::now() < deadline, "clients never queued");
                std::thread::yield_now();
            }
            assert!(!gw.preshed_active());

            // Pressure on: a low-priority request is shed before queueing,
            // and a normal one hits the tightened cap (depth 3 >= 2).
            pressure.store(true, Ordering::SeqCst);
            let err = gw
                .predict_prioritized(&scripts[..1], None, Priority::Low)
                .unwrap_err();
            assert_eq!(err, ServeError::ShedPreBurst);
            let err = gw
                .predict_prioritized(&scripts[..1], None, Priority::Normal)
                .unwrap_err();
            assert_eq!(err, ServeError::ShedPreBurst);
            assert!(gw.preshed_active());
            assert_eq!(gw.stats().requests_shed_preburst.load(Ordering::SeqCst), 2);
            assert_eq!(gw.stats().requests_shed_overload.load(Ordering::SeqCst), 0);

            // Pressure off: admission is back to the full cap (depth 3 < 4).
            pressure.store(false, Ordering::SeqCst);
            let c = s.spawn(|| gw.predict_prioritized(&scripts[..1], None, Priority::Low));
            while gw.queue_depth() < 4 {
                assert!(
                    Instant::now() < deadline,
                    "post-release client never queued"
                );
                std::thread::yield_now();
            }
            assert!(!gw.preshed_active());

            gw.shutdown();
            for client in clients {
                assert_eq!(client.join().unwrap().unwrap_err(), ServeError::Stopped);
            }
            assert_eq!(c.join().unwrap().unwrap_err(), ServeError::Stopped);
        });

        // Exactly one engage edge and one release edge.
        let events = telemetry.events().drain();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "serve_preshed_engage")
                .count(),
            1
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "serve_preshed_release")
                .count(),
            1
        );
        let text = telemetry.prometheus();
        assert!(
            text.contains(r#"serve_shed_total{reason="preburst"} 2"#),
            "{text}"
        );
    }

    /// After shutdown (observable via Drop too) the gateway answers
    /// `Stopped` instead of queueing.
    #[test]
    fn predict_after_shutdown_fails_fast() {
        let gw = Gateway::spawn(
            tiny_model(),
            GatewayConfig {
                replicas: 1,
                ..GatewayConfig::default()
            },
        )
        .unwrap();
        let scripts = corpus();
        assert_eq!(gw.predict(&scripts[..2]).unwrap().len(), 2);
        // Exercise shutdown_inner idempotence through an explicit call
        // followed by Drop.
        gw.shutdown();
    }
}
