//! # prionn-serve — sharded, micro-batching inference gateway
//!
//! PRIONN's predictions are cheapest in bulk: one fused forward pass over a
//! batch of job scripts amortises the data-mapping and GEMM overhead that
//! dominates batch-1 inference. But a scheduler integration sees jobs one at
//! a time, from many submitting threads at once. This crate bridges the two
//! shapes with a [`Gateway`] that sits in front of [`prionn_core::Prionn`]:
//!
//! * **Micro-batching** — concurrent `predict` calls land in a shared
//!   bounded queue. Replica workers drain it up to
//!   [`GatewayConfig::max_batch`] scripts, lingering at most
//!   [`GatewayConfig::max_wait`] past the first request's arrival, then run
//!   one fused forward pass and split the answers back out per caller.
//! * **Replica sharding** — [`GatewayConfig::replicas`] worker threads each
//!   own a private copy of the model forked from the same checkpoint.
//!   Work-pulling from the shared queue gives least-loaded dispatch for
//!   free: whichever replica is idle takes the next batch.
//! * **Admission control** — the request queue is bounded
//!   ([`GatewayConfig::queue_cap`]); when it is full, callers get a typed
//!   [`ServeError::Overloaded`] immediately instead of queueing without
//!   bound. Per-request deadlines shed stale work *before* a forward pass
//!   is spent on it, and shutdown drains in-flight requests before the
//!   worker threads exit.
//! * **Hot-swap** — a background trainer thread retrains on completed-job
//!   batches (latest-wins bounded queue, same policy as
//!   [`prionn_core::PrionnService`]) and publishes the new weights through
//!   [`prionn_store::broadcast::WeightBus`] as an epoch-tagged immutable
//!   checkpoint. Replicas apply the swap between batches, all-or-nothing,
//!   so a prediction can never observe a half-updated model; every reply
//!   carries the weight epoch that served it.
//!
//! ```no_run
//! use prionn_core::{Prionn, PrionnConfig};
//! use prionn_serve::{Gateway, GatewayConfig};
//!
//! let scripts = vec!["#!/bin/bash\nsrun ./app\n".to_string()];
//! let refs: Vec<&str> = scripts.iter().map(|s| s.as_str()).collect();
//! let model = Prionn::new(PrionnConfig::default(), &refs).unwrap();
//! let gw = Gateway::spawn(model, GatewayConfig::default()).unwrap();
//! let preds = gw.predict(&scripts).unwrap();
//! assert_eq!(preds.len(), 1);
//! gw.shutdown();
//! ```

#![warn(missing_docs)]

mod gateway;

pub use gateway::{
    Gateway, GatewayConfig, GatewayStats, Precision, PredictionReply, PressureProbe, Priority,
    ServeError, ServeResult,
};
