//! HTTP-level integration tests for the embedded ops endpoint, plus the
//! pinned metric surface of the observe crate: every drift_* series (and
//! the event-log drop counter) must appear in the Prometheus export with
//! exactly the documented names and labels — renaming a metric breaks
//! dashboards, so renames must break this test first.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use prionn_observe::{
    DriftConfig, DriftHead, DriftMonitor, FlightConfig, FlightRecorder, OpsOptions, OpsServer,
    Readiness, Tracer,
};
use prionn_telemetry::Telemetry;

/// One raw HTTP/1.0 GET; returns the full response (headers + body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("")
}

/// A fully wired endpoint: telemetry + recorder + drift + readiness probe.
fn wired() -> (OpsServer, Telemetry, FlightRecorder, DriftMonitor) {
    let telemetry = Telemetry::new();
    let rec = FlightRecorder::new(FlightConfig {
        dump_dir: Some(std::env::temp_dir().join(format!("prionn-ops-{}", std::process::id()))),
        ..FlightConfig::default()
    });
    rec.attach_telemetry(&telemetry);
    let drift = DriftMonitor::new(&telemetry, DriftConfig::default());
    // Some traced work so /traces has content.
    let tracer = Tracer::new(&rec);
    {
        let root = tracer.root("predict");
        let _child = root.child("admission");
    }
    drift.record(DriftHead::Runtime, 100.0, 90.0);
    drift.mark_weight_update();
    let server = OpsServer::start(
        "127.0.0.1:0",
        OpsOptions {
            telemetry: Some(telemetry.clone()),
            recorder: Some(rec.clone()),
            drift: Some(drift.clone()),
            readiness: Some(Arc::new(|| Readiness {
                ready: true,
                detail: "live_replicas=2/2 queue=0/128".into(),
            })),
            forecast: None,
            revise: None,
            fleet: None,
            max_traces: 16,
        },
    )
    .unwrap();
    (server, telemetry, rec, drift)
}

#[test]
fn ops_routes_serve_wellformed_output() {
    let (server, _telemetry, _rec, _drift) = wired();
    let addr = server.addr();

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
    assert!(
        metrics.contains("text/plain; version=0.0.4"),
        "prometheus content type: {metrics}"
    );
    assert!(body_of(&metrics).contains("# TYPE drift_relative_accuracy gauge"));

    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    assert_eq!(body_of(&health), "ok\n");

    let ready = http_get(addr, "/readyz");
    assert!(ready.starts_with("HTTP/1.0 200"), "{ready}");
    assert!(body_of(&ready).contains("live_replicas=2/2"), "{ready}");

    let traces = http_get(addr, "/traces");
    assert!(traces.starts_with("HTTP/1.0 200"), "{traces}");
    let parsed: serde_json::Value = serde_json::from_str(body_of(&traces)).unwrap();
    let trees = parsed
        .get("traces")
        .and_then(|t| t.as_array())
        .expect("/traces returns {\"traces\": [...]}");
    assert_eq!(trees.len(), 1, "one recorded trace");
    let spans = trees[0].get("spans").unwrap().as_array().unwrap();
    assert_eq!(spans.len(), 2, "root + child");

    let flight = http_get(addr, "/flight");
    assert!(flight.starts_with("HTTP/1.0 200"), "{flight}");
    let parsed: serde_json::Value = serde_json::from_str(body_of(&flight)).unwrap();
    assert_eq!(parsed.get("dumped").unwrap().as_bool(), Some(true));
    let path = parsed.get("path").unwrap().as_str().unwrap().to_string();
    assert!(std::path::Path::new(&path).exists(), "{path}");
    let _ = std::fs::remove_file(&path);

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

    server.shutdown();
}

#[test]
fn readiness_probe_failure_is_a_503() {
    let server = OpsServer::start(
        "127.0.0.1:0",
        OpsOptions {
            readiness: Some(Arc::new(|| Readiness {
                ready: false,
                detail: "live_replicas=0/2 queue=128/128".into(),
            })),
            ..OpsOptions::default()
        },
    )
    .unwrap();
    let ready = http_get(server.addr(), "/readyz");
    assert!(ready.starts_with("HTTP/1.0 503"), "{ready}");
    assert!(body_of(&ready).contains("not ready"), "{ready}");
    server.shutdown();
}

#[test]
fn observe_metric_names_and_labels_are_pinned() {
    let telemetry = Telemetry::new();
    let drift = DriftMonitor::new(&telemetry, DriftConfig::default());
    for _ in 0..4 {
        drift.record(DriftHead::Runtime, 100.0, 95.0);
        drift.record(DriftHead::Read, 1e9, 2e9);
        drift.record(DriftHead::Write, 1e9, 1e9);
    }
    drift.mark_weight_update();
    drift.refresh_staleness();

    let text = telemetry.prometheus();
    for series in [
        "# TYPE drift_relative_accuracy gauge",
        "# TYPE drift_calibration_error gauge",
        "# TYPE drift_samples_total counter",
        "# TYPE drift_alerts_total counter",
        "# TYPE drift_weight_staleness_seconds gauge",
        "# TYPE drift_weight_updates_total counter",
        "# TYPE telemetry_events_dropped_total counter",
        r#"drift_relative_accuracy{head="runtime"}"#,
        r#"drift_relative_accuracy{head="read"}"#,
        r#"drift_relative_accuracy{head="write"}"#,
        r#"drift_calibration_error{head="runtime"}"#,
        r#"drift_samples_total{head="runtime"} 4"#,
        r#"drift_samples_total{head="read"} 4"#,
        r#"drift_samples_total{head="write"} 4"#,
        r#"drift_alerts_total{head="runtime"} 0"#,
        "# TYPE drift_outcomes_total counter",
        r#"drift_outcomes_total{head="runtime",status="completed"} 4"#,
        r#"drift_outcomes_total{head="runtime",status="killed"} 0"#,
        r#"drift_outcomes_total{head="runtime",status="requeued"} 0"#,
        "drift_weight_updates_total 1",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }
}

/// The fleet plane's metric surface is pinned the same way: the
/// collector's `fleet_obs_*` instruments and the SLO engine's `slo_*`
/// series must keep exactly the documented names and labels — they are
/// what fleet dashboards and the burn-rate alert rules key on.
#[test]
fn fleet_plane_metric_names_and_labels_are_pinned() {
    use prionn_observe::{CollectorConfig, FleetCollector, ShardTarget, SloSource, SloSpec};

    let telemetry = Telemetry::new();
    let collector = FleetCollector::new(CollectorConfig {
        shards: vec![ShardTarget {
            name: "0".into(),
            // Nothing listens here: the surface must exist (with up=0)
            // even when every scrape fails.
            ops_addr: "127.0.0.1:1".into(),
        }],
        telemetry: Some(telemetry.clone()),
        slos: vec![SloSpec::new(
            "predict_p99",
            0.99,
            SloSource::LatencyBuckets {
                histogram: "serve_predict_seconds".into(),
                threshold: 0.25,
            },
        )],
        scrape_timeout: std::time::Duration::from_millis(200),
        ..CollectorConfig::default()
    });
    assert_eq!(collector.scrape_once(), 0, "dead target scrapes as down");

    let text = telemetry.prometheus();
    for series in [
        "# TYPE fleet_obs_shard_up gauge",
        "# TYPE fleet_obs_scrape_age_seconds gauge",
        "# TYPE fleet_obs_scrapes_total counter",
        "# TYPE fleet_obs_rounds_total counter",
        "# TYPE fleet_obs_shards_up gauge",
        "# TYPE slo_burn_rate gauge",
        "# TYPE slo_alert gauge",
        "# TYPE slo_alerts_total counter",
        r#"fleet_obs_shard_up{shard="0"} 0"#,
        r#"fleet_obs_scrapes_total{outcome="error",shard="0"} 1"#,
        "fleet_obs_rounds_total 1",
        "fleet_obs_shards_up 0",
        r#"slo_burn_rate{slo="predict_p99",window="fast_short"}"#,
        r#"slo_burn_rate{slo="predict_p99",window="fast_long"}"#,
        r#"slo_burn_rate{slo="predict_p99",window="slow"}"#,
        r#"slo_alert{slo="predict_p99"} 0"#,
        r#"slo_alerts_total{slo="predict_p99"} 0"#,
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }
    collector.shutdown();
}

/// The forecast_* metric surface is pinned the same way: the forecast
/// engine registers its instruments in the shared registry, and the ops
/// endpoint exposes its snapshot on `/forecast`. Renames break here first.
#[test]
fn forecast_metric_names_are_pinned_and_forecast_route_serves_json() {
    use prionn_forecast::{ForecastConfig, ForecastEngine, JobIoInterval};

    let telemetry = Telemetry::new();
    let engine = ForecastEngine::new(
        &telemetry,
        ForecastConfig {
            horizon_minutes: 120,
            lead_minutes: 5,
            ..ForecastConfig::default()
        },
    );
    engine.job_started(&JobIoInterval {
        start: 0,
        end: 3600,
        bandwidth: 2.5e8,
    });
    engine.tick();

    let text = telemetry.prometheus();
    for series in [
        "# TYPE forecast_aggregate_bandwidth gauge",
        "# TYPE forecast_horizon_bandwidth gauge",
        "# TYPE forecast_burst_threshold gauge",
        "# TYPE forecast_burst_active gauge",
        "# TYPE forecast_burst_alerts_total counter",
        "# TYPE forecast_samples_total counter",
        "# TYPE forecast_abs_error histogram",
        "# TYPE forecast_resident_jobs gauge",
        "# TYPE forecast_truncated_jobs gauge",
        "forecast_samples_total 1",
        "forecast_resident_jobs 1",
        "forecast_abs_error_count",
    ] {
        assert!(text.contains(series), "missing `{series}` in:\n{text}");
    }

    let server = OpsServer::start(
        "127.0.0.1:0",
        OpsOptions {
            telemetry: Some(telemetry.clone()),
            forecast: Some(engine.ops_probe()),
            ..OpsOptions::default()
        },
    )
    .unwrap();
    let resp = http_get(server.addr(), "/forecast");
    assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
    let parsed: serde_json::Value = serde_json::from_str(body_of(&resp)).unwrap();
    assert_eq!(parsed.get("active_jobs").unwrap().as_u64(), Some(1));
    assert_eq!(parsed.get("lead_minutes").unwrap().as_u64(), Some(5));
    assert!(parsed.get("aggregate_bps").unwrap().as_f64().unwrap() > 0.0);
    assert!(parsed.get("alerting").is_some());
    server.shutdown();

    // Without a probe the route degrades to a clear 404.
    let bare = OpsServer::start("127.0.0.1:0", OpsOptions::default()).unwrap();
    let resp = http_get(bare.addr(), "/forecast");
    assert!(resp.starts_with("HTTP/1.0 404"), "{resp}");
    assert!(body_of(&resp).contains("no forecast engine"), "{resp}");
    bare.shutdown();
}
