//! The flight recorder: bounded per-thread span rings with crash dumps.
//!
//! Tracing a serving hot path must never contend: each recording thread
//! owns a private ring, registered once in a global list, and writes to it
//! through a `try_lock` that only ever fails while a dump is reading that
//! ring — in which case the span is counted as dropped rather than making
//! the writer wait. Recording is therefore wait-free from the writer's
//! perspective: one uncontended atomic lock acquisition plus a ring push,
//! no allocation beyond the span's own strings.
//!
//! # Dumps
//!
//! [`FlightRecorder::dump_json`] renders the last
//! [`FlightConfig::retention`] of every ring plus a full metric snapshot
//! (when a [`Telemetry`] registry is attached). [`FlightRecorder::dump_to_file`]
//! writes it to `flight-<timestamp-micros>.json` in the configured dump
//! directory, and [`FlightRecorder::install_panic_hook`] chains a global
//! panic hook that does so automatically on *any* panic — including ones
//! later contained by `catch_unwind`, which is exactly when you want the
//! evidence preserved (the serving gateway catches replica panics and keeps
//! running; the dump is how you find out what the dying batch was doing).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use prionn_telemetry::Telemetry;

use crate::trace::SpanRecord;

/// Flight recorder sizing and retention.
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Spans kept per recording thread (oldest evicted first).
    pub per_thread_capacity: usize,
    /// How far back a dump reaches; spans older than this are filtered out
    /// of dumps (they may still sit in a quiet thread's ring).
    pub retention: Duration,
    /// Where `flight-*.json` dumps land; `None` = current directory.
    pub dump_dir: Option<PathBuf>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            per_thread_capacity: 512,
            retention: Duration::from_secs(30),
            dump_dir: None,
        }
    }
}

struct ThreadRing {
    label: String,
    ring: Mutex<VecDeque<SpanRecord>>,
}

struct RecorderInner {
    /// Distinguishes recorders in the thread-local ring cache.
    id: u64,
    epoch: Instant,
    per_thread_capacity: usize,
    retention: Duration,
    dump_dir: Mutex<Option<PathBuf>>,
    threads: Mutex<Vec<Arc<ThreadRing>>>,
    /// Spans lost to try_lock contention (a dump was reading the ring).
    contended_drops: AtomicU64,
    telemetry: Mutex<Option<Telemetry>>,
    dumps_written: AtomicU64,
    in_panic_dump: AtomicBool,
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // (recorder id, this thread's ring in that recorder). A linear scan:
    // real processes run one recorder; tests run a handful.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// The shared flight recorder handle. Cloning shares all rings.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field(
                "threads",
                &self.inner.threads.lock().map(|t| t.len()).unwrap_or(0),
            )
            .field("contended_drops", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with the given sizing.
    pub fn new(cfg: FlightConfig) -> Self {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                per_thread_capacity: cfg.per_thread_capacity.max(1),
                retention: cfg.retention,
                dump_dir: Mutex::new(cfg.dump_dir),
                threads: Mutex::new(Vec::new()),
                contended_drops: AtomicU64::new(0),
                telemetry: Mutex::new(None),
                dumps_written: AtomicU64::new(0),
                in_panic_dump: AtomicBool::new(false),
            }),
        }
    }

    /// Include a metric snapshot from `t` in every dump.
    pub fn attach_telemetry(&self, t: &Telemetry) {
        *lock(&self.inner.telemetry) = Some(t.clone());
    }

    /// Redirect future dumps to `dir` (created on first dump if missing).
    pub fn set_dump_dir(&self, dir: impl Into<PathBuf>) {
        *lock(&self.inner.dump_dir) = Some(dir.into());
    }

    /// Microseconds since this recorder was created (the span clock).
    pub fn now_micros(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Spans lost because a dump held the writing thread's ring.
    pub fn dropped(&self) -> u64 {
        self.inner.contended_drops.load(Ordering::Relaxed)
    }

    fn thread_ring(&self) -> Arc<ThreadRing> {
        let id = self.inner.id;
        THREAD_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(rid, _)| *rid == id) {
                return ring.clone();
            }
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{:?}", std::thread::current().id()));
            let ring = Arc::new(ThreadRing {
                label,
                ring: Mutex::new(VecDeque::with_capacity(self.inner.per_thread_capacity)),
            });
            lock(&self.inner.threads).push(ring.clone());
            cache.push((id, ring.clone()));
            ring
        })
    }

    /// Record a completed span into this thread's ring. Never blocks: if a
    /// dump is concurrently reading the ring, the span is dropped and
    /// counted instead.
    pub fn record(&self, rec: SpanRecord) {
        let ring = self.thread_ring();
        match ring.ring.try_lock() {
            Ok(mut r) => {
                if r.len() >= self.inner.per_thread_capacity {
                    r.pop_front();
                }
                r.push_back(rec);
            }
            Err(_) => {
                self.inner.contended_drops.fetch_add(1, Ordering::Relaxed);
            }
        };
    }

    /// Copy every ring's contents, sorted by start time. Blocks writers
    /// only for the clone of each ring in turn (writers fall back to the
    /// drop counter meanwhile).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let threads: Vec<Arc<ThreadRing>> = lock(&self.inner.threads).clone();
        let mut out = Vec::new();
        for t in &threads {
            out.extend(lock(&t.ring).iter().cloned());
        }
        out.sort_by_key(|s| (s.start_micros, s.span_id));
        out
    }

    /// Render a dump: per-thread spans within the retention window plus a
    /// metric snapshot (if telemetry is attached), as one JSON object.
    pub fn dump_json(&self, reason: &str) -> String {
        let now = self.now_micros();
        let retention_micros = self.inner.retention.as_micros() as u64;
        let cutoff = now.saturating_sub(retention_micros);
        let threads: Vec<Arc<ThreadRing>> = lock(&self.inner.threads).clone();
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"reason\":{},\"at_micros\":{now},\"retention_micros\":{retention_micros},\"spans_dropped\":{},\"threads\":[",
            json_str(reason),
            self.dropped(),
        ));
        let mut first_thread = true;
        for t in &threads {
            let spans: Vec<SpanRecord> = {
                let ring = lock(&t.ring);
                ring.iter()
                    .filter(|s| s.start_micros + s.duration_micros >= cutoff)
                    .cloned()
                    .collect()
            };
            if !first_thread {
                out.push(',');
            }
            first_thread = false;
            out.push_str(&format!("{{\"thread\":{},\"spans\":[", json_str(&t.label)));
            for (i, s) in spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&span_json(s));
            }
            out.push_str("]}");
        }
        out.push_str("],\"metrics\":");
        match lock(&self.inner.telemetry).as_ref() {
            Some(t) => out.push_str(&t.json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Write [`FlightRecorder::dump_json`] to `flight-<micros>-<n>.json` in
    /// the dump directory (current directory if unset), returning the path.
    pub fn dump_to_file(&self, reason: &str) -> io::Result<PathBuf> {
        let dir = lock(&self.inner.dump_dir)
            .clone()
            .unwrap_or_else(|| PathBuf::from("."));
        std::fs::create_dir_all(&dir)?;
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let n = self.inner.dumps_written.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flight-{ts}-{n}.json"));
        std::fs::write(&path, self.dump_json(reason))?;
        Ok(path)
    }

    /// Number of dump files written so far.
    pub fn dumps_written(&self) -> u64 {
        self.inner.dumps_written.load(Ordering::Relaxed)
    }

    /// Chain a global panic hook that writes a flight dump on every panic
    /// (even ones later contained by `catch_unwind`), then defers to the
    /// previously installed hook. Re-entrant panics inside the dump are
    /// swallowed by a guard flag. Call once per recorder.
    pub fn install_panic_hook(&self) {
        let recorder = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !recorder.inner.in_panic_dump.swap(true, Ordering::SeqCst) {
                let msg = panic_message(info);
                let reason = match info.location() {
                    Some(loc) => format!("panic at {}:{}: {msg}", loc.file(), loc.line()),
                    None => format!("panic: {msg}"),
                };
                let _ = recorder.dump_to_file(&reason);
                recorder.inner.in_panic_dump.store(false, Ordering::SeqCst);
            }
            prev(info);
        }));
    }
}

fn panic_message(info: &std::panic::PanicHookInfo<'_>) -> String {
    if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Render one span as a JSON object (shared by dumps and the `/traces`
/// ops route).
pub(crate) fn span_json(s: &SpanRecord) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"trace_id\":{},\"span_id\":{},\"parent_id\":{},\"name\":{},\"detail\":{},\"start_micros\":{},\"duration_micros\":{},\"links\":[",
        s.trace_id,
        s.span_id,
        s.parent_id,
        json_str(&s.name),
        json_str(&s.detail),
        s.start_micros,
        s.duration_micros,
    ));
    for (i, l) in s.links.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace_id\":{},\"span_id\":{}}}",
            l.trace_id, l.span_id
        ));
    }
    out.push_str("]}");
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanCtx;

    fn rec(cap: usize) -> FlightRecorder {
        FlightRecorder::new(FlightConfig {
            per_thread_capacity: cap,
            ..FlightConfig::default()
        })
    }

    fn span(id: u64, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id: id,
            span_id: id,
            parent_id: 0,
            name: format!("s{id}"),
            detail: String::new(),
            links: vec![SpanCtx {
                trace_id: 1,
                span_id: 1,
            }],
            start_micros: start,
            duration_micros: 1,
        }
    }

    #[test]
    fn rings_are_per_thread_and_bounded() {
        let r = rec(4);
        for i in 0..10 {
            r.record(span(i, i));
        }
        let main_spans = r.snapshot();
        assert_eq!(main_spans.len(), 4, "oldest evicted");
        assert_eq!(main_spans[0].trace_id, 6);
        std::thread::scope(|s| {
            let r2 = r.clone();
            s.spawn(move || {
                for i in 100..103 {
                    r2.record(span(i, i));
                }
            });
        });
        assert_eq!(r.snapshot().len(), 7, "second thread has its own ring");
    }

    #[test]
    fn snapshot_is_sorted_across_threads() {
        let r = rec(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..16 {
                        r.record(span(t * 100 + i, i * 4 + t));
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.len(), 64);
        assert!(snap
            .windows(2)
            .all(|w| w[0].start_micros <= w[1].start_micros));
    }

    #[test]
    fn dump_filters_by_retention_and_is_json() {
        let r = FlightRecorder::new(FlightConfig {
            per_thread_capacity: 16,
            retention: Duration::from_micros(0),
            dump_dir: None,
        });
        r.record(span(1, 0));
        // retention 0 => only spans ending "now" survive; a span that
        // started at recorder epoch 0 is long past by dump time.
        let json = r.dump_json("test");
        assert!(json.contains("\"reason\":\"test\""), "{json}");
        assert!(json.contains("\"spans\":[]"), "{json}");
        let t = Telemetry::new();
        t.counter("x_total", "").inc();
        r.attach_telemetry(&t);
        let json = r.dump_json("test2");
        assert!(json.contains("\"metrics\":{"), "{json}");
        assert!(json.contains("x_total"), "{json}");
    }

    #[test]
    fn dump_to_file_writes_flight_prefix() {
        let dir = std::env::temp_dir().join(format!("prionn-flight-test-{}", std::process::id()));
        let r = rec(8);
        r.set_dump_dir(&dir);
        r.record(span(1, r.now_micros()));
        let path = r.dump_to_file("unit").unwrap();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            name.starts_with("flight-") && name.ends_with(".json"),
            "{name}"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\":\"s1\""), "{body}");
        assert_eq!(r.dumps_written(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn span_json_escapes_strings() {
        let mut s = span(1, 2);
        s.detail = "a\"b\nc".into();
        let j = span_json(&s);
        assert!(j.contains("\"detail\":\"a\\\"b\\nc\""), "{j}");
        assert!(
            j.contains("\"links\":[{\"trace_id\":1,\"span_id\":1}]"),
            "{j}"
        );
    }
}
