//! # prionn-observe — tracing, flight recording, drift monitoring, ops
//!
//! PR 2's `prionn-telemetry` answers *how much*: counters, gauges, latency
//! histograms. This crate answers *which request* and *is the model still
//! good* — the two questions an online predictor serving a scheduler's
//! critical path gets asked when something goes wrong:
//!
//! * [`trace`] — request-scoped span trees. A [`Tracer`] hands every
//!   `Gateway::predict` call a fresh trace id that follows the request
//!   through queue admission, micro-batch fusion (the fused forward pass
//!   is its own trace, *linked* to every caller it fans in), and per-layer
//!   forward timings via an implicit thread-local context.
//! * [`flight`] — the flight recorder: bounded per-thread span rings
//!   written through a never-blocking `try_lock`, plus a chained global
//!   panic hook that dumps the recent window and a metric snapshot to
//!   `flight-<ts>.json` the moment anything panics — including replica
//!   panics later contained by `catch_unwind`.
//! * [`drift`] — model-quality monitors: rolling-window relativeAccuracy
//!   (paper Eq. 1) per prediction head, per-bin calibration error,
//!   weight-epoch staleness, and edge-triggered threshold events.
//! * [`ops`] — a dependency-free `std::net` HTTP endpoint serving
//!   `/metrics`, `/healthz`, `/readyz`, `/traces`, and `/flight` from one
//!   background thread — plus `/fleet/metrics`, `/fleet/healthz`, and
//!   `/fleet/traces` when a [`FleetCollector`] is attached.
//! * [`collector`] — the fleet plane: scrapes every shard's ops endpoint
//!   on a cadence, merges counters/gauges/histograms bucket-exactly, and
//!   stitches cross-shard traces back into one tree by trace id.
//! * [`slo`] — declarative SLO specs evaluated with multi-window
//!   burn-rate alerting (fast 5m/1h pair, slow 6h), exported as `slo_*`
//!   metrics and edge-triggered events a rollout can gate on.
//!
//! ```
//! use prionn_observe::{FlightConfig, FlightRecorder, Tracer};
//!
//! let recorder = FlightRecorder::new(FlightConfig::default());
//! let tracer = Tracer::new(&recorder);
//! let mut root = tracer.root("predict");
//! root.set_detail("scripts=1");
//! {
//!     let _admission = root.child("admission");
//! }
//! drop(root);
//! let spans = recorder.snapshot();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans.iter().filter(|s| s.parent_id == 0).count(), 1);
//! ```
//!
//! The crate depends only on `prionn-telemetry` and `std`, so it slots
//! *below* `nn`/`core`/`serve` in the dependency graph — which is what
//! lets the neural-net forward loop attach per-layer spans without a
//! dependency cycle. See `docs/OBSERVABILITY.md` and `DESIGN.md` §13.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collector;
pub mod drift;
pub mod flight;
pub mod ops;
pub mod slo;
pub mod trace;

pub use collector::{CollectorConfig, FleetCollector, ShardTarget};
pub use drift::{
    DriftConfig, DriftHead, DriftMonitor, DriftSnapshot, HeadSnapshot, OutcomeSample, OutcomeStatus,
};
pub use flight::{FlightConfig, FlightRecorder};
pub use ops::{ForecastProbe, OpsOptions, OpsServer, Readiness, ReadyProbe, ReviseProbe};
pub use slo::{BurnWindows, SloEngine, SloSource, SloSpec, SloStatus};
pub use trace::{
    active, child_of_current, push_current, render_trace_tree, CurrentGuard, Span, SpanCtx,
    SpanRecord, Tracer,
};
