//! The fleet collector: scrapes every shard's ops endpoint, merges the
//! metrics into one fleet-wide surface, stitches cross-shard traces, and
//! drives the [`SloEngine`](crate::slo::SloEngine) over the merged view.
//!
//! One background thread, plain `std::net` HTTP/1.0 GETs (the ops server
//! speaks `Connection: close`, so "pooling" here means cached resolved
//! addresses and reused scrape buffers, not kept-alive sockets). A shard
//! that fails a scrape degrades the merged view — its `up` gauge drops to
//! 0 and its staleness grows — without failing the scrape round:
//! partial-fleet answers are the whole point of federation.
//!
//! The collector exposes (via the ops server's `/fleet/*` routes or
//! directly):
//!
//! * [`FleetCollector::merged_prometheus`] — bucket-exact merged
//!   histograms, summed counters, per-shard labelled gauges;
//! * [`FleetCollector::healthz`] — quorum-aware: `200` while at least
//!   `quorum` shards answered their latest scrape;
//! * [`FleetCollector::trace_json`] — a trace id looked up across every
//!   shard's `/traces` plus the collector-local recorder (where the
//!   router's client spans land), merged into one span set.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use prionn_telemetry::{merge_shards, Counter, Gauge, MetricsSnapshot, Telemetry};

use crate::flight::{span_json, FlightRecorder};
use crate::slo::{SloEngine, SloSource, SloSpec};

/// One scrape target.
#[derive(Debug, Clone)]
pub struct ShardTarget {
    /// Stable shard label carried on per-shard gauges.
    pub name: String,
    /// The shard's ops endpoint, `host:port`.
    pub ops_addr: String,
}

/// Collector construction knobs.
#[derive(Clone)]
pub struct CollectorConfig {
    /// Shards to scrape.
    pub shards: Vec<ShardTarget>,
    /// Scrape cadence for the background thread.
    pub interval: Duration,
    /// Per-request connect/read timeout.
    pub scrape_timeout: Duration,
    /// Minimum shards that must have answered their latest scrape for
    /// [`FleetCollector::healthz`] to report healthy. 0 = majority.
    pub quorum: usize,
    /// Registry for the collector's own `fleet_obs_*` and `slo_*`
    /// instruments; a fresh one when `None`.
    pub telemetry: Option<Telemetry>,
    /// SLOs evaluated over the merged surface after every scrape round.
    pub slos: Vec<SloSpec>,
    /// Recorder holding collector-process spans (the router's client
    /// spans, when router and collector share a process); merged into
    /// [`FleetCollector::trace_json`] answers.
    pub local_recorder: Option<FlightRecorder>,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            shards: Vec::new(),
            interval: Duration::from_secs(5),
            scrape_timeout: Duration::from_secs(2),
            quorum: 0,
            telemetry: None,
            slos: Vec::new(),
            local_recorder: None,
        }
    }
}

struct ShardScrapeState {
    target: ShardTarget,
    /// Cached resolved address, refreshed on failure.
    addr: Mutex<Option<SocketAddr>>,
    up: Gauge,
    age: Gauge,
    scrapes_ok: Counter,
    scrapes_err: Counter,
    /// Latest successful scrape: (monotonic instant, parsed snapshot).
    last: Mutex<Option<(Instant, MetricsSnapshot)>>,
}

struct CollectorInner {
    cfg: CollectorConfig,
    shards: Vec<ShardScrapeState>,
    telemetry: Telemetry,
    slo: SloEngine,
    epoch: Instant,
    stop: AtomicBool,
    /// Cached merged exposition from the latest round.
    merged: Mutex<String>,
    rounds: Counter,
    shards_up: Gauge,
}

/// The running collector. Cloning shares state; the background thread
/// stops when [`shutdown`](FleetCollector::shutdown) is called (also on
/// drop of the last handle's join guard — tests usually call shutdown).
#[derive(Clone)]
pub struct FleetCollector {
    inner: Arc<CollectorInner>,
    handle: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
}

impl FleetCollector {
    /// Build a collector and start its scrape thread.
    pub fn spawn(cfg: CollectorConfig) -> FleetCollector {
        let collector = Self::new(cfg);
        let loop_inner = Arc::clone(&collector.inner);
        let handle = std::thread::Builder::new()
            .name("prionn-fleet-collector".into())
            .spawn(move || {
                while !loop_inner.stop.load(Ordering::SeqCst) {
                    scrape_round(&loop_inner);
                    let mut waited = Duration::ZERO;
                    // Sleep in small steps so shutdown is prompt.
                    while waited < loop_inner.cfg.interval {
                        if loop_inner.stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let step = Duration::from_millis(25).min(loop_inner.cfg.interval - waited);
                        std::thread::sleep(step);
                        waited += step;
                    }
                }
            })
            .expect("spawn collector thread");
        *collector.handle.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        collector
    }

    /// Build a collector without a scrape thread; drive it with
    /// [`scrape_once`](Self::scrape_once). For tests and demos.
    pub fn new(cfg: CollectorConfig) -> FleetCollector {
        let telemetry = cfg.telemetry.clone().unwrap_or_default();
        let slo = SloEngine::new(cfg.slos.clone(), &telemetry);
        let shards = cfg
            .shards
            .iter()
            .map(|target| ShardScrapeState {
                target: target.clone(),
                addr: Mutex::new(None),
                up: telemetry.gauge_with(
                    "fleet_obs_shard_up",
                    "1 while the collector's latest scrape of the shard succeeded",
                    &[("shard", &target.name)],
                ),
                age: telemetry.gauge_with(
                    "fleet_obs_scrape_age_seconds",
                    "Seconds since the shard's last successful scrape",
                    &[("shard", &target.name)],
                ),
                scrapes_ok: telemetry.counter_with(
                    "fleet_obs_scrapes_total",
                    "Scrape attempts by outcome",
                    &[("shard", &target.name), ("outcome", "ok")],
                ),
                scrapes_err: telemetry.counter_with(
                    "fleet_obs_scrapes_total",
                    "Scrape attempts by outcome",
                    &[("shard", &target.name), ("outcome", "error")],
                ),
                last: Mutex::new(None),
            })
            .collect();
        let rounds = telemetry.counter("fleet_obs_rounds_total", "Completed scrape rounds");
        let shards_up = telemetry.gauge(
            "fleet_obs_shards_up",
            "Shards whose latest scrape succeeded",
        );
        FleetCollector {
            inner: Arc::new(CollectorInner {
                shards,
                telemetry,
                slo,
                epoch: Instant::now(),
                stop: AtomicBool::new(false),
                merged: Mutex::new(String::new()),
                rounds,
                shards_up,
                cfg,
            }),
            handle: Arc::new(Mutex::new(None)),
        }
    }

    /// Run one synchronous scrape round: scrape every shard, merge, feed
    /// the SLO engine, refresh gauges. Returns how many shards answered.
    pub fn scrape_once(&self) -> usize {
        scrape_round(&self.inner)
    }

    /// The collector's registry (merged-view consumers scrape this too —
    /// `fleet_obs_*` and `slo_*` live here).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The SLO engine evaluated over the merged surface.
    pub fn slo(&self) -> &SloEngine {
        &self.inner.slo
    }

    /// The merged fleet view in Prometheus text exposition, with the
    /// collector's own instruments appended — one scrape shows federated
    /// shard metrics, scrape health, and SLO burn together.
    pub fn merged_prometheus(&self) -> String {
        let merged = self
            .inner
            .merged
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        format!("{merged}{}", self.inner.telemetry.prometheus())
    }

    /// Quorum-aware health: `(healthy, detail)`. Healthy while at least
    /// `quorum` shards (majority when the config says 0) answered their
    /// latest scrape.
    pub fn healthz(&self) -> (bool, String) {
        let up = self.shards_up();
        let total = self.inner.shards.len();
        let quorum = if self.inner.cfg.quorum == 0 {
            total / 2 + 1
        } else {
            self.inner.cfg.quorum
        };
        (
            up >= quorum.min(total.max(1)),
            format!("shards_up={up}/{total} quorum={quorum}"),
        )
    }

    /// How many shards answered their latest scrape.
    pub fn shards_up(&self) -> usize {
        self.inner
            .shards
            .iter()
            .filter(|s| s.last.lock().unwrap_or_else(|e| e.into_inner()).is_some())
            .filter(|s| s.up.value() >= 1.0)
            .count()
    }

    /// Look one trace up across the fleet: every shard's `/traces` plus
    /// the collector-local recorder, merged into
    /// `{"trace_id":N,"spans":[...],"shards_answered":K}`.
    pub fn trace_json(&self, trace_id: u64) -> String {
        let mut spans: Vec<String> = Vec::new();
        let mut answered = 0usize;
        for shard in &self.inner.shards {
            if let Some(body) = http_get(
                &shard.target.ops_addr,
                "/traces",
                self.inner.cfg.scrape_timeout,
                &shard.addr,
            ) {
                answered += 1;
                spans.extend(extract_trace_spans(&body, trace_id));
            }
        }
        if let Some(rec) = &self.inner.cfg.local_recorder {
            for s in rec.snapshot() {
                if s.trace_id == trace_id {
                    spans.push(span_json(&s));
                }
            }
        }
        format!(
            "{{\"trace_id\":{trace_id},\"shards_answered\":{answered},\"spans\":[{}]}}",
            spans.join(",")
        )
    }

    /// Stop the scrape thread (if one was spawned) and join it.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

/// One scrape round over every shard. Returns how many answered.
fn scrape_round(inner: &CollectorInner) -> usize {
    let mut up = 0usize;
    let mut merged_inputs: Vec<(String, MetricsSnapshot)> = Vec::new();
    for shard in &inner.shards {
        match http_get(
            &shard.target.ops_addr,
            "/metrics",
            inner.cfg.scrape_timeout,
            &shard.addr,
        ) {
            Some(body) => {
                let snap = MetricsSnapshot::parse(&body);
                shard.scrapes_ok.inc();
                shard.up.set(1.0);
                shard.age.set(0.0);
                *shard.last.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some((Instant::now(), snap.clone()));
                merged_inputs.push((shard.target.name.clone(), snap));
                up += 1;
            }
            None => {
                shard.scrapes_err.inc();
                shard.up.set(0.0);
                // Keep the stale snapshot out of the merge but report how
                // stale the shard has gone.
                let last = shard.last.lock().unwrap_or_else(|e| e.into_inner());
                if let Some((at, _)) = last.as_ref() {
                    shard.age.set(at.elapsed().as_secs_f64());
                }
            }
        }
    }
    inner.shards_up.set(up as f64);
    inner.rounds.inc();
    let merged = merge_shards(&merged_inputs);
    for family in &merged.skipped {
        inner
            .telemetry
            .events()
            .record("fleet_obs_merge_skipped", format!("family={family}"), 0);
    }
    let now_s = inner.epoch.elapsed().as_secs_f64();
    feed_slos(inner, &merged.snapshot, now_s);
    inner.slo.evaluate(now_s);
    *inner.merged.lock().unwrap_or_else(|e| e.into_inner()) = merged.to_prometheus();
    up
}

/// Extract good/bad counts for every SLO spec from the merged snapshot.
fn feed_slos(inner: &CollectorInner, snap: &MetricsSnapshot, now_s: f64) {
    for spec in inner.slo.specs() {
        match &spec.source {
            SloSource::LatencyBuckets {
                histogram,
                threshold,
            } => {
                if let Some(h) = snap.histogram(histogram, &[]) {
                    let good = h.count_le(*threshold);
                    inner
                        .slo
                        .observe_totals(&spec.name, good, h.count.saturating_sub(good), now_s);
                }
            }
            SloSource::ErrorRatio { total, bad } => {
                let total = snap.counter_sum(total, &[]).max(0.0) as u64;
                let bad = snap.counter_sum(bad, &[]).max(0.0) as u64;
                inner
                    .slo
                    .observe_totals(&spec.name, total.saturating_sub(bad), bad, now_s);
            }
            SloSource::GaugeFloor { gauge, floor } => {
                let worst = snap
                    .gauges
                    .iter()
                    .filter(|g| &g.name == gauge)
                    .map(|g| g.value)
                    .fold(f64::INFINITY, f64::min);
                if worst.is_finite() {
                    let bad = (worst < *floor) as u64;
                    inner.slo.observe_delta(&spec.name, 1 - bad, bad, now_s);
                }
            }
            SloSource::GaugeCeiling { gauge, ceiling } => {
                let worst = snap
                    .gauges
                    .iter()
                    .filter(|g| &g.name == gauge)
                    .map(|g| g.value)
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst.is_finite() {
                    let bad = (worst > *ceiling) as u64;
                    inner.slo.observe_delta(&spec.name, 1 - bad, bad, now_s);
                }
            }
        }
    }
}

/// Minimal HTTP/1.0 GET against an ops endpoint. Returns the body on a
/// `200`, `None` on anything else. Caches the resolved address in `addr`.
fn http_get(
    endpoint: &str,
    path: &str,
    timeout: Duration,
    addr: &Mutex<Option<SocketAddr>>,
) -> Option<String> {
    let cached = *addr.lock().unwrap_or_else(|e| e.into_inner());
    let target = match cached {
        Some(a) => a,
        None => {
            let resolved = endpoint.to_socket_addrs().ok()?.next()?;
            *addr.lock().unwrap_or_else(|e| e.into_inner()) = Some(resolved);
            resolved
        }
    };
    let result = (|| {
        let mut stream = TcpStream::connect_timeout(&target, timeout).ok()?;
        stream.set_read_timeout(Some(timeout)).ok()?;
        stream.set_write_timeout(Some(timeout)).ok()?;
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: {endpoint}\r\n\r\n").as_bytes())
            .ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        let (head, body) = response.split_once("\r\n\r\n")?;
        head.starts_with("HTTP/1.0 200").then(|| body.to_string())
    })();
    if result.is_none() {
        // Drop the cached address so a replaced shard re-resolves.
        *addr.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
    result
}

/// Pull the span objects for `trace_id` out of a `/traces` JSON document
/// without a full JSON parser: find `"trace_id":<id>,"spans":[`, then
/// bracket-match to the array's end, honouring strings and escapes.
fn extract_trace_spans(traces_json: &str, trace_id: u64) -> Vec<String> {
    let needle = format!("\"trace_id\":{trace_id},\"spans\":[");
    let Some(at) = traces_json.find(&needle) else {
        return Vec::new();
    };
    let body = &traces_json[at + needle.len()..];
    let Some(end) = matching_bracket_end(body) else {
        return Vec::new();
    };
    split_top_level_objects(&body[..end])
}

/// Index of the `]` closing an array whose `[` was just consumed.
fn matching_bracket_end(s: &str) -> Option<usize> {
    let mut depth = 1i32;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split `{...},{...},...` into its top-level object strings.
fn split_top_level_objects(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = None;
    for (i, c) in s.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => {
                if depth == 0 && c == '{' {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' | ']' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(from) = start.take() {
                        out.push(s[from..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_span_extraction_handles_nesting_and_strings() {
        let doc = concat!(
            "{\"traces\":[",
            "{\"trace_id\":7,\"spans\":[",
            "{\"span_id\":1,\"name\":\"a[}]\",\"links\":[{\"trace_id\":9,\"span_id\":2}]},",
            "{\"span_id\":2,\"name\":\"b\\\"]\",\"links\":[]}",
            "]},",
            "{\"trace_id\":8,\"spans\":[{\"span_id\":3,\"name\":\"c\",\"links\":[]}]}",
            "]}"
        );
        let spans = extract_trace_spans(doc, 7);
        assert_eq!(spans.len(), 2, "{spans:?}");
        assert!(spans[0].contains("\"span_id\":1"));
        assert!(spans[1].contains("\"span_id\":2"));
        assert!(extract_trace_spans(doc, 8).len() == 1);
        assert!(extract_trace_spans(doc, 99).is_empty());
    }

    #[test]
    fn healthz_quorum_math() {
        let cfg = CollectorConfig {
            shards: vec![
                ShardTarget {
                    name: "0".into(),
                    ops_addr: "127.0.0.1:1".into(),
                },
                ShardTarget {
                    name: "1".into(),
                    ops_addr: "127.0.0.1:1".into(),
                },
                ShardTarget {
                    name: "2".into(),
                    ops_addr: "127.0.0.1:1".into(),
                },
            ],
            scrape_timeout: Duration::from_millis(50),
            ..CollectorConfig::default()
        };
        let c = FleetCollector::new(cfg);
        // Nothing scraped yet: majority quorum of 3 is 2, zero up.
        let (healthy, detail) = c.healthz();
        assert!(!healthy, "{detail}");
        assert!(detail.contains("quorum=2"), "{detail}");
    }
}
