//! Request-scoped span trees with cross-trace fan-in links.
//!
//! A [`Tracer`] allocates trace/span ids and records completed spans into a
//! [`FlightRecorder`]. The shape mirrors the
//! serving path it instruments:
//!
//! * every `Gateway::predict` call opens a **root span** — a fresh trace id
//!   that follows the request through admission and the queue;
//! * the replica's **fused forward** is a trace of its own (one batch serves
//!   many callers, so it cannot live inside any single caller's tree) and
//!   carries a [`SpanCtx`] *link* to every caller trace it fans in, while
//!   each caller's tree gains a `fused` child linking back — the two trees
//!   reference each other without either owning the other;
//! * per-layer forward timings attach to the fused trace through an
//!   *implicit* thread-local context ([`push_current`] / [`child_of_current`]),
//!   so the neural-net substrate needs no tracing parameters threaded
//!   through its API.
//!
//! A disabled tracer ([`Tracer::disabled`]) costs one branch per call site:
//! spans are zero-sized no-ops and no allocation happens.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::flight::FlightRecorder;

/// A span's coordinates: which trace it belongs to and which span it is.
///
/// `SpanCtx::NONE` (all zeros) means "not traced" and is safe to propagate
/// through job structs unconditionally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SpanCtx {
    /// Trace id; 0 = untraced.
    pub trace_id: u64,
    /// Span id within the trace; 0 = untraced.
    pub span_id: u64,
}

impl SpanCtx {
    /// The untraced context.
    pub const NONE: SpanCtx = SpanCtx {
        trace_id: 0,
        span_id: 0,
    };

    /// True for the untraced context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }
}

/// One completed span as stored in the flight recorder.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the tracer).
    pub span_id: u64,
    /// Parent span id within the same trace; 0 for roots.
    pub parent_id: u64,
    /// Span name, e.g. `predict`, `admission`, `layer:3.conv2d`.
    pub name: String,
    /// Free-form detail, e.g. `scripts=4`.
    pub detail: String,
    /// Cross-trace references (fused-batch fan-in/fan-out).
    pub links: Vec<SpanCtx>,
    /// Microseconds since the recorder's epoch at span start.
    pub start_micros: u64,
    /// Span duration in microseconds (0 for instantaneous events).
    pub duration_micros: u64,
}

struct TracerInner {
    recorder: FlightRecorder,
    next_id: AtomicU64,
}

/// Allocates span ids and records completed spans. Cloning shares state;
/// the default tracer is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer recording into `recorder`.
    pub fn new(recorder: &FlightRecorder) -> Self {
        Self::with_namespace(recorder, 0)
    }

    /// A tracer whose trace/span ids carry `namespace` in their top 16
    /// bits. Ids are allocated from a per-process counter starting at 1,
    /// so two processes' tracers hand out *colliding* ids — fatal once
    /// their spans are stitched into one fleet-wide trace. Give the
    /// router and every shard a distinct namespace and the low 48 bits
    /// (2^48 ids) never overlap across the fleet.
    pub fn with_namespace(recorder: &FlightRecorder, namespace: u16) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                recorder: recorder.clone(),
                next_id: AtomicU64::new(((namespace as u64) << 48) | 1),
            })),
        }
    }

    /// True when spans are actually recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn fresh_id(inner: &TracerInner) -> u64 {
        inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Open a root span: a fresh trace. Records on drop.
    pub fn root(&self, name: impl Into<String>) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let trace_id = Self::fresh_id(inner);
        let span_id = Self::fresh_id(inner);
        Span::open(inner.clone(), trace_id, span_id, 0, name.into())
    }

    /// Open a child span under an explicit parent context. A no-op span is
    /// returned when the tracer is disabled or `parent` is untraced.
    pub fn span_within(&self, parent: SpanCtx, name: impl Into<String>) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        if parent.is_none() {
            return Span { state: None };
        }
        let span_id = Self::fresh_id(inner);
        Span::open(
            inner.clone(),
            parent.trace_id,
            span_id,
            parent.span_id,
            name.into(),
        )
    }

    /// Record an instantaneous event span under `parent` immediately (no
    /// guard to hold — useful for marking progress that must be visible in
    /// a crash dump even if the surrounding span never completes).
    pub fn instant(
        &self,
        parent: SpanCtx,
        name: impl Into<String>,
        detail: impl Into<String>,
        links: Vec<SpanCtx>,
    ) {
        let Some(inner) = &self.inner else { return };
        if parent.is_none() {
            return;
        }
        let span_id = Self::fresh_id(inner);
        let now = inner.recorder.now_micros();
        inner.recorder.record(SpanRecord {
            trace_id: parent.trace_id,
            span_id,
            parent_id: parent.span_id,
            name: name.into(),
            detail: detail.into(),
            links,
            start_micros: now,
            duration_micros: 0,
        });
    }
}

struct ActiveSpan {
    inner: Arc<TracerInner>,
    ctx: SpanCtx,
    parent_id: u64,
    name: String,
    detail: String,
    links: Vec<SpanCtx>,
    start_micros: u64,
    started: Instant,
}

/// An open span; records itself into the flight recorder on drop.
///
/// A `Span` from a disabled tracer is inert: `ctx()` is
/// [`SpanCtx::NONE`] and all mutators are no-ops.
pub struct Span {
    state: Option<ActiveSpan>,
}

impl Span {
    fn open(
        inner: Arc<TracerInner>,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        name: String,
    ) -> Span {
        let start_micros = inner.recorder.now_micros();
        Span {
            state: Some(ActiveSpan {
                inner,
                ctx: SpanCtx { trace_id, span_id },
                parent_id,
                name,
                detail: String::new(),
                links: Vec::new(),
                start_micros,
                started: Instant::now(),
            }),
        }
    }

    /// This span's context (NONE when not recording).
    pub fn ctx(&self) -> SpanCtx {
        self.state.as_ref().map(|s| s.ctx).unwrap_or(SpanCtx::NONE)
    }

    /// True when the span will be recorded on drop.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Open a child span of this one.
    pub fn child(&self, name: impl Into<String>) -> Span {
        match &self.state {
            Some(s) => {
                let span_id = Tracer::fresh_id(&s.inner);
                Span::open(
                    s.inner.clone(),
                    s.ctx.trace_id,
                    span_id,
                    s.ctx.span_id,
                    name.into(),
                )
            }
            None => Span { state: None },
        }
    }

    /// Attach a cross-trace link (fused-batch fan-in).
    pub fn add_link(&mut self, ctx: SpanCtx) {
        if let Some(s) = &mut self.state {
            if !ctx.is_none() {
                s.links.push(ctx);
            }
        }
    }

    /// Attach free-form detail (last call wins).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if let Some(s) = &mut self.state {
            s.detail = detail.into();
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let duration_micros = s.started.elapsed().as_micros() as u64;
            s.inner.recorder.record(SpanRecord {
                trace_id: s.ctx.trace_id,
                span_id: s.ctx.span_id,
                parent_id: s.parent_id,
                name: s.name,
                detail: s.detail,
                links: s.links,
                start_micros: s.start_micros,
                duration_micros,
            });
        }
    }
}

// The implicit context stack: lets deep layers (the nn crate's forward
// loop) attach child spans without tracing parameters in their signatures.
thread_local! {
    static CURRENT: RefCell<Vec<(Tracer, SpanCtx)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard from [`push_current`]; pops the context on drop.
pub struct CurrentGuard {
    pushed: bool,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        if self.pushed {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// Make `(tracer, ctx)` the current implicit context for this thread until
/// the returned guard drops. Disabled tracers and untraced contexts push
/// nothing, keeping [`active`] a reliable fast-path check.
pub fn push_current(tracer: &Tracer, ctx: SpanCtx) -> CurrentGuard {
    if !tracer.enabled() || ctx.is_none() {
        return CurrentGuard { pushed: false };
    }
    CURRENT.with(|c| c.borrow_mut().push((tracer.clone(), ctx)));
    CurrentGuard { pushed: true }
}

/// True when this thread has an implicit trace context. Cheap enough to
/// call per layer on the forward path.
pub fn active() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Open a child span under the current implicit context, or `None` when no
/// context is active. The name closure only runs when a span is actually
/// opened, so callers can defer `format!` off the untraced fast path.
pub fn child_of_current(name: impl FnOnce() -> String) -> Option<Span> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let (tracer, ctx) = cur.last()?;
        Some(tracer.span_within(*ctx, name()))
    })
}

/// Narrow the implicit context to `ctx` (a span of the already-current
/// trace), reusing the active tracer, until the guard drops. Lets an
/// intermediate layer nest *its callees'* spans under its own span without
/// holding a tracer handle. No-op when no context is active or `ctx` is
/// untraced.
pub fn extend_current(ctx: SpanCtx) -> CurrentGuard {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        match cur.last() {
            Some((tracer, _)) if !ctx.is_none() => {
                let tracer = tracer.clone();
                cur.push((tracer, ctx));
                CurrentGuard { pushed: true }
            }
            _ => CurrentGuard { pushed: false },
        }
    })
}

/// Render one trace from `spans` as an indented ASCII tree, following
/// fused-batch links one hop (linked spans are annotated, not inlined).
/// Spans from other traces are ignored.
pub fn render_trace_tree(spans: &[SpanRecord], trace_id: u64) -> String {
    let mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    let mut out = String::new();
    fn emit(out: &mut String, all: &[&SpanRecord], parent: u64, depth: usize) {
        let mut children: Vec<&&SpanRecord> =
            all.iter().filter(|s| s.parent_id == parent).collect();
        children.sort_by_key(|s| (s.start_micros, s.span_id));
        for s in children {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("- {} [{} us]", s.name, s.duration_micros));
            if !s.detail.is_empty() {
                out.push_str(&format!(" {}", s.detail));
            }
            for l in &s.links {
                out.push_str(&format!(" -> link trace={} span={}", l.trace_id, l.span_id));
            }
            out.push('\n');
            emit(out, all, s.span_id, depth + 1);
        }
    }
    out.push_str(&format!("trace {trace_id}\n"));
    emit(&mut out, &mine, 0, 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightConfig, FlightRecorder};

    fn recorder() -> FlightRecorder {
        FlightRecorder::new(FlightConfig::default())
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        let mut root = t.root("r");
        assert!(!root.is_recording());
        assert_eq!(root.ctx(), SpanCtx::NONE);
        root.add_link(SpanCtx {
            trace_id: 1,
            span_id: 1,
        });
        root.set_detail("x");
        let child = root.child("c");
        assert!(!child.is_recording());
    }

    #[test]
    fn extend_current_narrows_the_implicit_context() {
        let rec = recorder();
        let t = Tracer::new(&rec);
        let root = t.root("r");
        let root_ctx = root.ctx();
        {
            let _g = push_current(&t, root_ctx);
            let mid = child_of_current(|| "mid".to_string()).unwrap();
            {
                let _n = extend_current(mid.ctx());
                let leaf = child_of_current(|| "leaf".to_string()).unwrap();
                assert_eq!(leaf.ctx().trace_id, root_ctx.trace_id);
            }
            // Context restored after the guard drops.
            let sibling = child_of_current(|| "sibling".to_string()).unwrap();
            drop(sibling);
            drop(mid);
        }
        // Outside any context the narrowing guard is a no-op.
        let _noop = extend_current(root_ctx);
        assert!(child_of_current(|| "orphan".to_string()).is_none());
        drop(root);
        let spans = rec.snapshot();
        let mid = spans.iter().find(|s| s.name == "mid").unwrap();
        let leaf = spans.iter().find(|s| s.name == "leaf").unwrap();
        let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(leaf.parent_id, mid.span_id);
        assert_eq!(sibling.parent_id, root_ctx.span_id);
        assert_eq!(mid.parent_id, root_ctx.span_id);
    }

    #[test]
    fn root_and_children_share_a_trace() {
        let rec = recorder();
        let t = Tracer::new(&rec);
        let root = t.root("predict");
        let root_ctx = root.ctx();
        {
            let child = root.child("admission");
            assert_eq!(child.ctx().trace_id, root_ctx.trace_id);
            assert_ne!(child.ctx().span_id, root_ctx.span_id);
        }
        drop(root);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        let admission = spans.iter().find(|s| s.name == "admission").unwrap();
        assert_eq!(admission.parent_id, root_ctx.span_id);
        let root_rec = spans.iter().find(|s| s.name == "predict").unwrap();
        assert_eq!(root_rec.parent_id, 0);
    }

    #[test]
    fn links_cross_traces() {
        let rec = recorder();
        let t = Tracer::new(&rec);
        let caller = t.root("predict");
        let mut fused = t.root("fused_forward");
        assert_ne!(fused.ctx().trace_id, caller.ctx().trace_id);
        fused.add_link(caller.ctx());
        let caller_ctx = caller.ctx();
        drop(fused);
        drop(caller);
        let spans = rec.snapshot();
        let fused = spans.iter().find(|s| s.name == "fused_forward").unwrap();
        assert_eq!(fused.links, vec![caller_ctx]);
    }

    #[test]
    fn implicit_context_nests_and_restores() {
        let rec = recorder();
        let t = Tracer::new(&rec);
        assert!(!active());
        assert!(child_of_current(|| unreachable!()).is_none());
        let root = t.root("outer");
        {
            let _g = push_current(&t, root.ctx());
            assert!(active());
            let layer = child_of_current(|| "layer:0.conv".to_string()).unwrap();
            assert_eq!(layer.ctx().trace_id, root.ctx().trace_id);
        }
        assert!(!active());
        // Disabled tracers never push, so `active` stays a cheap gate.
        let _g = push_current(&Tracer::disabled(), SpanCtx::NONE);
        assert!(!active());
    }

    #[test]
    fn namespaced_tracers_allocate_disjoint_ids() {
        let rec = recorder();
        let router = Tracer::with_namespace(&rec, 1);
        let shard = Tracer::with_namespace(&rec, 2);
        let a = router.root("r");
        let b = shard.root("s");
        assert_eq!(a.ctx().trace_id >> 48, 1);
        assert_eq!(b.ctx().trace_id >> 48, 2);
        assert_ne!(a.ctx().trace_id, b.ctx().trace_id);
        assert_ne!(a.ctx().span_id, b.ctx().span_id);
        // Adopting a foreign context keeps the foreign trace id while the
        // new span id stays in the adopter's namespace.
        let adopted = shard.span_within(a.ctx(), "adopted");
        assert_eq!(adopted.ctx().trace_id, a.ctx().trace_id);
        assert_eq!(adopted.ctx().span_id >> 48, 2);
    }

    #[test]
    fn instant_records_without_a_guard() {
        let rec = recorder();
        let t = Tracer::new(&rec);
        let root = t.root("r");
        t.instant(root.ctx(), "mark", "n=3", vec![]);
        // Recorded before the root guard drops.
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "mark");
        assert_eq!(spans[0].duration_micros, 0);
    }

    #[test]
    fn tree_rendering_indents_children_and_shows_links() {
        let rec = recorder();
        let t = Tracer::new(&rec);
        let mut root = t.root("predict");
        root.set_detail("scripts=1");
        let trace = root.ctx().trace_id;
        {
            let mut fused_link = root.child("fused");
            fused_link.add_link(SpanCtx {
                trace_id: 99,
                span_id: 7,
            });
        }
        drop(root);
        let txt = render_trace_tree(&rec.snapshot(), trace);
        assert!(txt.contains("- predict"), "{txt}");
        assert!(txt.contains("  - fused"), "{txt}");
        assert!(txt.contains("link trace=99 span=7"), "{txt}");
    }
}
