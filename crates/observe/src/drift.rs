//! Model-quality drift monitors for the online loop.
//!
//! PRIONN retrains every hundred submissions on the five hundred most
//! recent completed jobs, so prediction quality is a *moving* quantity: a
//! workload shift shows up first as decaying relativeAccuracy, long before
//! any latency metric notices. A [`DriftMonitor`] watches completed jobs as
//! they arrive (truth vs. the prediction served at submission) and keeps,
//! per prediction head:
//!
//! * **rolling relativeAccuracy** (paper Equation 1,
//!   `1 − |true − pred| / (max(true, pred) + ε)`) over a bounded window —
//!   exported as the `drift_relative_accuracy{head=...}` gauge;
//! * **per-bin calibration error** — the window is partitioned into bins by
//!   the true value's magnitude, and the count-weighted mean of each bin's
//!   relative bias `|mean_pred − mean_true| / max(mean_true, mean_pred)`
//!   becomes `drift_calibration_error{head=...}`. A model can hold a good
//!   *average* accuracy while systematically over-predicting short jobs and
//!   under-predicting long ones; binning catches exactly that;
//! * **weight-epoch staleness** — seconds since the serving weights last
//!   changed (`drift_weight_staleness_seconds`), the "has the online loop
//!   stalled" alarm.
//!
//! Crossing the accuracy threshold downward records a `drift_alert` event
//! in the telemetry span log (and bumps `drift_alerts_total`); crossing
//! back up records `drift_recovered`. Alerts are edge-triggered so a model
//! sitting below threshold does not flood the event ring.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use prionn_telemetry::{Counter, Gauge, Telemetry};

/// Which prediction head a sample belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftHead {
    /// Job runtime (minutes).
    Runtime,
    /// IO read volume.
    Read,
    /// IO write volume.
    Write,
}

impl DriftHead {
    /// The metric label for this head.
    pub fn label(self) -> &'static str {
        match self {
            DriftHead::Runtime => "runtime",
            DriftHead::Read => "read",
            DriftHead::Write => "write",
        }
    }

    fn index(self) -> usize {
        match self {
            DriftHead::Runtime => 0,
            DriftHead::Read => 1,
            DriftHead::Write => 2,
        }
    }
}

const HEADS: [DriftHead; 3] = [DriftHead::Runtime, DriftHead::Read, DriftHead::Write];

/// How an observed job left the system. Killed/requeued jobs still carry a
/// truth-vs-prediction pair (truth is whatever was observed at termination),
/// and folding them into the window keeps drift statistics and conformal
/// calibration free of survivorship bias — a monitor that only ever sees
/// jobs that ran to completion will happily report a well-calibrated model
/// while the kill policy silently eats its worst mistakes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeStatus {
    /// Job ran to natural completion.
    Completed,
    /// Job was terminated by the kill policy (revised lo exceeded the
    /// requested walltime) or by the user.
    Killed,
    /// Job was killed and put back on the queue for another attempt.
    Requeued,
}

impl OutcomeStatus {
    /// The metric label for this terminal status.
    pub fn label(self) -> &'static str {
        match self {
            OutcomeStatus::Completed => "completed",
            OutcomeStatus::Killed => "killed",
            OutcomeStatus::Requeued => "requeued",
        }
    }

    fn index(self) -> usize {
        match self {
            OutcomeStatus::Completed => 0,
            OutcomeStatus::Killed => 1,
            OutcomeStatus::Requeued => 2,
        }
    }
}

const STATUSES: [OutcomeStatus; 3] = [
    OutcomeStatus::Completed,
    OutcomeStatus::Killed,
    OutcomeStatus::Requeued,
];

/// One (truth, prediction) pair from a head's rolling window, exposed so
/// the conformal calibrator in `prionn-revise` can reuse the monitor's
/// window instead of maintaining a duplicate one.
#[derive(Clone, Copy, Debug)]
pub struct OutcomeSample {
    /// Observed true value (minutes for the runtime head, bytes/s for IO).
    pub truth: f64,
    /// The prediction that was served for this job.
    pub predicted: f64,
    /// Calibration bin the truth fell into.
    pub bin: usize,
}

/// Drift-monitor tuning.
#[derive(Clone, Debug)]
pub struct DriftConfig {
    /// Rolling window length per head (completed jobs).
    pub window: usize,
    /// Samples required in a head's window before alerts can fire.
    pub min_samples: usize,
    /// Rolling relativeAccuracy below this raises `drift_alert`.
    pub accuracy_threshold: f64,
    /// Calibration bins per head.
    pub bins: usize,
    /// Upper edge for runtime binning (values clamp into the last bin).
    pub runtime_bin_max: f64,
    /// Upper edge for IO-head binning.
    pub io_bin_max: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 256,
            min_samples: 16,
            accuracy_threshold: 0.5,
            bins: 8,
            // The paper's runtime range: Cab jobs up to 16 hours.
            runtime_bin_max: 960.0,
            io_bin_max: 10_000.0,
        }
    }
}

/// Paper Equation 1, duplicated from `prionn-core` (this crate sits below
/// `core` in the dependency graph).
fn relative_accuracy(truth: f64, pred: f64) -> f64 {
    let denom = truth.max(pred) + f64::EPSILON;
    1.0 - (truth - pred).abs() / denom
}

#[derive(Clone, Copy, Default)]
struct BinStats {
    count: u64,
    sum_truth: f64,
    sum_pred: f64,
}

struct HeadState {
    /// (accuracy, (truth, predicted), bin) — enough to undo a sample when
    /// it slides out of the window.
    window: std::collections::VecDeque<(f64, (f64, f64), usize)>,
    sum_acc: f64,
    bins: Vec<BinStats>,
    alerting: bool,
    samples: u64,
    acc_gauge: Gauge,
    calib_gauge: Gauge,
    sample_counter: Counter,
    alert_counter: Counter,
    status_counters: [Counter; 3],
}

struct DriftInner {
    cfg: DriftConfig,
    telemetry: Telemetry,
    heads: [Mutex<HeadState>; 3],
    staleness: Gauge,
    weight_updates: Counter,
    last_weight_update: Mutex<Instant>,
}

/// Rolling model-quality monitor. Cloning shares state; all methods take
/// `&self` and are thread-safe.
#[derive(Clone)]
pub struct DriftMonitor {
    inner: Arc<DriftInner>,
}

impl std::fmt::Debug for DriftMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftMonitor").finish()
    }
}

impl DriftMonitor {
    /// Build a monitor registering its gauges/counters in `telemetry`.
    pub fn new(telemetry: &Telemetry, cfg: DriftConfig) -> Self {
        let head_state = |h: DriftHead| {
            let l = [("head", h.label())];
            Mutex::new(HeadState {
                window: std::collections::VecDeque::with_capacity(cfg.window.max(1)),
                sum_acc: 0.0,
                bins: vec![BinStats::default(); cfg.bins.max(1)],
                alerting: false,
                samples: 0,
                acc_gauge: telemetry.gauge_with(
                    "drift_relative_accuracy",
                    "Rolling-window relativeAccuracy (paper Eq. 1) per prediction head",
                    &l,
                ),
                calib_gauge: telemetry.gauge_with(
                    "drift_calibration_error",
                    "Count-weighted per-bin relative bias over the rolling window",
                    &l,
                ),
                sample_counter: telemetry.counter_with(
                    "drift_samples_total",
                    "Completed jobs folded into the drift monitor",
                    &l,
                ),
                alert_counter: telemetry.counter_with(
                    "drift_alerts_total",
                    "Rolling accuracy fell below the alert threshold",
                    &l,
                ),
                status_counters: STATUSES.map(|st| {
                    telemetry.counter_with(
                        "drift_outcomes_total",
                        "Observed outcomes folded into the drift monitor, by terminal status",
                        &[("head", h.label()), ("status", st.label())],
                    )
                }),
            })
        };
        DriftMonitor {
            inner: Arc::new(DriftInner {
                telemetry: telemetry.clone(),
                staleness: telemetry.gauge(
                    "drift_weight_staleness_seconds",
                    "Seconds since serving weights last changed",
                ),
                weight_updates: telemetry.counter(
                    "drift_weight_updates_total",
                    "Weight publishes observed by the drift monitor",
                ),
                heads: [
                    head_state(DriftHead::Runtime),
                    head_state(DriftHead::Read),
                    head_state(DriftHead::Write),
                ],
                last_weight_update: Mutex::new(Instant::now()),
                cfg,
            }),
        }
    }

    /// Monitor with default tuning.
    pub fn with_defaults(telemetry: &Telemetry) -> Self {
        Self::new(telemetry, DriftConfig::default())
    }

    fn bin_of(&self, head: DriftHead, truth: f64) -> usize {
        let max = match head {
            DriftHead::Runtime => self.inner.cfg.runtime_bin_max,
            _ => self.inner.cfg.io_bin_max,
        };
        let bins = self.inner.cfg.bins.max(1);
        if !truth.is_finite() || truth <= 0.0 || max <= 0.0 {
            return 0;
        }
        (((truth / max) * bins as f64) as usize).min(bins - 1)
    }

    /// Fold one completed job (truth vs. the prediction that was served
    /// for it) into `head`'s window, updating gauges and firing
    /// threshold-crossing events.
    pub fn record(&self, head: DriftHead, truth: f64, predicted: f64) {
        self.record_with_status(head, truth, predicted, OutcomeStatus::Completed);
    }

    /// [`record`](Self::record) with an explicit terminal status. Killed
    /// and requeued jobs enter the same rolling window as completed ones
    /// (truth is whatever was observed at termination) so the statistics
    /// downstream — drift gauges and conformal calibration — are not
    /// survivorship-biased toward jobs the kill policy spared.
    pub fn record_with_status(
        &self,
        head: DriftHead,
        truth: f64,
        predicted: f64,
        status: OutcomeStatus,
    ) {
        if !truth.is_finite() || !predicted.is_finite() {
            return;
        }
        let acc = relative_accuracy(truth, predicted);
        let bin = self.bin_of(head, truth);
        let cfg = &self.inner.cfg;
        let mut s = lock(&self.inner.heads[head.index()]);
        if s.window.len() >= cfg.window.max(1) {
            if let Some((old_acc, old_truth_pred, old_bin)) = s.window.pop_front() {
                s.sum_acc -= old_acc;
                let b = &mut s.bins[old_bin];
                b.count -= 1;
                b.sum_truth -= old_truth_pred.0;
                b.sum_pred -= old_truth_pred.1;
            }
        }
        s.window.push_back((acc, (truth, predicted), bin));
        s.sum_acc += acc;
        {
            let b = &mut s.bins[bin];
            b.count += 1;
            b.sum_truth += truth;
            b.sum_pred += predicted;
        }
        s.samples += 1;
        s.sample_counter.inc();
        s.status_counters[status.index()].inc();

        let rolling = s.sum_acc / s.window.len() as f64;
        s.acc_gauge.set(rolling);
        let calib = calibration_error(&s.bins);
        s.calib_gauge.set(calib);

        if s.window.len() >= cfg.min_samples.max(1) {
            if rolling < cfg.accuracy_threshold && !s.alerting {
                s.alerting = true;
                s.alert_counter.inc();
                self.inner.telemetry.events().record(
                    "drift_alert",
                    format!(
                        "head={} relative_accuracy={rolling:.4} threshold={} window={}",
                        head.label(),
                        cfg.accuracy_threshold,
                        s.window.len()
                    ),
                    0,
                );
            } else if rolling >= cfg.accuracy_threshold && s.alerting {
                s.alerting = false;
                self.inner.telemetry.events().record(
                    "drift_recovered",
                    format!(
                        "head={} relative_accuracy={rolling:.4} threshold={}",
                        head.label(),
                        cfg.accuracy_threshold
                    ),
                    0,
                );
            }
        }
        drop(s);
        self.refresh_staleness();
    }

    /// Note a weight publish (retrain / hot-swap): resets the staleness
    /// clock and bumps `drift_weight_updates_total`.
    pub fn mark_weight_update(&self) {
        *lock(&self.inner.last_weight_update) = Instant::now();
        self.inner.weight_updates.inc();
        self.inner.staleness.set(0.0);
    }

    /// Recompute and return weight staleness in seconds (gauges are pull
    /// snapshots, so scrape paths call this before export).
    pub fn refresh_staleness(&self) -> f64 {
        let secs = lock(&self.inner.last_weight_update).elapsed().as_secs_f64();
        self.inner.staleness.set(secs);
        secs
    }

    /// Copy of `head`'s rolling outcome window, oldest first. This is the
    /// accessor the split-conformal calibrator builds its score sample
    /// from — one window, maintained here, consumed there.
    pub fn outcome_window(&self, head: DriftHead) -> Vec<OutcomeSample> {
        let s = lock(&self.inner.heads[head.index()]);
        s.window
            .iter()
            .map(|&(_, (truth, predicted), bin)| OutcomeSample {
                truth,
                predicted,
                bin,
            })
            .collect()
    }

    /// Point-in-time readout of every head plus the staleness clock.
    pub fn snapshot(&self) -> DriftSnapshot {
        let heads = HEADS
            .iter()
            .map(|&h| {
                let s = lock(&self.inner.heads[h.index()]);
                let n = s.window.len();
                HeadSnapshot {
                    head: h.label(),
                    samples: s.samples,
                    window_len: n,
                    relative_accuracy: if n == 0 { 1.0 } else { s.sum_acc / n as f64 },
                    calibration_error: calibration_error(&s.bins),
                    alerting: s.alerting,
                }
            })
            .collect();
        DriftSnapshot {
            heads,
            staleness_seconds: self.refresh_staleness(),
            weight_updates: self.inner.weight_updates.value(),
        }
    }
}

fn calibration_error(bins: &[BinStats]) -> f64 {
    let total: u64 = bins.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    bins.iter()
        .filter(|b| b.count > 0)
        .map(|b| {
            let mean_t = b.sum_truth / b.count as f64;
            let mean_p = b.sum_pred / b.count as f64;
            let bias = (mean_t - mean_p).abs() / (mean_t.max(mean_p) + f64::EPSILON);
            bias * (b.count as f64 / total as f64)
        })
        .sum()
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One head's readout in a [`DriftSnapshot`].
#[derive(Clone, Debug)]
pub struct HeadSnapshot {
    /// Head label (`runtime` / `read` / `write`).
    pub head: &'static str,
    /// Samples ever folded into this head.
    pub samples: u64,
    /// Samples currently in the rolling window.
    pub window_len: usize,
    /// Rolling-window mean relativeAccuracy (1.0 when empty).
    pub relative_accuracy: f64,
    /// Count-weighted per-bin relative bias.
    pub calibration_error: f64,
    /// True while below the alert threshold.
    pub alerting: bool,
}

/// Point-in-time drift readout from [`DriftMonitor::snapshot`].
#[derive(Clone, Debug)]
pub struct DriftSnapshot {
    /// Per-head readouts, `runtime` / `read` / `write` order.
    pub heads: Vec<HeadSnapshot>,
    /// Seconds since the last weight publish.
    pub staleness_seconds: f64,
    /// Weight publishes observed.
    pub weight_updates: u64,
}

impl DriftSnapshot {
    /// Compact single-line rendering for logs and demos.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .heads
            .iter()
            .map(|h| {
                format!(
                    "{}: acc={:.3} calib={:.3} n={}{}",
                    h.head,
                    h.relative_accuracy,
                    h.calibration_error,
                    h.window_len,
                    if h.alerting { " ALERT" } else { "" }
                )
            })
            .collect();
        parts.push(format!(
            "weights: {} updates, stale {:.1}s",
            self.weight_updates, self.staleness_seconds
        ));
        parts.join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let t = Telemetry::new();
        let d = DriftMonitor::with_defaults(&t);
        for i in 0..32 {
            d.record(DriftHead::Runtime, 10.0 + i as f64, 10.0 + i as f64);
        }
        let snap = d.snapshot();
        let rt = &snap.heads[0];
        assert!((rt.relative_accuracy - 1.0).abs() < 1e-9);
        assert!(rt.calibration_error < 1e-9);
        assert!(!rt.alerting);
    }

    #[test]
    fn window_slides_and_recovers() {
        let t = Telemetry::new();
        let d = DriftMonitor::new(
            &t,
            DriftConfig {
                window: 8,
                min_samples: 4,
                ..DriftConfig::default()
            },
        );
        // Fill the window with terrible predictions, then good ones: the
        // rolling mean must fully recover once the bad samples age out.
        for _ in 0..8 {
            d.record(DriftHead::Read, 100.0, 0.0);
        }
        assert!(d.snapshot().heads[1].alerting);
        for _ in 0..8 {
            d.record(DriftHead::Read, 100.0, 100.0);
        }
        let snap = d.snapshot();
        assert!((snap.heads[1].relative_accuracy - 1.0).abs() < 1e-9);
        assert!(!snap.heads[1].alerting);
        assert_eq!(snap.heads[1].window_len, 8);
    }

    #[test]
    fn alerts_are_edge_triggered_and_logged() {
        let t = Telemetry::new();
        let d = DriftMonitor::new(
            &t,
            DriftConfig {
                window: 16,
                min_samples: 2,
                accuracy_threshold: 0.9,
                ..DriftConfig::default()
            },
        );
        for _ in 0..6 {
            d.record(DriftHead::Runtime, 100.0, 10.0);
        }
        let events = t.events().drain();
        let alerts: Vec<_> = events.iter().filter(|e| e.name == "drift_alert").collect();
        assert_eq!(alerts.len(), 1, "alert fires once, not per sample");
        assert!(
            alerts[0].detail.contains("head=runtime"),
            "{}",
            alerts[0].detail
        );
        for _ in 0..60 {
            d.record(DriftHead::Runtime, 100.0, 100.0);
        }
        let events = t.events().drain();
        assert!(events.iter().any(|e| e.name == "drift_recovered"));
        assert!(t
            .prometheus()
            .contains("drift_alerts_total{head=\"runtime\"} 1"));
    }

    #[test]
    fn calibration_catches_systematic_per_bin_bias() {
        let t = Telemetry::new();
        let d = DriftMonitor::new(
            &t,
            DriftConfig {
                window: 64,
                bins: 4,
                runtime_bin_max: 100.0,
                ..DriftConfig::default()
            },
        );
        // Short jobs over-predicted 2x, long jobs under-predicted 2x: mean
        // accuracy is mediocre-but-flat, calibration error is large.
        for _ in 0..16 {
            d.record(DriftHead::Runtime, 10.0, 20.0);
            d.record(DriftHead::Runtime, 90.0, 45.0);
        }
        let snap = d.snapshot();
        assert!(
            snap.heads[0].calibration_error > 0.4,
            "calib={}",
            snap.heads[0].calibration_error
        );
    }

    #[test]
    fn staleness_tracks_weight_updates() {
        let t = Telemetry::new();
        let d = DriftMonitor::with_defaults(&t);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(d.refresh_staleness() >= 0.01);
        d.mark_weight_update();
        assert!(d.refresh_staleness() < 0.01);
        assert_eq!(d.snapshot().weight_updates, 1);
    }

    #[test]
    fn outcome_window_exposes_truth_and_prediction_pairs() {
        let t = Telemetry::new();
        let d = DriftMonitor::new(
            &t,
            DriftConfig {
                window: 4,
                ..DriftConfig::default()
            },
        );
        for i in 0..6u32 {
            d.record(DriftHead::Runtime, 10.0 * f64::from(i), 5.0 * f64::from(i));
        }
        let w = d.outcome_window(DriftHead::Runtime);
        assert_eq!(w.len(), 4, "window is bounded");
        // Oldest-first: samples 2..6 survive the slide.
        assert_eq!(w[0].truth, 20.0);
        assert_eq!(w[0].predicted, 10.0);
        assert_eq!(w[3].truth, 50.0);
        assert!(d.outcome_window(DriftHead::Read).is_empty());
    }

    #[test]
    fn killed_outcomes_enter_the_window_and_are_counted_by_status() {
        let t = Telemetry::new();
        let d = DriftMonitor::with_defaults(&t);
        d.record(DriftHead::Runtime, 30.0, 30.0);
        d.record_with_status(DriftHead::Runtime, 120.0, 20.0, OutcomeStatus::Killed);
        d.record_with_status(DriftHead::Runtime, 90.0, 15.0, OutcomeStatus::Requeued);
        assert_eq!(
            d.outcome_window(DriftHead::Runtime).len(),
            3,
            "killed/requeued samples share the window with completed ones"
        );
        let prom = t.prometheus();
        assert!(prom.contains("drift_outcomes_total{head=\"runtime\",status=\"completed\"} 1"));
        assert!(prom.contains("drift_outcomes_total{head=\"runtime\",status=\"killed\"} 1"));
        assert!(prom.contains("drift_outcomes_total{head=\"runtime\",status=\"requeued\"} 1"));
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let t = Telemetry::new();
        let d = DriftMonitor::with_defaults(&t);
        d.record(DriftHead::Write, f64::NAN, 1.0);
        d.record(DriftHead::Write, 1.0, f64::INFINITY);
        assert_eq!(d.snapshot().heads[2].window_len, 0);
    }
}
