//! The embedded ops endpoint: a dependency-free blocking HTTP/1.0 server.
//!
//! One `std::net::TcpListener`, one thread, `Connection: close` on every
//! response — deliberately the smallest thing that a Prometheus scraper, a
//! Kubernetes probe, and a curious operator with `curl` can all talk to.
//! Routes:
//!
//! | route      | serves |
//! |------------|--------|
//! | `/metrics` | Prometheus text exposition from the attached [`Telemetry`] |
//! | `/healthz` | liveness: `200 ok` while the server thread runs |
//! | `/readyz`  | readiness from the injected probe (gateway queue + replica liveness); `503` when not ready |
//! | `/traces`  | recent span trees from the flight recorder, as JSON |
//! | `/flight`  | triggers a flight dump to disk, returns the path |
//! | `/forecast`| live IO-forecast snapshot from the injected probe, as JSON |
//! | `/revise`  | in-flight revision engine snapshot from the injected probe, as JSON |
//! | `/fleet/metrics` | merged fleet-wide exposition from the attached [`FleetCollector`] |
//! | `/fleet/healthz` | quorum-aware fleet health: `200` while enough shards scrape |
//! | `/fleet/traces?trace_id=N` | one trace's spans stitched across every shard |
//!
//! Anything else is `404`. The server binds before [`OpsServer::start`]
//! returns, so tests and scripts can read the bound port immediately.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use prionn_telemetry::Telemetry;

use crate::collector::FleetCollector;
use crate::drift::DriftMonitor;
use crate::flight::{json_str, span_json, FlightRecorder};
use crate::trace::SpanRecord;

/// A readiness verdict from the injected probe.
#[derive(Clone, Debug)]
pub struct Readiness {
    /// Serve `200` when true, `503` otherwise.
    pub ready: bool,
    /// Human-readable detail included in the body.
    pub detail: String,
}

/// The readiness probe: called per `/readyz` request.
pub type ReadyProbe = Arc<dyn Fn() -> Readiness + Send + Sync>;

/// The forecast probe: called per `/forecast` request, returns a JSON
/// document (e.g. `prionn-forecast`'s `ForecastEngine::ops_probe`). A
/// closure rather than a typed handle keeps `observe` below the forecast
/// crate in the dependency graph.
pub type ForecastProbe = Arc<dyn Fn() -> String + Send + Sync>;

/// The revision probe: called per `/revise` request, returns a JSON
/// document (e.g. `prionn-revise`'s `ReviseEngine::ops_probe`). Same
/// closure-over-type pattern as [`ForecastProbe`]: `observe` stays below
/// the revise crate in the dependency graph.
pub type ReviseProbe = Arc<dyn Fn() -> String + Send + Sync>;

/// What the ops endpoint exposes. Every field is optional; absent sources
/// degrade their route to a clear `404`/empty answer rather than an error.
#[derive(Clone, Default)]
pub struct OpsOptions {
    /// Metric registry behind `/metrics`.
    pub telemetry: Option<Telemetry>,
    /// Flight recorder behind `/traces` and `/flight`.
    pub recorder: Option<FlightRecorder>,
    /// Drift monitor; when present its staleness gauge is refreshed on
    /// every `/metrics` scrape so the exported value is current.
    pub drift: Option<DriftMonitor>,
    /// Readiness probe behind `/readyz` (absent = always ready).
    pub readiness: Option<ReadyProbe>,
    /// Forecast snapshot probe behind `/forecast` (absent = `404`).
    pub forecast: Option<ForecastProbe>,
    /// Revision-engine snapshot probe behind `/revise` (absent = `404`).
    pub revise: Option<ReviseProbe>,
    /// Fleet collector behind the `/fleet/*` routes (absent = `404`).
    pub fleet: Option<FleetCollector>,
    /// Most recent traces returned by `/traces` (default 64).
    pub max_traces: usize,
}

struct ServerState {
    opts: OpsOptions,
    stop: AtomicBool,
}

/// Handle to the running ops endpoint; shuts down on drop.
pub struct OpsServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl OpsServer {
    /// Bind `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and serve on
    /// a background thread.
    pub fn start(bind: &str, opts: OpsOptions) -> io::Result<OpsServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            opts,
            stop: AtomicBool::new(false),
        });
        let thread_state = state.clone();
        let handle = std::thread::Builder::new()
            .name("prionn-ops".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_state.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let _ = handle_connection(stream, &thread_state);
                    }
                }
            })?;
        Ok(OpsServer {
            addr,
            state,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread. Idempotent.
    pub fn shutdown(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request headers; GETs have no body.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path_full = parts.next().unwrap_or("/");
    let (path, query) = match path_full.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (path_full, None),
    };

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served here\n".to_string(),
        )
    } else {
        route(path, query, &state.opts)
    };

    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn route(
    path: &str,
    query: Option<&str>,
    opts: &OpsOptions,
) -> (&'static str, &'static str, String) {
    const OK: &str = "200 OK";
    const TEXT: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    match path {
        "/metrics" => match &opts.telemetry {
            Some(t) => {
                if let Some(d) = &opts.drift {
                    d.refresh_staleness();
                }
                (
                    OK,
                    "text/plain; version=0.0.4; charset=utf-8",
                    t.prometheus(),
                )
            }
            None => ("404 Not Found", TEXT, "no telemetry attached\n".into()),
        },
        "/healthz" => (OK, TEXT, "ok\n".into()),
        "/readyz" => match &opts.readiness {
            Some(probe) => {
                let r = probe();
                if r.ready {
                    (OK, TEXT, format!("ready: {}\n", r.detail))
                } else {
                    (
                        "503 Service Unavailable",
                        TEXT,
                        format!("not ready: {}\n", r.detail),
                    )
                }
            }
            None => (OK, TEXT, "ready\n".into()),
        },
        "/traces" => match &opts.recorder {
            Some(rec) => {
                let max = if opts.max_traces == 0 {
                    64
                } else {
                    opts.max_traces
                };
                (OK, JSON, traces_json(&rec.snapshot(), max))
            }
            None => (
                "404 Not Found",
                TEXT,
                "no flight recorder attached\n".into(),
            ),
        },
        "/forecast" => match &opts.forecast {
            Some(probe) => (OK, JSON, probe()),
            None => (
                "404 Not Found",
                TEXT,
                "no forecast engine attached\n".into(),
            ),
        },
        "/revise" => match &opts.revise {
            Some(probe) => (OK, JSON, probe()),
            None => ("404 Not Found", TEXT, "no revise engine attached\n".into()),
        },
        "/flight" => match &opts.recorder {
            Some(rec) => match rec.dump_to_file("ops endpoint /flight") {
                Ok(path) => (
                    OK,
                    JSON,
                    format!(
                        "{{\"dumped\":true,\"path\":{}}}",
                        json_str(&path.display().to_string())
                    ),
                ),
                Err(e) => (
                    "500 Internal Server Error",
                    JSON,
                    format!(
                        "{{\"dumped\":false,\"error\":{}}}",
                        json_str(&e.to_string())
                    ),
                ),
            },
            None => (
                "404 Not Found",
                TEXT,
                "no flight recorder attached\n".into(),
            ),
        },
        "/fleet/metrics" => match &opts.fleet {
            Some(fleet) => (
                OK,
                "text/plain; version=0.0.4; charset=utf-8",
                fleet.merged_prometheus(),
            ),
            None => (
                "404 Not Found",
                TEXT,
                "no fleet collector attached\n".into(),
            ),
        },
        "/fleet/healthz" => match &opts.fleet {
            Some(fleet) => {
                let (healthy, detail) = fleet.healthz();
                if healthy {
                    (OK, TEXT, format!("ok: {detail}\n"))
                } else {
                    (
                        "503 Service Unavailable",
                        TEXT,
                        format!("degraded: {detail}\n"),
                    )
                }
            }
            None => (
                "404 Not Found",
                TEXT,
                "no fleet collector attached\n".into(),
            ),
        },
        "/fleet/traces" => match &opts.fleet {
            Some(fleet) => match query_param(query, "trace_id").and_then(|v| v.parse::<u64>().ok())
            {
                Some(trace_id) => (OK, JSON, fleet.trace_json(trace_id)),
                None => ("400 Bad Request", TEXT, "pass ?trace_id=<u64>\n".into()),
            },
            None => (
                "404 Not Found",
                TEXT,
                "no fleet collector attached\n".into(),
            ),
        },
        _ => ("404 Not Found", TEXT, "unknown route\n".into()),
    }
}

/// Pull one `key=value` pair out of a raw query string.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Group spans by trace and render the most recent `max` traces as JSON.
fn traces_json(spans: &[SpanRecord], max: usize) -> String {
    use std::collections::BTreeMap;
    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let mut traces: Vec<(u64, u64, Vec<&SpanRecord>)> = by_trace
        .into_iter()
        .map(|(id, spans)| {
            let start = spans.iter().map(|s| s.start_micros).min().unwrap_or(0);
            (start, id, spans)
        })
        .collect();
    traces.sort_by_key(|(start, id, _)| (std::cmp::Reverse(*start), *id));
    traces.truncate(max);

    let mut out = String::from("{\"traces\":[");
    for (i, (_, id, spans)) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"trace_id\":{id},\"spans\":["));
        for (j, s) in spans.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&span_json(s));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanCtx;

    fn span(trace: u64, id: u64, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: 0,
            name: "s".into(),
            detail: String::new(),
            links: vec![],
            start_micros: start,
            duration_micros: 1,
        }
    }

    #[test]
    fn traces_group_and_cap() {
        let spans = vec![span(1, 1, 0), span(1, 2, 5), span(2, 3, 10), span(3, 4, 20)];
        let j = traces_json(&spans, 2);
        // Most recent two traces only, newest first.
        assert!(j.contains("\"trace_id\":3"), "{j}");
        assert!(j.contains("\"trace_id\":2"), "{j}");
        assert!(!j.contains("\"trace_id\":1,"), "{j}");
    }

    #[test]
    fn unknown_route_is_404_and_health_is_200() {
        let opts = OpsOptions::default();
        assert_eq!(route("/healthz", None, &opts).0, "200 OK");
        assert_eq!(route("/nope", None, &opts).0, "404 Not Found");
        assert_eq!(route("/metrics", None, &opts).0, "404 Not Found");
    }

    #[test]
    fn readiness_probe_drives_status() {
        let flag = Arc::new(AtomicBool::new(false));
        let probe_flag = flag.clone();
        let opts = OpsOptions {
            readiness: Some(Arc::new(move || Readiness {
                ready: probe_flag.load(Ordering::SeqCst),
                detail: "live=1 queue=0".into(),
            })),
            ..OpsOptions::default()
        };
        assert_eq!(route("/readyz", None, &opts).0, "503 Service Unavailable");
        flag.store(true, Ordering::SeqCst);
        let (status, _, body) = route("/readyz", None, &opts);
        assert_eq!(status, "200 OK");
        assert!(body.contains("live=1"), "{body}");
    }

    #[test]
    fn forecast_route_serves_probe_json_or_404() {
        let opts = OpsOptions::default();
        let (status, _, body) = route("/forecast", None, &opts);
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("no forecast engine"), "{body}");

        let opts = OpsOptions {
            forecast: Some(Arc::new(|| "{\"alerting\":false}".to_string())),
            ..OpsOptions::default()
        };
        let (status, ctype, body) = route("/forecast", None, &opts);
        assert_eq!(status, "200 OK");
        assert_eq!(ctype, "application/json");
        assert_eq!(body, "{\"alerting\":false}");
    }

    #[test]
    fn revise_route_serves_probe_json_or_404() {
        let opts = OpsOptions::default();
        let (status, _, body) = route("/revise", None, &opts);
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("no revise engine"), "{body}");

        let opts = OpsOptions {
            revise: Some(Arc::new(|| "{\"inflight\":0}".to_string())),
            ..OpsOptions::default()
        };
        let (status, ctype, body) = route("/revise", None, &opts);
        assert_eq!(status, "200 OK");
        assert_eq!(ctype, "application/json");
        assert_eq!(body, "{\"inflight\":0}");
    }

    #[test]
    fn links_survive_trace_json() {
        let mut s = span(7, 1, 0);
        s.links.push(SpanCtx {
            trace_id: 9,
            span_id: 2,
        });
        let j = traces_json(&[s], 8);
        assert!(
            j.contains("\"links\":[{\"trace_id\":9,\"span_id\":2}]"),
            "{j}"
        );
    }
}
