//! Declarative SLOs with multi-window burn-rate alerting over the
//! federated metrics surface.
//!
//! An [`SloSpec`] names an objective ("99% of predicts under 250ms") and
//! where its good/bad counts come from ([`SloSource`]). The [`SloEngine`]
//! ingests per-scrape good/bad deltas and evaluates **burn rate** — the
//! rate the error budget is being spent, `bad_fraction / (1 - objective)`
//! — over a fast window pair (5m *and* 1h must both burn hot, the
//! standard guard against paging on a blip) and a slow 6h window for
//! sustained, slower burns. Alerts are edge-triggered: one telemetry
//! event when a burn starts, one when it clears, with `slo_*` gauges
//! carrying the continuous values in between. Consumers like the fleet
//! coordinator read [`SloEngine::any_alert`] to pause weight rollouts
//! while the budget is burning.
//!
//! Time is injected (seconds on the caller's monotonic clock), so tests
//! and demos can replay hours of burn in microseconds.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use prionn_telemetry::{Counter, Gauge, Telemetry};

/// Where an SLO's good/bad counts come from on the merged surface.
#[derive(Debug, Clone)]
pub enum SloSource {
    /// A latency histogram: observations ≤ `threshold` are good. The
    /// threshold should sit on a bucket edge for exact counting.
    LatencyBuckets {
        /// Histogram family name (e.g. `fleet_request_seconds`).
        histogram: String,
        /// Good/bad split point, in the histogram's unit.
        threshold: f64,
    },
    /// A ratio of two counters: `bad / total` (e.g. sheds over requests).
    ErrorRatio {
        /// Counter counting every event.
        total: String,
        /// Counter counting the bad subset (summed across label sets).
        bad: String,
    },
    /// A gauge that must stay at or above `floor` (e.g. drift
    /// relativeAccuracy). Sampled, not cumulative: each evaluation below
    /// the floor contributes one bad sample.
    GaugeFloor {
        /// Gauge name; when per-shard copies exist the minimum is judged.
        gauge: String,
        /// Lowest acceptable value.
        floor: f64,
    },
    /// A gauge that must stay at or below `ceiling` (e.g. revise
    /// coverage-gap). Sampled like [`SloSource::GaugeFloor`]; the
    /// maximum across per-shard copies is judged.
    GaugeCeiling {
        /// Gauge name.
        gauge: String,
        /// Highest acceptable value.
        ceiling: f64,
    },
}

/// The multi-window burn thresholds. Defaults follow the common
/// error-budget policy: page when a 1h burn of 14.4× (2% of a 30-day
/// budget) is corroborated by the 5m window, ticket on a sustained 6×
/// burn over 6h.
#[derive(Debug, Clone, Copy)]
pub struct BurnWindows {
    /// Short corroborating window, seconds (default 5 minutes).
    pub fast_short: f64,
    /// Long fast window, seconds (default 1 hour).
    pub fast_long: f64,
    /// Burn-rate threshold both fast windows must exceed.
    pub fast_burn: f64,
    /// Slow window, seconds (default 6 hours).
    pub slow: f64,
    /// Burn-rate threshold for the slow window.
    pub slow_burn: f64,
}

impl Default for BurnWindows {
    fn default() -> Self {
        BurnWindows {
            fast_short: 300.0,
            fast_long: 3600.0,
            fast_burn: 14.4,
            slow: 21_600.0,
            slow_burn: 6.0,
        }
    }
}

/// One declared objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable name, used as the `slo` metric label.
    pub name: String,
    /// Target good fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
    /// Where the good/bad counts come from.
    pub source: SloSource,
    /// Burn windows and thresholds.
    pub windows: BurnWindows,
}

impl SloSpec {
    /// A spec with default windows.
    pub fn new(name: impl Into<String>, objective: f64, source: SloSource) -> SloSpec {
        SloSpec {
            name: name.into(),
            objective,
            source,
            windows: BurnWindows::default(),
        }
    }
}

/// One evaluation's verdict for one SLO.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The spec's name.
    pub slo: String,
    /// Burn rate over the fast-short window.
    pub burn_fast_short: f64,
    /// Burn rate over the fast-long window.
    pub burn_fast_long: f64,
    /// Burn rate over the slow window.
    pub burn_slow: f64,
    /// True while the alert condition holds.
    pub firing: bool,
    /// True only on the evaluation where `firing` flipped.
    pub edge: bool,
}

struct SeriesState {
    /// (timestamp seconds, good delta, bad delta), pruned past the
    /// longest window.
    samples: VecDeque<(f64, u64, u64)>,
    /// Previous cumulative totals for counter-style sources.
    prev_totals: Option<(u64, u64)>,
    firing: bool,
}

struct SloInstruments {
    burn_fast_short: Gauge,
    burn_fast_long: Gauge,
    burn_slow: Gauge,
    alert: Gauge,
    alerts_total: Counter,
}

/// Evaluates a set of [`SloSpec`]s over injected good/bad samples.
/// Cloning shares state.
#[derive(Clone)]
pub struct SloEngine {
    inner: Arc<SloEngineInner>,
}

struct SloEngineInner {
    specs: Vec<SloSpec>,
    state: Mutex<HashMap<String, SeriesState>>,
    instruments: HashMap<String, SloInstruments>,
    telemetry: Telemetry,
}

impl SloEngine {
    /// Build an engine registering `slo_*` instruments in `telemetry`.
    pub fn new(specs: Vec<SloSpec>, telemetry: &Telemetry) -> SloEngine {
        let mut instruments = HashMap::new();
        let mut state = HashMap::new();
        for spec in &specs {
            fn labels<'a>(slo: &'a str, window: &'a str) -> Vec<(&'a str, &'a str)> {
                vec![("slo", slo), ("window", window)]
            }
            instruments.insert(
                spec.name.clone(),
                SloInstruments {
                    burn_fast_short: telemetry.gauge_with(
                        "slo_burn_rate",
                        "Error-budget burn rate by SLO and window",
                        &labels(spec.name.as_str(), "fast_short"),
                    ),
                    burn_fast_long: telemetry.gauge_with(
                        "slo_burn_rate",
                        "Error-budget burn rate by SLO and window",
                        &labels(spec.name.as_str(), "fast_long"),
                    ),
                    burn_slow: telemetry.gauge_with(
                        "slo_burn_rate",
                        "Error-budget burn rate by SLO and window",
                        &labels(spec.name.as_str(), "slow"),
                    ),
                    alert: telemetry.gauge_with(
                        "slo_alert",
                        "1 while the SLO's burn-rate alert fires",
                        &[("slo", spec.name.as_str())],
                    ),
                    alerts_total: telemetry.counter_with(
                        "slo_alerts_total",
                        "Burn-rate alerts fired (edges, not evaluations)",
                        &[("slo", spec.name.as_str())],
                    ),
                },
            );
            state.insert(
                spec.name.clone(),
                SeriesState {
                    samples: VecDeque::new(),
                    prev_totals: None,
                    firing: false,
                },
            );
        }
        SloEngine {
            inner: Arc::new(SloEngineInner {
                specs,
                state: Mutex::new(state),
                instruments,
                telemetry: telemetry.clone(),
            }),
        }
    }

    /// The declared specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.inner.specs
    }

    /// Feed cumulative good/bad totals (counter-style sources). The
    /// engine diffs against the previous totals; a total that went
    /// *backwards* (shard restart) resets the baseline without producing
    /// a negative delta.
    pub fn observe_totals(&self, name: &str, good_total: u64, bad_total: u64, now_s: f64) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let Some(s) = state.get_mut(name) else { return };
        let (good, bad) = match s.prev_totals {
            Some((pg, pb)) if good_total >= pg && bad_total >= pb => {
                (good_total - pg, bad_total - pb)
            }
            _ => (0, 0),
        };
        s.prev_totals = Some((good_total, bad_total));
        if good > 0 || bad > 0 {
            s.samples.push_back((now_s, good, bad));
        }
    }

    /// Feed one good/bad delta directly (gauge-style sources and tests).
    pub fn observe_delta(&self, name: &str, good: u64, bad: u64, now_s: f64) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(s) = state.get_mut(name) {
            if good > 0 || bad > 0 {
                s.samples.push_back((now_s, good, bad));
            }
        }
    }

    /// Evaluate every SLO at `now_s`: update `slo_*` gauges, emit
    /// edge-triggered `slo_alert` / `slo_alert_clear` telemetry events,
    /// and return the per-SLO statuses.
    pub fn evaluate(&self, now_s: f64) -> Vec<SloStatus> {
        let mut out = Vec::with_capacity(self.inner.specs.len());
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        for spec in &self.inner.specs {
            let Some(s) = state.get_mut(&spec.name) else {
                continue;
            };
            let longest = spec.windows.slow.max(spec.windows.fast_long);
            while let Some(&(t, _, _)) = s.samples.front() {
                if t < now_s - longest {
                    s.samples.pop_front();
                } else {
                    break;
                }
            }
            let budget = (1.0 - spec.objective).max(1e-9);
            let burn_over = |window: f64| {
                let (mut good, mut bad) = (0u64, 0u64);
                for &(t, g, b) in s.samples.iter().rev() {
                    if t < now_s - window {
                        break;
                    }
                    good += g;
                    bad += b;
                }
                let total = good + bad;
                if total == 0 {
                    0.0
                } else {
                    (bad as f64 / total as f64) / budget
                }
            };
            let burn_fast_short = burn_over(spec.windows.fast_short);
            let burn_fast_long = burn_over(spec.windows.fast_long);
            let burn_slow = burn_over(spec.windows.slow);
            // Page when both fast windows corroborate, or the slow
            // window shows a sustained burn.
            let firing = (burn_fast_short >= spec.windows.fast_burn
                && burn_fast_long >= spec.windows.fast_burn)
                || burn_slow >= spec.windows.slow_burn;
            let edge = firing != s.firing;
            s.firing = firing;
            if let Some(ins) = self.inner.instruments.get(&spec.name) {
                ins.burn_fast_short.set(burn_fast_short);
                ins.burn_fast_long.set(burn_fast_long);
                ins.burn_slow.set(burn_slow);
                ins.alert.set(if firing { 1.0 } else { 0.0 });
                if edge && firing {
                    ins.alerts_total.inc();
                }
            }
            if edge {
                self.inner.telemetry.events().record(
                    if firing { "slo_alert" } else { "slo_alert_clear" },
                    format!(
                        "slo={} burn_fast={burn_fast_short:.1}/{burn_fast_long:.1} burn_slow={burn_slow:.1}",
                        spec.name
                    ),
                    0,
                );
            }
            out.push(SloStatus {
                slo: spec.name.clone(),
                burn_fast_short,
                burn_fast_long,
                burn_slow,
                firing,
                edge,
            });
        }
        out
    }

    /// True while `name`'s alert fires.
    pub fn alert_active(&self, name: &str) -> bool {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|s| s.firing)
            .unwrap_or(false)
    }

    /// The first firing SLO's name, if any — the rollout-gate primitive.
    pub fn any_alert(&self) -> Option<String> {
        let state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        self.inner
            .specs
            .iter()
            .find(|spec| state.get(&spec.name).map(|s| s.firing).unwrap_or(false))
            .map(|spec| spec.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(objective: f64) -> (SloEngine, Telemetry) {
        let t = Telemetry::new();
        let spec = SloSpec::new(
            "predict_latency",
            objective,
            SloSource::ErrorRatio {
                total: "req".into(),
                bad: "bad".into(),
            },
        );
        (SloEngine::new(vec![spec], &t), t)
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let (e, _t) = engine(0.99);
        for i in 0..100 {
            e.observe_delta("predict_latency", 1000, 5, i as f64 * 60.0);
        }
        let st = &e.evaluate(6000.0)[0];
        assert!(!st.firing, "{st:?}");
        assert!(st.burn_fast_short < 1.0);
    }

    #[test]
    fn fast_pair_fires_edge_triggered_and_clears() {
        let (e, t) = engine(0.99);
        // 50% bad for an hour: burn 50x the 1% budget in both windows.
        for i in 0..60 {
            e.observe_delta("predict_latency", 50, 50, i as f64 * 60.0);
        }
        let st = &e.evaluate(3600.0)[0];
        assert!(st.firing && st.edge, "{st:?}");
        assert!(st.burn_fast_short > 14.4 && st.burn_fast_long > 14.4);
        assert!(e.alert_active("predict_latency"));
        assert_eq!(e.any_alert().as_deref(), Some("predict_latency"));
        // Still firing next round, but no new edge.
        let st = &e.evaluate(3660.0)[0];
        assert!(st.firing && !st.edge);
        // Seven clean hours later everything aged out: clears on an edge.
        let clear_t = 3600.0 + 7.0 * 3600.0;
        e.observe_delta("predict_latency", 100, 0, clear_t - 10.0);
        let st = &e.evaluate(clear_t)[0];
        assert!(!st.firing && st.edge, "{st:?}");
        assert!(e.any_alert().is_none());
        // slo_alert gauge followed, and exactly one alert was counted.
        let prom = t.prometheus();
        assert!(
            prom.contains("slo_alert{slo=\"predict_latency\"} 0"),
            "{prom}"
        );
        assert!(
            prom.contains("slo_alerts_total{slo=\"predict_latency\"} 1"),
            "{prom}"
        );
        let fired: Vec<_> = t
            .events()
            .peek()
            .into_iter()
            .filter(|ev| ev.name.starts_with("slo_alert"))
            .collect();
        assert_eq!(fired.len(), 2, "{fired:?}");
    }

    #[test]
    fn short_blip_does_not_page_without_long_window_corroboration() {
        let (e, _t) = engine(0.99);
        // 55 clean minutes, then 5 awful ones: the 5m window burns hot
        // but the 1h window stays under threshold -> no page.
        for i in 0..55 {
            e.observe_delta("predict_latency", 1000, 0, i as f64 * 60.0);
        }
        for i in 55..60 {
            e.observe_delta("predict_latency", 50, 50, i as f64 * 60.0);
        }
        let st = &e.evaluate(3600.0)[0];
        assert!(st.burn_fast_short >= 14.4, "{st:?}");
        assert!(st.burn_fast_long < 14.4, "{st:?}");
        assert!(!st.firing);
    }

    #[test]
    fn counter_totals_diff_and_survive_resets() {
        let (e, _t) = engine(0.9);
        e.observe_totals("predict_latency", 100, 0, 0.0);
        e.observe_totals("predict_latency", 150, 50, 60.0); // +50 good +50 bad
        let st = &e.evaluate(60.0)[0];
        assert!(st.burn_fast_short > 0.0);
        // A restart drops totals to near zero: baseline resets, no
        // underflow, no phantom burn.
        e.observe_totals("predict_latency", 3, 0, 120.0);
        e.observe_totals("predict_latency", 10, 0, 180.0);
        let st = &e.evaluate(7.0 * 3600.0 + 180.0)[0];
        assert_eq!(st.burn_fast_short, 0.0);
    }
}
