//! Property tests on the checkpoint container: serialisation is a stable
//! bijection, and *any* single-byte corruption is detected as an error —
//! parsing never panics and never silently accepts a damaged file.

use prionn_store::Checkpoint;
use proptest::prelude::*;

/// Build a checkpoint from (name, payload) pairs, skipping duplicate names
/// (the random strategy may repeat a name; `insert` rejects that by design).
fn build(sections: &[(String, Vec<u8>)]) -> Checkpoint {
    let mut ck = Checkpoint::new();
    for (name, payload) in sections {
        if !ck.contains(name) {
            ck.insert(name.clone(), payload.clone())
                .expect("fresh name");
        }
    }
    ck
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Serialise → parse → serialise is byte-identical for arbitrary
    // section names and binary payloads (including empty ones).
    #[test]
    fn to_bytes_from_bytes_is_a_byte_identical_round_trip(
        sections in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(0u8..255, 0usize..256)),
            0usize..6,
        )
    ) {
        let ck = build(&sections);
        let bytes = ck.to_bytes();
        let parsed = Checkpoint::from_bytes(&bytes).expect("own bytes parse");
        prop_assert_eq!(parsed.len(), ck.len());
        for name in ck.section_names() {
            prop_assert_eq!(parsed.get(name), ck.get(name), "section {} diverged", name);
        }
        prop_assert_eq!(parsed.to_bytes(), bytes);
    }

    // Flipping any single byte anywhere in the file makes parsing fail
    // cleanly: the magic, version, lengths and per-section CRCs between
    // them cover every byte of the layout.
    #[test]
    fn any_single_flipped_byte_is_rejected(
        sections in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(0u8..255, 1usize..64)),
            1usize..4,
        ),
        offset_seed in 0usize..1_000_000,
        flip in 1u8..255,
    ) {
        let bytes = build(&sections).to_bytes();
        let offset = offset_seed % bytes.len();
        let mut bad = bytes.clone();
        bad[offset] ^= flip;
        prop_assert!(
            Checkpoint::from_bytes(&bad).is_err(),
            "flip of byte {} (xor {:#04x}) went undetected", offset, flip
        );
    }

    // Truncating the file at any point is also an error, not a panic.
    #[test]
    fn any_truncation_is_rejected(
        sections in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(0u8..255, 1usize..64)),
            1usize..4,
        ),
        cut_seed in 0usize..1_000_000,
    ) {
        let bytes = build(&sections).to_bytes();
        let cut = cut_seed % bytes.len(); // strictly shorter than the file
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err());
    }
}
