//! Randomized corruption round-trips for the wire frame codec.
//!
//! The fleet protocol trusts `read_frame` to turn *any* byte-level damage —
//! truncation, bit flips, garbage prefixes, oversized length fields — into
//! a typed [`StoreError`], never a panic and never a frame whose payload
//! differs from what was sent. These tests hammer that contract with
//! seeded random frames and seeded random damage.

use prionn_store::wire::{encode_frame, read_frame, Frame, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
use prionn_store::StoreError;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_frame(rng: &mut ChaCha8Rng) -> (u8, u64, Vec<u8>) {
    let kind = rng.gen_range(0u32..=255) as u8;
    let id = rng.next_u64();
    let len = rng.gen_range(0usize..2048);
    let mut payload = vec![0u8; len];
    rng.fill_bytes(&mut payload);
    (kind, id, payload)
}

/// Decode every frame in `bytes` until EOF or the first error.
fn drain(mut bytes: &[u8], max_payload: usize) -> Result<Vec<Frame>, StoreError> {
    let mut out = Vec::new();
    while let Some(frame) = read_frame(&mut bytes, max_payload)? {
        out.push(frame);
    }
    Ok(out)
}

#[test]
fn random_frames_roundtrip_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1EE7);
    for _ in 0..50 {
        let n = rng.gen_range(1usize..8);
        let mut stream = Vec::new();
        let mut sent = Vec::new();
        for _ in 0..n {
            let (kind, id, payload) = random_frame(&mut rng);
            stream.extend_from_slice(&encode_frame(kind, id, &payload));
            sent.push(Frame { kind, id, payload });
        }
        let got = drain(&stream, MAX_FRAME_PAYLOAD).expect("clean stream decodes");
        assert_eq!(got, sent);
    }
}

#[test]
fn random_single_byte_flips_never_panic_and_never_misdecode() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBADF00D);
    for _ in 0..200 {
        let (kind, id, payload) = random_frame(&mut rng);
        let clean = encode_frame(kind, id, &payload);
        let mut damaged = clean.clone();
        let at = rng.gen_range(0..damaged.len());
        let mut flip = 0u8;
        while flip == 0 {
            flip = rng.gen_range(0u32..=255) as u8;
        }
        damaged[at] ^= flip;

        // The flipped stream either fails typed, or — when the flip landed
        // in the length field and made the frame *shorter-looking* in a way
        // that still checks out — decodes to something; but a decoded first
        // frame must never silently differ from the original while claiming
        // the same identity. CRC over kind+id+payload makes a silent
        // payload mismatch impossible.
        match drain(&damaged, MAX_FRAME_PAYLOAD) {
            Ok(frames) => {
                if let Some(first) = frames.first() {
                    assert_eq!(
                        (first.kind, first.id, &first.payload),
                        (kind, id, &payload),
                        "flip at {at} produced a silently different frame"
                    );
                }
            }
            Err(
                StoreError::Truncated(_)
                | StoreError::Corrupt(_)
                | StoreError::ChecksumMismatch { .. }
                | StoreError::FrameTooLarge { .. },
            ) => {}
            Err(other) => panic!("unexpected error class for a byte flip: {other:?}"),
        }
    }
}

#[test]
fn random_truncation_is_always_typed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7A7A);
    for _ in 0..200 {
        let (kind, id, payload) = random_frame(&mut rng);
        let clean = encode_frame(kind, id, &payload);
        let cut = rng.gen_range(1..clean.len());
        match drain(&clean[..cut], MAX_FRAME_PAYLOAD) {
            Err(StoreError::Truncated(_)) => {}
            other => panic!(
                "cut at {cut}/{} must be Truncated, got {other:?}",
                clean.len()
            ),
        }
    }
}

#[test]
fn random_garbage_streams_fail_typed_without_panicking() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x6A5B);
    for _ in 0..200 {
        let len = rng.gen_range(0usize..512);
        let mut garbage = vec![0u8; len];
        rng.fill_bytes(&mut garbage);
        // Whatever the bytes, decoding must terminate with Ok (pure luck:
        // the garbage formed valid frames) or a typed error — never panic,
        // never a pathological allocation.
        let _ = drain(&garbage, MAX_FRAME_PAYLOAD);
    }
}

#[test]
fn oversized_declared_lengths_fail_before_payload_read() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0515E);
    for _ in 0..100 {
        let (kind, id, payload) = random_frame(&mut rng);
        let clean = encode_frame(kind, id, &payload);
        let cap = rng.gen_range(0..payload.len().max(1));
        match drain(&clean, cap) {
            Err(StoreError::FrameTooLarge { declared, cap: c }) => {
                assert_eq!(declared, payload.len() as u64);
                assert_eq!(c, cap as u64);
            }
            // len == 0 payload with cap 0 decodes fine.
            Ok(frames) => assert!(payload.is_empty() && frames.len() == 1),
            other => panic!("expected FrameTooLarge under cap {cap}, got {other:?}"),
        }
    }
}

/// A frame stream interrupted mid-way and then resumed from the next
/// frame boundary decodes the tail frames — the codec never needs state
/// beyond one frame, which is what lets a server drop one bad connection
/// without poisoning others.
#[test]
fn decoding_is_stateless_across_frames() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15C0);
    let frames: Vec<_> = (0..4).map(|_| random_frame(&mut rng)).collect();
    let encoded: Vec<Vec<u8>> = frames
        .iter()
        .map(|(k, i, p)| encode_frame(*k, *i, p))
        .collect();
    // Decode only the last two frames as their own stream.
    let tail: Vec<u8> = encoded[2..].concat();
    let got = drain(&tail, MAX_FRAME_PAYLOAD).unwrap();
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].payload, frames[2].2);
    assert_eq!(got[1].payload, frames[3].2);
    // Header length advertised by the module matches the layout.
    assert_eq!(encoded[0].len(), FRAME_HEADER_LEN + frames[0].2.len());
}
