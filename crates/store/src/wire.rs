//! Little-endian primitives for section payloads, plus the length-prefixed
//! frame codec the serving fleet speaks over TCP.
//!
//! Sections hold structured data (configs, bin edges, tensor blobs); this
//! module gives both sides a shared, bounds-checked encoding so a flipped
//! byte inside a payload surfaces as a [`StoreError`] during decode, never
//! as a panic or an out-of-bounds slice.
//!
//! [`Frame`] extends the same integrity story to a byte *stream*: every
//! frame is magic-tagged, length-prefixed, capped, and CRC-checked, so a
//! truncated, corrupt, or oversized frame read off a socket surfaces as a
//! typed [`StoreError`] — never a panic, never a pathological allocation,
//! and never silently-wrong bytes handed to the layer above.

use crate::{Crc32, Result, StoreError};
use std::io::{Read, Write};

/// Append one raw byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u128`, little-endian.
pub fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a bool as one byte (0 or 1).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// Length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Length-prefixed raw bytes.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Length-prefixed f32 buffer, element-wise little-endian.
///
/// On little-endian targets this is a straight memcpy of the buffer's byte
/// view; on big-endian targets elements are swapped individually, so the
/// on-disk format is identical everywhere.
pub fn put_f32_slice(buf: &mut Vec<u8>, values: &[f32]) {
    put_u64(buf, values.len() as u64);
    #[cfg(target_endian = "little")]
    {
        let bytes: &[u8] = unsafe {
            // f32 has no padding or invalid bit patterns when viewed as bytes.
            std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 4)
        };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Length-prefixed list of u64 values.
pub fn put_u64_slice(buf: &mut Vec<u8>, values: &[u64]) {
    put_u64(buf, values.len() as u64);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked reader over a payload slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the payload was consumed exactly.
    pub fn expect_end(&self, context: &str) -> Result<()> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{context}: {} unexpected trailing bytes",
                self.remaining()
            )))
        }
    }

    /// Read exactly `len` raw bytes, or [`StoreError::Truncated`].
    pub fn get_bytes(&mut self, len: usize, what: &'static str) -> Result<&'a [u8]> {
        if len > self.remaining() {
            return Err(StoreError::Truncated(what));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Read exactly `N` bytes into an array.
    pub fn get_array<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N]> {
        Ok(self.get_bytes(N, what)?.try_into().expect("length checked"))
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.get_array::<1>(what)?[0])
    }

    /// Read a bool byte; anything other than 0/1 is [`StoreError::Corrupt`].
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(StoreError::Corrupt(format!(
                "{what}: invalid bool byte {v}"
            ))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.get_array::<4>(what)?))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.get_array::<8>(what)?))
    }

    /// Read a little-endian `u128`.
    pub fn get_u128(&mut self, what: &'static str) -> Result<u128> {
        Ok(u128::from_le_bytes(self.get_array::<16>(what)?))
    }

    /// Read a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64> {
        Ok(f64::from_le_bytes(self.get_array::<8>(what)?))
    }

    /// Read a `u64` and convert to `usize`, erroring on overflow.
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize> {
        let v = self.get_u64(what)?;
        usize::try_from(v)
            .map_err(|_| StoreError::Corrupt(format!("{what}: value {v} overflows usize")))
    }

    /// Length-prefixed UTF-8 string (see [`put_str`]).
    pub fn get_str(&mut self, what: &'static str) -> Result<&'a str> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.get_bytes(len, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| StoreError::Corrupt(format!("{what}: invalid UTF-8")))
    }

    /// Length-prefixed f32 buffer (see [`put_f32_slice`]).
    pub fn get_f32_vec(&mut self, what: &'static str) -> Result<Vec<f32>> {
        let len = self.get_usize(what)?;
        let byte_len = len
            .checked_mul(4)
            .ok_or_else(|| StoreError::Corrupt(format!("{what}: length {len} overflows")))?;
        let bytes = self.get_bytes(byte_len, what)?;
        let mut out = Vec::with_capacity(len);
        for chunk in bytes.chunks_exact(4) {
            out.push(f32::from_le_bytes(chunk.try_into().expect("chunked by 4")));
        }
        Ok(out)
    }

    /// Length-prefixed u64 list (see [`put_u64_slice`]).
    pub fn get_u64_vec(&mut self, what: &'static str) -> Result<Vec<u64>> {
        let len = self.get_usize(what)?;
        let byte_len = len
            .checked_mul(8)
            .ok_or_else(|| StoreError::Corrupt(format!("{what}: length {len} overflows")))?;
        let bytes = self.get_bytes(byte_len, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("chunked by 8")))
            .collect())
    }

    /// Length-prefixed raw bytes (see [`put_bytes`]).
    pub fn get_byte_vec(&mut self, what: &'static str) -> Result<&'a [u8]> {
        let len = self.get_usize(what)?;
        self.get_bytes(len, what)
    }
}

/// Frame magic: identifies one fleet wire frame. Distinct from the
/// checkpoint magic so a stray checkpoint byte-stream (or HTTP request)
/// aimed at a fleet port fails fast with a clear error.
pub const FRAME_MAGIC: [u8; 4] = *b"PFR1";

/// Bytes of frame header preceding the payload:
/// magic (4) + kind (1) + id (8) + payload length (4) + CRC32 (4).
pub const FRAME_HEADER_LEN: usize = 21;

/// Default cap on a single frame's payload. Large enough for a full
/// weight-checkpoint hot-swap frame, small enough that a corrupt length
/// field cannot drive a pathological allocation.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// One length-prefixed, CRC-checked wire frame.
///
/// The layout on the wire (all integers little-endian):
///
/// ```text
/// offset  size  field
/// ------  ----  --------------------------------------
///      0     4  magic "PFR1"
///      4     1  kind (application-defined message type)
///      5     8  id (request correlation tag)
///     13     4  payload length (u32)
///     17     4  CRC32 of kind + id + payload
///     21     n  payload bytes
/// ```
///
/// The id travels with every frame so responses can be matched to
/// requests on a pipelined connection (many frames in flight at once,
/// answered out of order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-defined message type.
    pub kind: u8,
    /// Request correlation id (echoed by responses).
    pub id: u64,
    /// Message payload, encoded with this module's primitives.
    pub payload: Vec<u8>,
}

fn frame_crc(kind: u8, id: u64, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&id.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// Encode one frame into a fresh buffer (header + payload).
pub fn encode_frame(kind: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(kind, id, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w`. Does not flush; callers batching several
/// frames onto a `BufWriter` flush once at the end.
pub fn write_frame(w: &mut impl Write, kind: u8, id: u64, payload: &[u8]) -> Result<()> {
    w.write_all(&encode_frame(kind, id, payload))?;
    Ok(())
}

/// Read exactly `buf.len()` bytes, mapping a mid-read EOF to
/// [`StoreError::Truncated`]. Returns `Ok(false)` when the stream is at a
/// clean EOF *before the first byte* and `eof_ok` allows it.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_ok: bool,
    what: &'static str,
) -> Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(StoreError::Truncated(what));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame from `r`, enforcing `max_payload` and the CRC.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer closed
/// an idle connection). Every malformed shape is a typed error:
///
/// * stream ends mid-header or mid-payload → [`StoreError::Truncated`];
/// * wrong magic → [`StoreError::Corrupt`];
/// * declared payload length over `max_payload` →
///   [`StoreError::FrameTooLarge`] (raised *before* any allocation);
/// * CRC mismatch → [`StoreError::ChecksumMismatch`].
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Option<Frame>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    if !read_exact_or_eof(r, &mut header, true, "frame header")? {
        return Ok(None);
    }
    if header[..4] != FRAME_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "bad frame magic {:02x}{:02x}{:02x}{:02x}",
            header[0], header[1], header[2], header[3]
        )));
    }
    let kind = header[4];
    let id = u64::from_le_bytes(header[5..13].try_into().expect("sliced to 8"));
    let len = u32::from_le_bytes(header[13..17].try_into().expect("sliced to 4")) as usize;
    let crc = u32::from_le_bytes(header[17..21].try_into().expect("sliced to 4"));
    if len > max_payload {
        return Err(StoreError::FrameTooLarge {
            declared: len as u64,
            cap: max_payload as u64,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or_eof(r, &mut payload, false, "frame payload")?;
    if frame_crc(kind, id, &payload) != crc {
        return Err(StoreError::ChecksumMismatch {
            section: format!("frame kind {kind} id {id}"),
        });
    }
    Ok(Some(Frame { kind, id, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_bool(&mut buf, true);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_u128(&mut buf, u128::MAX / 7);
        put_f64(&mut buf, -1.25e300);
        put_str(&mut buf, "layer/0.w");
        put_f32_slice(&mut buf, &[1.5, -2.5, f32::MIN_POSITIVE]);
        put_u64_slice(&mut buf, &[1, 2, 3]);

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert!(r.get_bool("b").unwrap());
        assert_eq!(r.get_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_u128("e").unwrap(), u128::MAX / 7);
        assert_eq!(r.get_f64("f").unwrap(), -1.25e300);
        assert_eq!(r.get_str("g").unwrap(), "layer/0.w");
        assert_eq!(
            r.get_f32_vec("h").unwrap(),
            vec![1.5, -2.5, f32::MIN_POSITIVE]
        );
        assert_eq!(r.get_u64_vec("i").unwrap(), vec![1, 2, 3]);
        r.expect_end("test payload").unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut buf = Vec::new();
        put_f32_slice(&mut buf, &[1.0, 2.0, 3.0]);
        for len in 0..buf.len() {
            let mut r = Reader::new(&buf[..len]);
            assert!(r.get_f32_vec("x").is_err(), "prefix {len} should fail");
        }
    }

    #[test]
    fn invalid_bool_is_corrupt_not_panic() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.get_bool("flag"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 3, 42, b"hello fleet").unwrap();
        write_frame(&mut stream, 7, u64::MAX, &[]).unwrap();
        let mut cursor = &stream[..];
        let a = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!(
            (a.kind, a.id, a.payload.as_slice()),
            (3, 42, &b"hello fleet"[..])
        );
        let b = read_frame(&mut cursor, MAX_FRAME_PAYLOAD).unwrap().unwrap();
        assert_eq!((b.kind, b.id, b.payload.len()), (7, u64::MAX, 0));
        // Clean EOF at a frame boundary is Ok(None), not an error.
        assert!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_frame_is_typed_truncation() {
        let frame = encode_frame(1, 9, b"payload bytes");
        for len in 1..frame.len() {
            let mut cursor = &frame[..len];
            assert!(
                matches!(
                    read_frame(&mut cursor, MAX_FRAME_PAYLOAD),
                    Err(StoreError::Truncated(_))
                ),
                "prefix {len} must be a typed truncation"
            );
        }
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        // A frame declaring a 4 GiB-ish payload against a small cap must
        // fail typed without ever allocating the declared length.
        let mut header = Vec::new();
        header.extend_from_slice(&FRAME_MAGIC);
        header.push(1);
        header.extend_from_slice(&5u64.to_le_bytes());
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = &header[..];
        match read_frame(&mut cursor, 1024) {
            Err(StoreError::FrameTooLarge { declared, cap }) => {
                assert_eq!(declared, u32::MAX as u64);
                assert_eq!(cap, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_flipped_payload_are_typed() {
        let mut frame = encode_frame(2, 11, b"abcdef");
        frame[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &frame[..], MAX_FRAME_PAYLOAD),
            Err(StoreError::Corrupt(_))
        ));

        let mut frame = encode_frame(2, 11, b"abcdef");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &frame[..], MAX_FRAME_PAYLOAD),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }
}
