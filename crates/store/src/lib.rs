//! # prionn-store
//!
//! A self-describing binary checkpoint container for PRIONN model state.
//!
//! The online-learning protocol's whole value is the *warm start*: weights
//! accumulated over hundreds of retraining events. This crate makes that
//! state durable with a format designed for hot tensor payloads — no
//! per-element framing, just named byte sections with integrity checks:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------
//!      0     8  magic  "PRIONNCK"
//!      8     4  format version (u32 LE)
//!     12     4  section count  (u32 LE)
//! then, per section:
//!      +0    4  name length   (u32 LE)
//!      +4    n  name bytes    (UTF-8)
//!    +4+n    8  payload length (u64 LE)
//!   +12+n    4  CRC32 of name + payload (IEEE, u32 LE)
//!   +16+n    m  payload bytes
//! ```
//!
//! Every multi-byte integer is little-endian. Loads are fully
//! bounds-checked and CRC-verified: a corrupted file of any shape returns
//! a [`StoreError`], never a panic and never silently-wrong tensors.
//!
//! Writes are atomic: the file is assembled in `<path>.tmp`, fsynced,
//! then renamed over the destination, so a crash mid-snapshot leaves the
//! previous checkpoint intact.
//!
//! The same section format also travels *in memory*: [`broadcast::WeightBus`]
//! publishes epoch-tagged weight checkpoints to serving replicas with an
//! atomic swap, so a retrained model reaches every replica without any
//! reader ever observing a torn payload.

#![warn(missing_docs)]

pub mod broadcast;
pub mod wire;

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic: identifies a PRIONN checkpoint.
pub const MAGIC: [u8; 8] = *b"PRIONNCK";

/// Current format version. Bump on any layout change; loaders reject
/// versions they do not understand rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on section count and name length so a corrupted header cannot
/// drive pathological allocations.
const MAX_SECTIONS: u32 = 1 << 16;
const MAX_NAME_LEN: u32 = 1 << 12;

/// Everything that can go wrong writing or reading a checkpoint.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error while reading or writing.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion(u32),
    /// The file ended (or a declared length overran the buffer) while
    /// reading the named piece of the layout.
    Truncated(&'static str),
    /// A section's CRC32 did not match its contents.
    ChecksumMismatch {
        /// Name of the section whose CRC failed.
        section: String,
    },
    /// Structurally invalid contents (bad UTF-8 name, absurd lengths,
    /// malformed section payload, ...).
    Corrupt(String),
    /// A wire frame declared a payload longer than the receiver's cap.
    /// Distinct from [`StoreError::Corrupt`] so servers can answer it with
    /// a typed protocol error instead of dropping the connection.
    FrameTooLarge {
        /// Payload length the frame header declared.
        declared: u64,
        /// The receiver's configured cap, in bytes.
        cap: u64,
    },
    /// `insert` was called twice with the same section name.
    DuplicateSection(String),
    /// A required section is absent.
    MissingSection(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint io error: {e}"),
            StoreError::BadMagic => write!(f, "not a PRIONN checkpoint (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            StoreError::Truncated(what) => write!(f, "checkpoint truncated while reading {what}"),
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            StoreError::FrameTooLarge { declared, cap } => {
                write!(f, "frame payload of {declared} bytes exceeds cap {cap}")
            }
            StoreError::DuplicateSection(name) => write!(f, "duplicate section '{name}'"),
            StoreError::MissingSection(name) => write!(f, "missing section '{name}'"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Crate-wide result alias over [`StoreError`].
pub type Result<T> = std::result::Result<T, StoreError>;

/// An in-memory checkpoint: an ordered set of named byte sections.
///
/// Section order is preserved exactly, so `save -> load -> save` is
/// byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// An empty checkpoint with no sections.
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Add a named section. Names must be unique within a checkpoint.
    pub fn insert(&mut self, name: impl Into<String>, payload: Vec<u8>) -> Result<()> {
        let name = name.into();
        if self.sections.iter().any(|(n, _)| *n == name) {
            return Err(StoreError::DuplicateSection(name));
        }
        if name.len() as u64 > MAX_NAME_LEN as u64 {
            return Err(StoreError::Corrupt(format!(
                "section name too long: {} bytes",
                name.len()
            )));
        }
        self.sections.push((name, payload));
        Ok(())
    }

    /// Look up a section's payload.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// Look up a section's payload, erroring if absent.
    pub fn require(&self, name: &str) -> Result<&[u8]> {
        self.get(name)
            .ok_or_else(|| StoreError::MissingSection(name.to_string()))
    }

    /// True if a section with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True if the checkpoint holds no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Serialize to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: usize = self
            .sections
            .iter()
            .map(|(n, p)| 4 + n.len() + 8 + 4 + p.len())
            .sum();
        let mut out = Vec::with_capacity(16 + body);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&section_crc(name, payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parse the on-disk byte layout, verifying structure and checksums.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = wire::Reader::new(bytes);
        let magic = r.get_array::<8>("magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.get_u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let count = r.get_u32("section count")?;
        if count > MAX_SECTIONS {
            return Err(StoreError::Corrupt(format!(
                "section count {count} exceeds limit"
            )));
        }
        let mut checkpoint = Checkpoint::new();
        for _ in 0..count {
            let name_len = r.get_u32("section name length")?;
            if name_len > MAX_NAME_LEN {
                return Err(StoreError::Corrupt(format!(
                    "section name length {name_len} exceeds limit"
                )));
            }
            let name_bytes = r.get_bytes(name_len as usize, "section name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| StoreError::Corrupt("section name is not UTF-8".into()))?
                .to_string();
            let payload_len = r.get_u64("section payload length")?;
            let crc = r.get_u32("section checksum")?;
            let payload_len = usize::try_from(payload_len)
                .map_err(|_| StoreError::Corrupt("section payload length overflow".into()))?;
            let payload = r.get_bytes(payload_len, "section payload")?;
            if section_crc(&name, payload) != crc {
                return Err(StoreError::ChecksumMismatch { section: name });
            }
            let payload = payload.to_vec();
            checkpoint.insert(name, payload)?;
        }
        if !r.is_at_end() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after final section",
                r.remaining()
            )));
        }
        Ok(checkpoint)
    }

    /// Write atomically: assemble in `<path>.tmp`, fsync, rename over
    /// `path`. A crash at any point leaves either the old file or the new
    /// one, never a torn mix.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = tmp_path(path);
        let bytes = self.to_bytes();
        let result = (|| -> Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp, path)?;
            // Make the rename itself durable where the platform allows.
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    if let Ok(d) = fs::File::open(dir) {
                        let _ = d.sync_all();
                    }
                }
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Read and verify a checkpoint file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = fs::read(path)?;
        Checkpoint::from_bytes(&bytes)
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

fn section_crc(name: &str, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(name.as_bytes());
    crc.update(payload);
    crc.finish()
}

/// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator (state `!0`, per the IEEE convention).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold more bytes into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = crc32_table();
        let mut s = self.state;
        for &b in bytes {
            s = (s >> 8) ^ table[((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// The final checksum value (does not consume the accumulator).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_crc_matches_one_shot() {
        let data = b"split across multiple updates";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..20]);
        c.update(&data[20..]);
        assert_eq!(c.finish(), crc32(data));
    }

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new();
        c.insert("meta", b"hello".to_vec()).unwrap();
        c.insert("weights/0", vec![0u8; 1024]).unwrap();
        c.insert("empty", Vec::new()).unwrap();
        c
    }

    #[test]
    fn roundtrip_preserves_sections_and_order() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(
            back.section_names().collect::<Vec<_>>(),
            vec!["meta", "weights/0", "empty"]
        );
        // Determinism: encode(decode(x)) == x.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn duplicate_sections_rejected() {
        let mut c = Checkpoint::new();
        c.insert("a", vec![1]).unwrap();
        assert!(matches!(
            c.insert("a", vec![2]),
            Err(StoreError::DuplicateSection(_))
        ));
    }

    #[test]
    fn missing_section_is_error() {
        let c = sample();
        assert!(c.get("nope").is_none());
        assert!(matches!(
            c.require("nope"),
            Err(StoreError::MissingSection(_))
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let c = sample();
        let mut bytes = c.to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(StoreError::BadMagic)
        ));

        let mut bytes = c.to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_anywhere_is_an_error() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes should not parse"
            );
        }
    }

    #[test]
    fn atomic_write_roundtrip_and_no_tmp_left() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("prionn-store-test-{}.ckpt", std::process::id()));
        let c = sample();
        c.write_atomic(&path).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file should be renamed away");
        let back = Checkpoint::read(&path).unwrap();
        assert_eq!(back, c);
        let _ = std::fs::remove_file(&path);
    }
}
