//! Epoch-tagged, atomically-published weight broadcast.
//!
//! The serving gateway runs N model replicas on worker threads while a
//! background trainer keeps improving the master model. After each retrain
//! the new weights must reach every replica *atomically*: a replica either
//! serves the old weights or the new weights, never a half-applied mix.
//!
//! [`WeightBus`] provides that guarantee with the cheapest possible
//! mechanism: the publisher encodes the weights into the same
//! [`Checkpoint`] section format that goes to disk, wraps them in an
//! epoch-tagged [`VersionedWeights`], and swaps an `Arc` behind an
//! `RwLock`. Readers clone the `Arc` (one pointer copy under a read lock)
//! and then decode entirely from their private snapshot — the publisher can
//! replace the slot mid-decode without the reader ever observing a torn
//! payload. Epochs are strictly monotonic, so a replica can tell in O(1)
//! whether its loaded weights are current.
//!
//! Sharing the wire format with the on-disk checkpoints means the broadcast
//! inherits their integrity story for free: [`WeightBus::publish_bytes`]
//! CRC-verifies every section before the payload becomes visible to any
//! replica.

use crate::{Checkpoint, Result};
use std::sync::{Arc, RwLock};

/// One published weight set: the payload plus the epoch that identifies it.
#[derive(Debug)]
pub struct VersionedWeights {
    /// Strictly monotonic publication counter. Epoch 0 is the initial state
    /// (no payload yet published); the first publish produces epoch 1.
    pub epoch: u64,
    /// The published weights in checkpoint section format, or `None` at
    /// epoch 0.
    pub payload: Option<Arc<Checkpoint>>,
}

/// An atomically-swapped, epoch-tagged slot holding the latest published
/// weights. Cloning the bus is cheap and shares the slot, so one publisher
/// and any number of replica readers can hold handles.
///
/// ```
/// use prionn_store::{broadcast::WeightBus, Checkpoint};
///
/// let bus = WeightBus::new();
/// assert_eq!(bus.epoch(), 0);
/// let mut ck = Checkpoint::new();
/// ck.insert("model.runtime", vec![1, 2, 3]).unwrap();
/// let epoch = bus.publish(ck);
/// assert_eq!(epoch, 1);
/// let latest = bus.latest();
/// assert_eq!(latest.epoch, 1);
/// assert!(latest.payload.as_ref().unwrap().contains("model.runtime"));
/// ```
#[derive(Clone)]
pub struct WeightBus {
    slot: Arc<RwLock<Arc<VersionedWeights>>>,
}

impl WeightBus {
    /// A bus at epoch 0 with no published payload.
    pub fn new() -> Self {
        WeightBus {
            slot: Arc::new(RwLock::new(Arc::new(VersionedWeights {
                epoch: 0,
                payload: None,
            }))),
        }
    }

    /// Publish a new weight set, returning its (strictly increasing) epoch.
    /// The swap is atomic: readers see either the previous version or this
    /// one in full.
    pub fn publish(&self, ck: Checkpoint) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        let epoch = slot.epoch + 1;
        *slot = Arc::new(VersionedWeights {
            epoch,
            payload: Some(Arc::new(ck)),
        });
        epoch
    }

    /// Publish weights from their serialized checkpoint bytes (e.g. read
    /// from a snapshot file or received from a remote trainer). The bytes
    /// are structure- and CRC-verified *before* the swap, so a corrupt
    /// payload can never become visible to a replica.
    pub fn publish_bytes(&self, bytes: &[u8]) -> Result<u64> {
        Ok(self.publish(Checkpoint::from_bytes(bytes)?))
    }

    /// The latest published version. The returned snapshot is immutable and
    /// private to the caller: later publishes do not affect it.
    pub fn latest(&self) -> Arc<VersionedWeights> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current epoch without cloning the payload handle.
    pub fn epoch(&self) -> u64 {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).epoch
    }
}

impl Default for WeightBus {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WeightBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightBus")
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(tag: u8) -> Checkpoint {
        let mut c = Checkpoint::new();
        c.insert("weights", vec![tag; 16]).unwrap();
        c
    }

    #[test]
    fn epochs_are_strictly_monotonic() {
        let bus = WeightBus::new();
        assert_eq!(bus.epoch(), 0);
        assert!(bus.latest().payload.is_none());
        for i in 1..=5 {
            assert_eq!(bus.publish(ck(i as u8)), i);
            assert_eq!(bus.epoch(), i);
        }
    }

    #[test]
    fn latest_snapshot_is_immune_to_later_publishes() {
        let bus = WeightBus::new();
        bus.publish(ck(1));
        let snap = bus.latest();
        bus.publish(ck(2));
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.payload.as_ref().unwrap().get("weights").unwrap()[0], 1);
        assert_eq!(bus.latest().epoch, 2);
    }

    #[test]
    fn publish_bytes_verifies_before_swapping() {
        let bus = WeightBus::new();
        bus.publish(ck(7));
        assert!(bus.publish_bytes(b"definitely not a checkpoint").is_err());
        // A failed publish must leave the slot untouched.
        assert_eq!(bus.latest().epoch, 1);
        let bytes = ck(9).to_bytes();
        assert_eq!(bus.publish_bytes(&bytes).unwrap(), 2);
    }

    #[test]
    fn concurrent_readers_never_see_a_torn_version() {
        let bus = WeightBus::new();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let bus = bus.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let v = bus.latest();
                        assert!(v.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = v.epoch;
                        if let Some(p) = &v.payload {
                            // Payload tag must match its epoch exactly —
                            // a torn mix would break this.
                            let w = p.get("weights").unwrap();
                            assert!(w.iter().all(|&b| b == (v.epoch as u8)));
                        } else {
                            assert_eq!(v.epoch, 0);
                        }
                    }
                })
            })
            .collect();
        for i in 1..=50u64 {
            bus.publish(ck(i as u8));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(bus.epoch(), 50);
    }
}
