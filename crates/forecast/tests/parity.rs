//! Randomized parity suite: the incremental [`IoAggregator`] against the
//! batch `prionn_sched::io_timeline`, which is the correctness oracle.
//!
//! Two regimes:
//!
//! * **Exact** — minute-aligned intervals with integer bandwidths. Every
//!   per-(job, minute) contribution is an integer, f64 addition of
//!   integers below 2^53 is exact in any order, so the aggregator must
//!   match the batch rebuild **bit-for-bit**, through adds *and* removes.
//! * **General** — arbitrary second-aligned intervals and fractional
//!   bandwidths. Both sides compute identical per-(job, minute) terms
//!   (`prionn_sched::minute_contribution`); only summation order differs,
//!   so the snapshots must agree to a tight relative bound.

use prionn_forecast::IoAggregator;
use prionn_sched::io::{horizon_minutes, io_timeline, JobIoInterval};
use proptest::prelude::*;

const HORIZON: usize = 240; // minutes

fn exact_intervals() -> impl Strategy<Value = Vec<JobIoInterval>> {
    // Minute-aligned starts/lengths (some past the horizon), integer
    // bandwidths; lengths of 0 exercise the degenerate-interval skip.
    proptest::collection::vec((0u64..300, 0u64..120, 0u64..1000), 0..64).prop_map(|raw| {
        raw.into_iter()
            .map(|(start_min, len_min, bw)| JobIoInterval {
                start: start_min * 60,
                end: (start_min + len_min) * 60,
                bandwidth: bw as f64,
            })
            .collect()
    })
}

fn general_intervals() -> impl Strategy<Value = Vec<JobIoInterval>> {
    proptest::collection::vec((0u64..18_000, 0u64..7_200, 0u64..1_000_000), 0..64).prop_map(|raw| {
        raw.into_iter()
            .map(|(start, len, bw)| JobIoInterval {
                start,
                end: start + len,
                bandwidth: bw as f64 / 997.0, // fractional, non-dyadic
            })
            .collect()
    })
}

fn build(intervals: &[JobIoInterval]) -> IoAggregator {
    let mut agg = IoAggregator::new(HORIZON);
    for iv in intervals {
        agg.add(iv);
    }
    agg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Exact regime: snapshot equals the batch timeline bit-for-bit.
    #[test]
    fn aligned_snapshot_is_bit_identical(intervals in exact_intervals()) {
        let batch = io_timeline(&intervals, HORIZON);
        let agg = build(&intervals);
        let snap = agg.snapshot(HORIZON);
        prop_assert_eq!(&snap, &batch);
        // Random-access point reads agree with the sweep.
        for m in (0..HORIZON).step_by(17) {
            prop_assert_eq!(agg.value_at(m), batch[m]);
        }
    }

    // Exact regime with churn: removing a random suffix leaves exactly
    // the batch timeline of the remaining prefix — removes fully undo
    // adds.
    #[test]
    fn aligned_removal_matches_batch_of_remainder(
        intervals in exact_intervals(),
        keep_frac in 0usize..101,
    ) {
        let keep = intervals.len() * keep_frac / 100;
        let mut agg = build(&intervals);
        for iv in &intervals[keep..] {
            agg.remove(iv);
        }
        let batch = io_timeline(&intervals[..keep], HORIZON);
        prop_assert_eq!(agg.snapshot(HORIZON), batch);
    }

    // General regime: identical per-term arithmetic, so any difference is
    // summation order — bounded at 1e-9 relative per minute.
    #[test]
    fn general_snapshot_matches_batch_tightly(intervals in general_intervals()) {
        let batch = io_timeline(&intervals, HORIZON);
        let agg = build(&intervals);
        let snap = agg.snapshot(HORIZON);
        for (m, (a, b)) in snap.iter().zip(&batch).enumerate() {
            let scale = b.abs().max(1.0);
            prop_assert!(
                (a - b).abs() <= 1e-9 * scale,
                "minute {}: incremental {} vs batch {}", m, a, b
            );
        }
    }

    // The streaming cursor agrees with the snapshot along a monotone
    // advance — the read path the forecaster actually uses.
    #[test]
    fn cursor_walk_matches_snapshot(intervals in exact_intervals()) {
        let batch = io_timeline(&intervals, HORIZON);
        let mut agg = build(&intervals);
        for (m, &expect) in batch.iter().enumerate() {
            prop_assert_eq!(agg.advance_to(m), expect, "minute {}", m);
        }
    }

    // Intervals past the horizon are cleanly truncated: the part within
    // the horizon contributes exactly as the batch (which clips the same
    // way), and reads past the horizon are zero. Also pins
    // `horizon_minutes` round-up behaviour.
    #[test]
    fn horizon_truncation_is_clean(
        intervals in exact_intervals(),
        extra_start in 0u64..200,
        extra_len in 1u64..100_000,
    ) {
        let mut all = intervals;
        // One interval guaranteed to span (or start past) the horizon.
        let runaway = JobIoInterval {
            start: extra_start * 60,
            end: extra_start * 60 + extra_len * 60,
            bandwidth: 13.0,
        };
        all.push(runaway);
        let batch = io_timeline(&all, HORIZON);
        let agg = build(&all);
        prop_assert_eq!(agg.snapshot(HORIZON), batch);
        prop_assert_eq!(agg.value_at(HORIZON), 0.0);
        prop_assert_eq!(agg.value_at(HORIZON + 1000), 0.0);
        // horizon_minutes always covers every interval's end, rounded up.
        let h = horizon_minutes(&all);
        for iv in &all {
            prop_assert!(h as u64 * 60 >= iv.end);
        }
        prop_assert!(h == 0 || all.iter().any(|iv| iv.end > (h as u64 - 1) * 60));
    }
}
