//! Edge-triggered burst alerts over the forecast stream, mirroring the
//! drift-alert machinery in `prionn-observe`: crossing into a forecast
//! burst records one `forecast_burst_alert` event in the shared telemetry
//! span log (and bumps `forecast_burst_alerts_total`); crossing back out
//! records `forecast_burst_clear`. A forecast sitting above threshold does
//! not flood the event ring, and consumers (the serve gateway's pre-shed
//! hook, the `/forecast` ops route) read the level-triggered
//! [`BurstAlerter::alerting`] flag.

use std::collections::VecDeque;

use prionn_sched::burst::burst_threshold;
use prionn_telemetry::{Counter, Gauge, Histogram, Telemetry};

/// Alerting policy.
#[derive(Debug, Clone)]
pub struct AlertConfig {
    /// Rolling window of trailing *actual* aggregates the mean+1σ burst
    /// threshold is derived from (the paper's threshold, computed live).
    pub threshold_window: usize,
    /// Actual samples required before alerts may fire.
    pub min_samples: usize,
    /// Fixed threshold override (B/s); `None` derives mean+1σ from the
    /// trailing window.
    pub threshold_override: Option<f64>,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            threshold_window: 360, // six hours of minutes
            min_samples: 30,
            threshold_override: None,
        }
    }
}

/// An alert edge returned by [`BurstAlerter::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransition {
    /// The forecast crossed above the burst threshold.
    Raised,
    /// The forecast dropped back below it.
    Cleared,
}

/// Edge-triggered burst alerter fed one (actual, forecast) pair per minute.
pub struct BurstAlerter {
    cfg: AlertConfig,
    telemetry: Telemetry,
    trailing: VecDeque<f64>,
    trailing_sum: f64,
    alerting: bool,
    threshold: f64,
    // instruments
    aggregate_gauge: Gauge,
    horizon_gauge: Gauge,
    threshold_gauge: Gauge,
    active_gauge: Gauge,
    alerts_total: Counter,
    samples_total: Counter,
    error_hist: Histogram,
    // forecasts waiting for their target minute's actual, oldest first,
    // as (target_minute, forecast) — scored into `error_hist` on arrival.
    pending: VecDeque<(u64, f64)>,
}

impl BurstAlerter {
    /// Build an alerter registering its instruments in `telemetry`.
    pub fn new(telemetry: &Telemetry, cfg: AlertConfig) -> Self {
        BurstAlerter {
            trailing: VecDeque::with_capacity(cfg.threshold_window.max(1)),
            trailing_sum: 0.0,
            alerting: false,
            threshold: cfg.threshold_override.unwrap_or(0.0),
            aggregate_gauge: telemetry.gauge(
                "forecast_aggregate_bandwidth",
                "Cluster-wide per-minute IO bandwidth aggregate (B/s) at the forecast clock",
            ),
            horizon_gauge: telemetry.gauge(
                "forecast_horizon_bandwidth",
                "Forecast aggregate bandwidth (B/s) at the configured lead horizon",
            ),
            threshold_gauge: telemetry.gauge(
                "forecast_burst_threshold",
                "Live mean+1sigma burst threshold derived from trailing actuals (B/s)",
            ),
            active_gauge: telemetry.gauge(
                "forecast_burst_active",
                "1 while a burst is forecast within the lead horizon, else 0",
            ),
            alerts_total: telemetry.counter(
                "forecast_burst_alerts_total",
                "Forecast crossed above the burst threshold (edge-triggered)",
            ),
            samples_total: telemetry.counter(
                "forecast_samples_total",
                "Per-minute aggregate samples folded into the forecaster",
            ),
            error_hist: telemetry.histogram(
                "forecast_abs_error",
                "Absolute forecast error |actual - forecast| scored when the target minute arrives (B/s)",
            ),
            telemetry: telemetry.clone(),
            cfg,
            pending: VecDeque::new(),
        }
    }

    /// Alerter with default tuning.
    pub fn with_defaults(telemetry: &Telemetry) -> Self {
        Self::new(telemetry, AlertConfig::default())
    }

    /// True while the forecast sits above the burst threshold.
    pub fn alerting(&self) -> bool {
        self.alerting
    }

    /// The threshold currently in force (B/s).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Fold in minute `minute`'s observed aggregate and the forecast for
    /// `minute + horizon`. Returns the edge, if one fired.
    pub fn observe(
        &mut self,
        minute: u64,
        actual: f64,
        horizon: u64,
        forecast: f64,
    ) -> Option<AlertTransition> {
        if !actual.is_finite() || !forecast.is_finite() {
            return None;
        }
        self.samples_total.inc();
        self.aggregate_gauge.set(actual);
        self.horizon_gauge.set(forecast);

        // Score every pending forecast whose target minute has arrived.
        // Same-minute aggregates only: a forecast for a *later* minute
        // stays queued.
        while let Some(&(target, f)) = self.pending.front() {
            if target > minute {
                break;
            }
            self.pending.pop_front();
            if target == minute {
                self.error_hist.observe((actual - f).abs());
            }
        }
        self.pending.push_back((minute + horizon, forecast));

        // Slide the trailing-actual window and refresh the threshold.
        if self.trailing.len() >= self.cfg.threshold_window.max(1) {
            if let Some(old) = self.trailing.pop_front() {
                self.trailing_sum -= old;
            }
        }
        self.trailing.push_back(actual);
        self.trailing_sum += actual;
        self.threshold = match self.cfg.threshold_override {
            Some(t) => t,
            None => {
                // One O(window) pass per minute: cheap (window ≤ a few
                // hundred) and exactly the paper's mean+1σ definition.
                self.trailing.make_contiguous();
                burst_threshold(self.trailing.as_slices().0)
            }
        };
        self.threshold_gauge.set(self.threshold);

        if self.trailing.len() < self.cfg.min_samples.max(1) {
            return None;
        }
        let burst = forecast > self.threshold;
        if burst && !self.alerting {
            self.alerting = true;
            self.active_gauge.set(1.0);
            self.alerts_total.inc();
            self.telemetry.events().record(
                "forecast_burst_alert",
                format!(
                    "minute={minute} horizon={horizon} forecast={forecast:.3e} threshold={:.3e}",
                    self.threshold
                ),
                0,
            );
            Some(AlertTransition::Raised)
        } else if !burst && self.alerting {
            self.alerting = false;
            self.active_gauge.set(0.0);
            self.telemetry.events().record(
                "forecast_burst_clear",
                format!(
                    "minute={minute} forecast={forecast:.3e} threshold={:.3e}",
                    self.threshold
                ),
                0,
            );
            Some(AlertTransition::Cleared)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alerter(t: &Telemetry) -> BurstAlerter {
        BurstAlerter::new(
            t,
            AlertConfig {
                threshold_window: 32,
                min_samples: 8,
                threshold_override: None,
            },
        )
    }

    #[test]
    fn alert_is_edge_triggered_and_clears() {
        let t = Telemetry::new();
        let mut a = alerter(&t);
        // Quiet baseline, then a sustained forecast burst, then calm.
        for m in 0..16u64 {
            assert_eq!(a.observe(m, 1.0 + (m % 3) as f64 * 0.1, 5, 1.0), None);
        }
        assert!(!a.alerting());
        let raised = a.observe(16, 1.0, 5, 500.0);
        assert_eq!(raised, Some(AlertTransition::Raised));
        // Still bursting: no second edge.
        assert_eq!(a.observe(17, 1.0, 5, 500.0), None);
        assert!(a.alerting());
        let cleared = a.observe(18, 1.0, 5, 1.0);
        assert_eq!(cleared, Some(AlertTransition::Cleared));
        assert!(!a.alerting());

        let events = t.events().drain();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "forecast_burst_alert")
                .count(),
            1
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "forecast_burst_clear")
                .count(),
            1
        );
        assert!(t.prometheus().contains("forecast_burst_alerts_total 1"));
    }

    #[test]
    fn no_alerts_before_min_samples() {
        let t = Telemetry::new();
        let mut a = alerter(&t);
        for m in 0..7u64 {
            assert_eq!(a.observe(m, 1.0, 5, 1e9), None, "minute {m}");
        }
        assert!(!a.alerting());
    }

    #[test]
    fn forecast_errors_are_scored_when_the_target_minute_arrives() {
        let t = Telemetry::new();
        let mut a = BurstAlerter::new(
            &t,
            AlertConfig {
                threshold_window: 8,
                min_samples: 2,
                threshold_override: Some(1e12),
            },
        );
        // Forecast 10.0 for minute 2; actual at minute 2 is 14.0 -> |err| 4.
        a.observe(0, 5.0, 2, 10.0);
        a.observe(1, 5.0, 2, 10.0);
        a.observe(2, 14.0, 2, 10.0);
        let text = t.prometheus();
        assert!(
            text.contains("forecast_abs_error_count 1"),
            "one scored forecast:\n{text}"
        );
        assert!(text.contains("forecast_abs_error_sum 4"), "{text}");
    }

    #[test]
    fn fixed_threshold_override_is_respected() {
        let t = Telemetry::new();
        let mut a = BurstAlerter::new(
            &t,
            AlertConfig {
                threshold_window: 8,
                min_samples: 1,
                threshold_override: Some(100.0),
            },
        );
        assert_eq!(a.observe(0, 1.0, 5, 99.0), None);
        assert_eq!(a.observe(1, 1.0, 5, 101.0), Some(AlertTransition::Raised));
        assert_eq!(a.threshold(), 100.0);
    }

    #[test]
    fn non_finite_inputs_are_ignored() {
        let t = Telemetry::new();
        let mut a = alerter(&t);
        assert_eq!(a.observe(0, f64::NAN, 5, 1.0), None);
        assert_eq!(a.observe(0, 1.0, 5, f64::INFINITY), None);
        assert!(!a.alerting());
    }
}
