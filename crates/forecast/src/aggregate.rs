//! The incremental cluster aggregator: a hierarchical time-wheel over
//! per-minute buckets that maintains the system IO timeline *online*.
//!
//! `prionn_sched::io_timeline` rebuilds the whole per-minute timeline from
//! scratch — O(jobs × minutes) — every time anything changes. At the
//! ROADMAP's target scale (100k+ concurrent simulated jobs, multi-day
//! horizons) that rebuild is millions of bucket updates per submission.
//! [`IoAggregator`] instead supports adding or removing one job's predicted
//! IO interval in **O(log n)** and reading the live aggregate in **O(1)**,
//! while producing the *same* per-minute values as the batch rebuild.
//!
//! # Structure
//!
//! A job interval `[start, end)` at bandwidth `b` decomposes into at most
//! two *partial* boundary minutes plus a run of *full* minutes:
//!
//! ```text
//!         start                                      end
//!           v                                         v
//! |....|..██|████|████|████|████|█...|....|
//!       ^^^^ partial      full ^^^^^ partial
//! ```
//!
//! * **Partial minutes** (≤ 2 per job) go straight into a per-minute
//!   `partial` bucket array — a point update each.
//! * **Full minutes** all receive exactly the same per-minute contribution,
//!   so the run is stored as a *range add* in a difference array
//!   (`delta[l] += c; delta[r] -= c`) — O(1) — mirrored into a Fenwick
//!   (binary-indexed) tree so random-access point reads stay O(log n)
//!   instead of O(n) prefix scans.
//!
//! The value of minute `m` is `partial[m] + Σ delta[0..=m]`. A full
//! [`snapshot`](IoAggregator::snapshot) is one linear sweep over the
//! difference array (O(horizon)), a random [`value_at`](IoAggregator::value_at)
//! is a Fenwick prefix sum (O(log n)), and the monotone
//! [`advance_to`](IoAggregator::advance_to) cursor — the "wheel" the
//! forecaster rides as simulated time passes — is amortized O(1).
//!
//! # Parity with the batch timeline
//!
//! Every per-(job, minute) term is computed by
//! [`prionn_sched::minute_contribution`], the same function the batch
//! [`prionn_sched::io_timeline`] uses, so the two sides agree term-by-term.
//! The only remaining difference is floating-point summation *order*; on
//! minute-aligned integer-bandwidth workloads (where f64 addition is exact)
//! the aggregator is bit-for-bit identical to the batch rebuild — the
//! randomized parity suite in `tests/parity.rs` asserts exactly that, plus
//! a 1e-9 relative bound on arbitrary unaligned inputs.

use prionn_sched::io::{minute_contribution, JobIoInterval};

/// Incremental per-minute system-IO aggregate over a fixed horizon.
///
/// Intervals extending past the horizon are truncated exactly like the
/// batch [`prionn_sched::io_timeline`] truncates them (the part within the
/// horizon still contributes); intervals entirely past it contribute
/// nothing. Degenerate intervals (`end <= start` or non-positive
/// bandwidth) are ignored, also mirroring the batch semantics.
#[derive(Debug, Clone)]
pub struct IoAggregator {
    /// Partial (boundary) minute contributions, point-updated.
    partial: Vec<f64>,
    /// Difference array for full-minute range adds; minute `m`'s full
    /// contribution is the prefix sum `delta[0..=m]`.
    delta: Vec<f64>,
    /// Fenwick tree over `delta` for O(log n) point reads.
    fenwick: Vec<f64>,
    /// Jobs currently resident (adds minus removes that contributed).
    active_jobs: usize,
    /// Sum of resident jobs' bandwidths — the O(1) "cluster is moving this
    /// many bytes/second right now (while all resident jobs run)" readout.
    total_bandwidth: f64,
    /// Jobs whose interval was clipped at the horizon.
    truncated_jobs: u64,
    /// Streaming cursor: minute index and the full-minute prefix at it.
    cursor: usize,
    cursor_prefix: f64,
    /// Set when an update touched `delta[..=cursor]`; the next
    /// `advance_to` resynchronises from the Fenwick tree.
    cursor_dirty: bool,
}

impl IoAggregator {
    /// An empty aggregator covering minutes `[0, horizon_minutes)`.
    pub fn new(horizon_minutes: usize) -> Self {
        IoAggregator {
            partial: vec![0.0; horizon_minutes],
            delta: vec![0.0; horizon_minutes],
            fenwick: vec![0.0; horizon_minutes],
            active_jobs: 0,
            total_bandwidth: 0.0,
            truncated_jobs: 0,
            cursor: 0,
            cursor_prefix: 0.0,
            cursor_dirty: true,
        }
    }

    /// The aggregation horizon, in minutes.
    pub fn horizon_minutes(&self) -> usize {
        self.partial.len()
    }

    /// Jobs currently contributing to the aggregate.
    pub fn active_jobs(&self) -> usize {
        self.active_jobs
    }

    /// O(1): the summed bandwidth of every resident job (the instantaneous
    /// cluster IO rate while all of them run).
    pub fn total_bandwidth(&self) -> f64 {
        self.total_bandwidth
    }

    /// Jobs whose interval was clipped at the horizon so far.
    pub fn truncated_jobs(&self) -> u64 {
        self.truncated_jobs
    }

    /// Add one job's predicted IO interval. O(log horizon).
    pub fn add(&mut self, iv: &JobIoInterval) {
        self.apply(iv, 1.0);
    }

    /// Remove a previously added interval (the job finished, or its
    /// prediction was revised — remove the old, add the new). O(log
    /// horizon). Removing an interval that was never added is a caller
    /// bug; the aggregate goes negative in its minutes.
    pub fn remove(&mut self, iv: &JobIoInterval) {
        self.apply(iv, -1.0);
    }

    fn apply(&mut self, iv: &JobIoInterval, sign: f64) {
        if iv.end <= iv.start || iv.bandwidth <= 0.0 {
            return; // same degenerate-interval skip as the batch rebuild
        }
        let horizon_secs = self.partial.len() as u64 * 60;
        if iv.end > horizon_secs && sign > 0.0 {
            self.truncated_jobs += 1;
        }
        let start = iv.start.min(horizon_secs);
        let end = iv.end.min(horizon_secs);
        self.active_jobs = if sign > 0.0 {
            self.active_jobs + 1
        } else {
            self.active_jobs.saturating_sub(1)
        };
        self.total_bandwidth += sign * iv.bandwidth;
        if start == end {
            return; // entirely past the horizon: resident but contributing 0
        }

        let first = (start / 60) as usize;
        let last = ((end - 1) / 60) as usize; // inclusive
        if first == last {
            // Entirely within one minute.
            let overlap = end - start;
            if overlap == 60 {
                self.range_add(
                    first,
                    first + 1,
                    sign * minute_contribution(iv.bandwidth, 60),
                );
            } else {
                self.partial[first] += sign * minute_contribution(iv.bandwidth, overlap);
            }
            return;
        }

        // Head minute.
        let head_overlap = (first as u64 + 1) * 60 - start;
        let mut full_lo = first;
        if head_overlap < 60 {
            self.partial[first] += sign * minute_contribution(iv.bandwidth, head_overlap);
            full_lo = first + 1;
        }
        // Tail minute.
        let tail_overlap = end - last as u64 * 60;
        let mut full_hi = last + 1;
        if tail_overlap < 60 {
            self.partial[last] += sign * minute_contribution(iv.bandwidth, tail_overlap);
            full_hi = last;
        }
        if full_lo < full_hi {
            self.range_add(
                full_lo,
                full_hi,
                sign * minute_contribution(iv.bandwidth, 60),
            );
        }
    }

    /// Range-add `v` to the full-minute layer over `[l, r)`: two point
    /// updates in the difference array, mirrored into the Fenwick tree.
    fn range_add(&mut self, l: usize, r: usize, v: f64) {
        self.delta[l] += v;
        self.fenwick_add(l, v);
        if r < self.delta.len() {
            self.delta[r] -= v;
            self.fenwick_add(r, -v);
        }
        if l <= self.cursor {
            self.cursor_dirty = true;
        }
    }

    fn fenwick_add(&mut self, idx: usize, v: f64) {
        let mut i = idx + 1;
        while i <= self.fenwick.len() {
            self.fenwick[i - 1] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Prefix sum `delta[0..=m]` from the Fenwick tree. O(log horizon).
    fn fenwick_prefix(&self, m: usize) -> f64 {
        let mut i = m + 1;
        let mut s = 0.0;
        while i > 0 {
            s += self.fenwick[i - 1];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// The aggregate bandwidth at minute `m`. O(log horizon).
    pub fn value_at(&self, m: usize) -> f64 {
        if m >= self.partial.len() {
            return 0.0;
        }
        self.partial[m] + self.fenwick_prefix(m)
    }

    /// Streaming read at minute `m` for a monotonically advancing clock —
    /// the time-wheel cursor. Amortized O(1) while `m` only moves forward
    /// and no update lands behind the cursor; falls back to one O(log
    /// horizon) Fenwick resync otherwise.
    pub fn advance_to(&mut self, m: usize) -> f64 {
        if m >= self.partial.len() {
            return 0.0;
        }
        if self.cursor_dirty || m < self.cursor {
            self.cursor_prefix = self.fenwick_prefix(m);
            self.cursor = m;
            self.cursor_dirty = false;
        } else {
            while self.cursor < m {
                self.cursor += 1;
                self.cursor_prefix += self.delta[self.cursor];
            }
        }
        self.partial[m] + self.cursor_prefix
    }

    /// Materialise the first `horizon_minutes` buckets — the same shape
    /// the batch [`prionn_sched::io_timeline`] returns. One linear sweep:
    /// O(min(horizon_minutes, capacity)), independent of job count.
    pub fn snapshot(&self, horizon_minutes: usize) -> Vec<f64> {
        let h = horizon_minutes.min(self.partial.len());
        let mut out = Vec::with_capacity(horizon_minutes);
        let mut running = 0.0;
        for m in 0..h {
            running += self.delta[m];
            out.push(self.partial[m] + running);
        }
        out.resize(horizon_minutes, 0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prionn_sched::io_timeline;

    fn iv(start: u64, end: u64, bandwidth: f64) -> JobIoInterval {
        JobIoInterval {
            start,
            end,
            bandwidth,
        }
    }

    #[test]
    fn matches_batch_on_basic_shapes() {
        let intervals = [
            iv(0, 60, 100.0),      // one full minute
            iv(30, 90, 100.0),     // two partial halves
            iv(0, 120, 10.0),      // two full minutes
            iv(65, 70, 12.0),      // sub-minute sliver
            iv(60, 60, 99.0),      // degenerate
            iv(10, 5, 99.0),       // inverted
            iv(0, 60, 0.0),        // zero bandwidth
            iv(100, 100_000, 3.0), // clipped at horizon
        ];
        let h = 5;
        let batch = io_timeline(&intervals, h);
        let mut agg = IoAggregator::new(h);
        for i in &intervals {
            agg.add(i);
        }
        assert_eq!(agg.snapshot(h), batch);
        for (m, expected) in batch.iter().enumerate() {
            assert_eq!(agg.value_at(m), *expected, "minute {m}");
        }
    }

    #[test]
    fn remove_undoes_add_exactly_on_aligned_input() {
        let keep = iv(0, 180, 5.0);
        let gone = iv(60, 240, 7.0);
        let mut agg = IoAggregator::new(6);
        agg.add(&keep);
        agg.add(&gone);
        agg.remove(&gone);
        assert_eq!(agg.snapshot(6), io_timeline(&[keep], 6));
        assert_eq!(agg.active_jobs(), 1);
        assert!((agg.total_bandwidth() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cursor_advances_and_resyncs_after_late_updates() {
        let mut agg = IoAggregator::new(10);
        agg.add(&iv(0, 600, 2.0));
        assert_eq!(agg.advance_to(0), 2.0);
        assert_eq!(agg.advance_to(4), 2.0);
        // An update landing behind the cursor forces a resync.
        agg.add(&iv(0, 300, 1.0));
        assert_eq!(agg.advance_to(4), 3.0);
        assert_eq!(agg.advance_to(5), 2.0);
        assert_eq!(agg.advance_to(9), 2.0);
        // Rewinding is allowed (one Fenwick resync).
        assert_eq!(agg.advance_to(2), 3.0);
    }

    #[test]
    fn horizon_truncation_is_clean() {
        let mut agg = IoAggregator::new(3);
        agg.add(&iv(0, 6000, 7.0)); // clipped: only minutes 0..3 count
        agg.add(&iv(100_000, 200_000, 9.0)); // entirely past the horizon
        assert_eq!(agg.snapshot(3), vec![7.0, 7.0, 7.0]);
        assert_eq!(agg.truncated_jobs(), 2);
        assert_eq!(agg.active_jobs(), 2);
        assert_eq!(agg.value_at(10), 0.0);
        // Snapshots longer than the capacity zero-fill the excess.
        assert_eq!(agg.snapshot(5), vec![7.0, 7.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_aggregator_reads_zero_everywhere() {
        let mut agg = IoAggregator::new(8);
        assert_eq!(agg.snapshot(8), vec![0.0; 8]);
        assert_eq!(agg.value_at(3), 0.0);
        assert_eq!(agg.advance_to(7), 0.0);
        assert_eq!(agg.total_bandwidth(), 0.0);
        assert_eq!(agg.active_jobs(), 0);
    }
}
