//! The forecaster family over the live aggregate: EWMA, Holt
//! double-exponential smoothing, and a seasonal-naive baseline.
//!
//! All three are *online* models — O(1) state, one `observe` per minute —
//! because the input is the unbounded stream the [`crate::IoAggregator`]
//! produces as simulated time advances, not a fixed array. They forecast
//! `h` minutes ahead; [`forecast_timeline`] turns a historical aggregate
//! into the per-minute forecast series a burst evaluation needs, and
//! [`evaluate`] sweeps horizons × matching windows to produce the paper's
//! Fig. 10-style sensitivity/precision table via
//! [`prionn_sched::burst_metrics`].

use prionn_sched::burst::{burst_metrics, BurstMetrics};

/// An online per-minute bandwidth forecaster.
pub trait Forecaster {
    /// Fold in the aggregate observed for the current minute.
    fn observe(&mut self, value: f64);
    /// Forecast the aggregate `steps_ahead` minutes past the last
    /// observation (`steps_ahead >= 1`). Before any observation the
    /// forecast is `0.0`.
    fn forecast(&self, steps_ahead: usize) -> f64;
    /// Stable display name (`ewma` / `holt` / `seasonal_naive`).
    fn name(&self) -> &'static str;
    /// Reset to the pre-observation state.
    fn reset(&mut self);
}

/// Exponentially weighted moving average: flat-line forecast at the
/// smoothed level. The paper-adjacent baseline — cheap, robust, blind to
/// trends.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    level: Option<f64>,
}

impl Ewma {
    /// `alpha` in `(0, 1]`: weight of the newest observation.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            level: None,
        }
    }
}

impl Forecaster for Ewma {
    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.level = Some(match self.level {
            None => value,
            Some(l) => l + self.alpha * (value - l),
        });
    }

    fn forecast(&self, _steps_ahead: usize) -> f64 {
        self.level.unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "ewma"
    }

    fn reset(&mut self) {
        self.level = None;
    }
}

/// Holt double-exponential smoothing: level + trend, so a *rising* IO ramp
/// is extrapolated upward instead of lagged — exactly what catches the
/// leading edge of a burst earlier than EWMA does.
#[derive(Debug, Clone)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    state: Option<(f64, f64)>, // (level, trend)
}

impl Holt {
    /// `alpha` smooths the level, `beta` the trend; both in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        Holt {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            beta: beta.clamp(f64::EPSILON, 1.0),
            state: None,
        }
    }
}

impl Forecaster for Holt {
    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.state = Some(match self.state {
            None => (value, 0.0),
            Some((level, trend)) => {
                let new_level = self.alpha * value + (1.0 - self.alpha) * (level + trend);
                let new_trend = self.beta * (new_level - level) + (1.0 - self.beta) * trend;
                (new_level, new_trend)
            }
        });
    }

    fn forecast(&self, steps_ahead: usize) -> f64 {
        match self.state {
            None => 0.0,
            // Bandwidth cannot go negative: clamp the extrapolation.
            Some((level, trend)) => (level + steps_ahead as f64 * trend).max(0.0),
        }
    }

    fn name(&self) -> &'static str {
        "holt"
    }

    fn reset(&mut self) {
        self.state = None;
    }
}

/// Seasonal-naive baseline: "the next minute looks like the same minute
/// one period ago" (e.g. period 1440 = same time yesterday). The honesty
/// check every learned forecaster has to beat on periodic workloads.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    history: std::collections::VecDeque<f64>,
}

impl SeasonalNaive {
    /// `period` in minutes (clamped to ≥ 1).
    pub fn new(period: usize) -> Self {
        let period = period.max(1);
        SeasonalNaive {
            period,
            history: std::collections::VecDeque::with_capacity(period),
        }
    }
}

impl Forecaster for SeasonalNaive {
    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if self.history.len() == self.period {
            self.history.pop_front();
        }
        self.history.push_back(value);
    }

    fn forecast(&self, steps_ahead: usize) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        if self.history.len() < self.period {
            // No full season yet: fall back to the last observation.
            return *self.history.back().unwrap();
        }
        // The observation `period` minutes before the forecast target:
        // target t+h, reference t+h-period, which sits `period - h` back
        // from the newest observation (wrapping for h > period).
        let steps = steps_ahead.max(1);
        let back = (self.period - 1) - ((steps - 1) % self.period);
        self.history[self.history.len() - 1 - back]
    }

    fn name(&self) -> &'static str {
        "seasonal_naive"
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Run `forecaster` over `actual`, emitting the per-minute series of
/// `horizon`-minute-ahead forecasts: `out[t]` is what the forecaster said
/// at time `t - horizon` about time `t`. The first `horizon` minutes have
/// no forecast yet and are `0.0` (scored as non-burst — the warm-up
/// window).
pub fn forecast_timeline(
    forecaster: &mut dyn Forecaster,
    actual: &[f64],
    horizon: usize,
) -> Vec<f64> {
    forecaster.reset();
    let horizon = horizon.max(1);
    let mut out = vec![0.0; actual.len()];
    for (t, &v) in actual.iter().enumerate() {
        forecaster.observe(v);
        let target = t + horizon;
        if target < out.len() {
            out[target] = forecaster.forecast(horizon);
        }
    }
    out
}

/// One row of the horizon × window evaluation sweep.
#[derive(Debug, Clone)]
pub struct ForecastEval {
    /// Forecaster display name.
    pub forecaster: &'static str,
    /// Forecast lead time, minutes.
    pub horizon: usize,
    /// Burst matching window (full width, minutes).
    pub window: usize,
    /// Burst sensitivity/precision of the forecast series vs the actuals.
    pub metrics: BurstMetrics,
    /// Mean absolute forecast error over the scored minutes (B/s).
    pub mae: f64,
}

/// Sweep `horizons` × `windows`, scoring `forecaster` against `actual`
/// with the paper's burst sensitivity/precision (threshold always from
/// the actual series) — the Fig. 10-style table for the live aggregate.
pub fn evaluate(
    forecaster: &mut dyn Forecaster,
    actual: &[f64],
    horizons: &[usize],
    windows: &[usize],
) -> Vec<ForecastEval> {
    let mut rows = Vec::with_capacity(horizons.len() * windows.len());
    for &h in horizons {
        let predicted = forecast_timeline(forecaster, actual, h);
        let scored = actual.len().saturating_sub(h);
        let mae = if scored == 0 {
            0.0
        } else {
            actual
                .iter()
                .zip(&predicted)
                .skip(h)
                .map(|(a, p)| (a - p).abs())
                .sum::<f64>()
                / scored as f64
        };
        for &w in windows {
            rows.push(ForecastEval {
                forecaster: forecaster.name(),
                horizon: h,
                window: w,
                metrics: burst_metrics(actual, &predicted, w),
                mae,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut f = Ewma::new(0.3);
        assert_eq!(f.forecast(1), 0.0);
        for _ in 0..200 {
            f.observe(42.0);
        }
        assert!((f.forecast(1) - 42.0).abs() < 1e-9);
        assert!((f.forecast(30) - 42.0).abs() < 1e-9, "flat across horizons");
    }

    #[test]
    fn holt_extrapolates_a_linear_ramp() {
        let mut f = Holt::new(0.5, 0.5);
        for t in 0..200 {
            f.observe(10.0 * t as f64);
        }
        // On a perfect ramp the h-step forecast continues the ramp.
        let last = 10.0 * 199.0;
        let pred5 = f.forecast(5);
        assert!(
            (pred5 - (last + 50.0)).abs() < 5.0,
            "pred5={pred5} expected ~{}",
            last + 50.0
        );
        // And never goes negative on a falling ramp.
        let mut down = Holt::new(0.5, 0.5);
        for t in 0..50 {
            down.observe(100.0 - 10.0 * t as f64);
        }
        assert_eq!(down.forecast(60), 0.0);
    }

    #[test]
    fn seasonal_naive_repeats_the_period() {
        let mut f = SeasonalNaive::new(4);
        for &v in &[1.0, 2.0, 3.0, 4.0] {
            f.observe(v);
        }
        // Forecast h steps ahead = value h into the last season.
        assert_eq!(f.forecast(1), 1.0);
        assert_eq!(f.forecast(2), 2.0);
        assert_eq!(f.forecast(4), 4.0);
        assert_eq!(f.forecast(5), 1.0, "wraps past one period");
        f.observe(10.0); // season slides: [2,3,4,10]
        assert_eq!(f.forecast(1), 2.0);
    }

    #[test]
    fn forecast_timeline_aligns_lead_time() {
        // A step at t=5; an EWMA with alpha=1 is "last value", so the
        // 2-ahead forecast reproduces the step shifted by exactly 2.
        let actual = [0.0, 0.0, 0.0, 0.0, 0.0, 9.0, 9.0, 9.0, 9.0, 9.0];
        let mut f = Ewma::new(1.0);
        let pred = forecast_timeline(&mut f, &actual, 2);
        assert_eq!(pred[6], 0.0);
        assert_eq!(pred[7], 9.0);
        assert_eq!(pred[..2], [0.0, 0.0], "warm-up window is zero");
    }

    #[test]
    fn evaluate_produces_full_sweep_with_perfect_scores_on_periodic_input() {
        // Period-8 signal with one burst per period: seasonal-naive at any
        // horizon nails it once a full season is seen.
        let mut actual = Vec::new();
        for _ in 0..16 {
            actual.extend_from_slice(&[1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 1.0, 1.0]);
        }
        let mut f = SeasonalNaive::new(8);
        let rows = evaluate(&mut f, &actual, &[1, 8], &[3, 5]);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.metrics.sensitivity > 0.9,
                "h={} w={} sens={}",
                row.horizon,
                row.window,
                row.metrics.sensitivity
            );
            assert!(row.mae.is_finite());
        }
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut f = Ewma::new(0.5);
        f.observe(10.0);
        f.observe(f64::NAN);
        f.observe(f64::INFINITY);
        assert!((f.forecast(1) - 10.0).abs() < 1e-12);
        let mut h = Holt::new(0.5, 0.5);
        h.observe(f64::NAN);
        assert_eq!(h.forecast(1), 0.0);
    }
}
