//! # prionn-forecast — cluster-scale IO burst forecasting
//!
//! The paper's end-goal is system-wide IO burst detection: per-job IO
//! predictions summed into a per-minute cluster timeline, bursts at the
//! mean+1σ threshold (Fig. 10). `prionn_sched::io_timeline` computes that
//! timeline as a batch rebuild — O(jobs × minutes) — which cannot keep up
//! with 100k+ concurrent jobs arriving and finishing continuously. This
//! crate makes the aggregate *live* and pushes it *forward in time*:
//!
//! * [`aggregate`] — [`IoAggregator`], a hierarchical time-wheel over
//!   per-minute buckets: O(log n) add/remove of one job's predicted IO
//!   interval, O(1) streaming reads, batch-identical snapshots (the
//!   randomized parity suite in `tests/parity.rs` holds it bit-for-bit
//!   against `io_timeline` on exact inputs).
//! * [`forecaster`] — an online forecaster family over the live
//!   aggregate: [`Ewma`], [`Holt`] double-exponential smoothing, and a
//!   [`SeasonalNaive`] baseline, with the horizon × window burst
//!   sensitivity/precision sweep ([`evaluate`]) reusing
//!   `prionn_sched::burst`.
//! * [`alert`] — [`BurstAlerter`]: edge-triggered `forecast_burst_alert` /
//!   `forecast_burst_clear` events in the shared telemetry span log (the
//!   same machinery as `prionn-observe`'s drift alerts) plus the
//!   `forecast_*` gauge/counter/histogram surface.
//! * [`engine`] — [`ForecastEngine`]: everything behind one thread-safe
//!   handle, exposing a pressure probe for `prionn-serve`'s pre-shed
//!   admission hook and a JSON snapshot probe for `prionn-observe`'s
//!   `/forecast` ops route.
//!
//! ```
//! use prionn_forecast::{ForecastConfig, ForecastEngine, ForecasterKind};
//! use prionn_sched::JobIoInterval;
//! use prionn_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let engine = ForecastEngine::new(
//!     &telemetry,
//!     ForecastConfig {
//!         horizon_minutes: 60,
//!         lead_minutes: 5,
//!         forecaster: ForecasterKind::Ewma { alpha: 0.5 },
//!         ..ForecastConfig::default()
//!     },
//! );
//! engine.job_started(&JobIoInterval { start: 0, end: 1800, bandwidth: 1e6 });
//! let tick = engine.tick();
//! assert!((tick.aggregate - 1e6).abs() < 1.0);
//! ```
//!
//! The crate depends only on `prionn-sched` and `prionn-telemetry`, so it
//! slots below `observe`/`serve` in the dependency graph; the serving
//! stack consumes it through probe closures rather than a hard dependency.
//! See `DESIGN.md` §14 and `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod alert;
pub mod engine;
pub mod forecaster;

pub use aggregate::IoAggregator;
// Re-exported so downstream users of the engine (`job_started` /
// `job_finished` take one) don't need a direct `prionn-sched` dependency.
pub use alert::{AlertConfig, AlertTransition, BurstAlerter};
pub use engine::{ForecastConfig, ForecastEngine, ForecastSnapshot, ForecastTick, ForecasterKind};
pub use forecaster::{
    evaluate, forecast_timeline, Ewma, ForecastEval, Forecaster, Holt, SeasonalNaive,
};
pub use prionn_sched::io::JobIoInterval;
