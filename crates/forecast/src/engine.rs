//! [`ForecastEngine`]: the aggregator, a forecaster, and the alerter glued
//! behind one shared, thread-safe handle — the object the scheduler
//! simulator feeds (job started / finished), the minute clock drives
//! ([`ForecastEngine::tick`]), the serve gateway's pre-shed hook polls
//! ([`ForecastEngine::pressure_probe`]), and the `/forecast` ops route
//! snapshots ([`ForecastEngine::ops_probe`]).

use std::sync::{Arc, Mutex};

use prionn_sched::io::JobIoInterval;
use prionn_telemetry::{Gauge, Telemetry};

use crate::aggregate::IoAggregator;
use crate::alert::{AlertConfig, AlertTransition, BurstAlerter};
use crate::forecaster::{Ewma, Forecaster, Holt, SeasonalNaive};

/// Which forecaster the engine runs over the live aggregate.
#[derive(Debug, Clone, Copy)]
pub enum ForecasterKind {
    /// Exponentially weighted moving average at weight `alpha`.
    Ewma {
        /// Weight of the newest observation, `(0, 1]`.
        alpha: f64,
    },
    /// Holt double-exponential smoothing (level `alpha`, trend `beta`).
    Holt {
        /// Level smoothing weight, `(0, 1]`.
        alpha: f64,
        /// Trend smoothing weight, `(0, 1]`.
        beta: f64,
    },
    /// Seasonal-naive at `period` minutes.
    SeasonalNaive {
        /// Season length in minutes (e.g. 1440 = daily).
        period: usize,
    },
}

impl ForecasterKind {
    fn build(self) -> Box<dyn Forecaster + Send> {
        match self {
            ForecasterKind::Ewma { alpha } => Box::new(Ewma::new(alpha)),
            ForecasterKind::Holt { alpha, beta } => Box::new(Holt::new(alpha, beta)),
            ForecasterKind::SeasonalNaive { period } => Box::new(SeasonalNaive::new(period)),
        }
    }
}

/// Engine tuning.
#[derive(Debug, Clone)]
pub struct ForecastConfig {
    /// Aggregation wheel capacity, minutes (intervals past it truncate).
    pub horizon_minutes: usize,
    /// Forecast lead time, minutes: alerts fire when the aggregate
    /// `lead_minutes` ahead is predicted to burst.
    pub lead_minutes: u64,
    /// The forecaster over the live aggregate.
    pub forecaster: ForecasterKind,
    /// Alerting policy.
    pub alert: AlertConfig,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        ForecastConfig {
            horizon_minutes: 7 * 24 * 60, // one week of minutes
            lead_minutes: 10,
            forecaster: ForecasterKind::Holt {
                alpha: 0.5,
                beta: 0.3,
            },
            alert: AlertConfig::default(),
        }
    }
}

/// One minute's readout from [`ForecastEngine::tick`].
#[derive(Debug, Clone, Copy)]
pub struct ForecastTick {
    /// The minute just observed.
    pub minute: u64,
    /// Aggregate bandwidth observed at that minute (B/s).
    pub aggregate: f64,
    /// Forecast aggregate `lead_minutes` ahead (B/s).
    pub forecast: f64,
    /// Burst threshold in force (B/s).
    pub threshold: f64,
    /// True while a burst is forecast (level-triggered).
    pub alerting: bool,
    /// The alert edge this tick produced, if any.
    pub transition: Option<AlertTransition>,
}

/// Point-in-time engine state for the `/forecast` ops route.
#[derive(Debug, Clone)]
pub struct ForecastSnapshot {
    /// Minutes ticked so far (the engine clock).
    pub minute: u64,
    /// Forecast lead time, minutes.
    pub lead_minutes: u64,
    /// Latest observed aggregate (B/s).
    pub aggregate: f64,
    /// Latest forecast at the lead horizon (B/s).
    pub forecast: f64,
    /// Burst threshold in force (B/s).
    pub threshold: f64,
    /// True while a burst is forecast.
    pub alerting: bool,
    /// Jobs currently resident in the aggregator.
    pub active_jobs: usize,
    /// Summed bandwidth of resident jobs (B/s).
    pub total_bandwidth: f64,
    /// Jobs clipped at the aggregation horizon so far.
    pub truncated_jobs: u64,
    /// Forecaster display name.
    pub forecaster: &'static str,
}

impl ForecastSnapshot {
    /// Render as the JSON document `/forecast` serves.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"minute\":{},\"lead_minutes\":{},\"aggregate_bps\":{:.6},",
                "\"forecast_bps\":{:.6},\"threshold_bps\":{:.6},\"alerting\":{},",
                "\"active_jobs\":{},\"total_bandwidth_bps\":{:.6},",
                "\"truncated_jobs\":{},\"forecaster\":\"{}\"}}"
            ),
            self.minute,
            self.lead_minutes,
            self.aggregate,
            self.forecast,
            self.threshold,
            self.alerting,
            self.active_jobs,
            self.total_bandwidth,
            self.truncated_jobs,
            self.forecaster
        )
    }

    /// Compact single-line rendering for logs and demos.
    pub fn render(&self) -> String {
        format!(
            "minute {}: aggregate={:.3e} B/s forecast(+{}m)={:.3e} B/s threshold={:.3e} B/s jobs={}{}",
            self.minute,
            self.aggregate,
            self.lead_minutes,
            self.forecast,
            self.threshold,
            self.active_jobs,
            if self.alerting { " BURST-ALERT" } else { "" }
        )
    }
}

struct EngineInner {
    aggregator: IoAggregator,
    forecaster: Box<dyn Forecaster + Send>,
    alerter: BurstAlerter,
    lead_minutes: u64,
    clock: u64,
    last_aggregate: f64,
    last_forecast: f64,
    resident_gauge: Gauge,
    truncated_gauge: Gauge,
}

/// The cluster-scale burst forecasting engine. Cloning shares state; all
/// methods take `&self` and are thread-safe.
#[derive(Clone)]
pub struct ForecastEngine {
    inner: Arc<Mutex<EngineInner>>,
}

impl std::fmt::Debug for ForecastEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForecastEngine").finish()
    }
}

fn lock(m: &Mutex<EngineInner>) -> std::sync::MutexGuard<'_, EngineInner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ForecastEngine {
    /// Build an engine registering its instruments in `telemetry`.
    pub fn new(telemetry: &Telemetry, cfg: ForecastConfig) -> Self {
        ForecastEngine {
            inner: Arc::new(Mutex::new(EngineInner {
                aggregator: IoAggregator::new(cfg.horizon_minutes),
                forecaster: cfg.forecaster.build(),
                alerter: BurstAlerter::new(telemetry, cfg.alert),
                lead_minutes: cfg.lead_minutes.max(1),
                clock: 0,
                last_aggregate: 0.0,
                last_forecast: 0.0,
                resident_gauge: telemetry.gauge(
                    "forecast_resident_jobs",
                    "Jobs currently resident in the forecast aggregator",
                ),
                truncated_gauge: telemetry.gauge(
                    "forecast_truncated_jobs",
                    "Jobs whose IO interval was clipped at the aggregation horizon",
                ),
            })),
        }
    }

    /// Engine with default tuning.
    pub fn with_defaults(telemetry: &Telemetry) -> Self {
        Self::new(telemetry, ForecastConfig::default())
    }

    /// A job started (or its prediction arrived): fold its predicted IO
    /// interval into the aggregate. O(log horizon).
    pub fn job_started(&self, iv: &JobIoInterval) {
        let mut s = lock(&self.inner);
        s.aggregator.add(iv);
        let (resident, truncated) = (s.aggregator.active_jobs(), s.aggregator.truncated_jobs());
        s.resident_gauge.set(resident as f64);
        s.truncated_gauge.set(truncated as f64);
    }

    /// A job finished (or its prediction was revised: remove old, add
    /// new): withdraw its interval from the aggregate. O(log horizon).
    pub fn job_finished(&self, iv: &JobIoInterval) {
        let mut s = lock(&self.inner);
        s.aggregator.remove(iv);
        let resident = s.aggregator.active_jobs();
        s.resident_gauge.set(resident as f64);
    }

    /// Advance the engine clock one minute: observe the aggregate at the
    /// current minute, refresh the forecast at the lead horizon, and run
    /// the alerter. Returns the minute's readout.
    pub fn tick(&self) -> ForecastTick {
        let mut s = lock(&self.inner);
        let minute = s.clock;
        s.clock += 1;
        let aggregate = s.aggregator.advance_to(minute as usize);
        s.forecaster.observe(aggregate);
        let lead = s.lead_minutes;
        let forecast = s.forecaster.forecast(lead as usize);
        let transition = s.alerter.observe(minute, aggregate, lead, forecast);
        s.last_aggregate = aggregate;
        s.last_forecast = forecast;
        ForecastTick {
            minute,
            aggregate,
            forecast,
            threshold: s.alerter.threshold(),
            alerting: s.alerter.alerting(),
            transition,
        }
    }

    /// [`tick`](Self::tick) repeatedly until the clock reaches `minute`
    /// (exclusive), returning the last readout, if any ticks ran.
    pub fn tick_to(&self, minute: u64) -> Option<ForecastTick> {
        let mut last = None;
        while lock(&self.inner).clock < minute {
            last = Some(self.tick());
        }
        last
    }

    /// Level-triggered burst pressure: true while a burst is forecast
    /// within the lead horizon. This is what the serve gateway's pre-shed
    /// admission hook polls.
    pub fn pressure(&self) -> bool {
        lock(&self.inner).alerter.alerting()
    }

    /// The pressure flag as a shareable probe closure, shaped for
    /// `prionn_serve::GatewayConfig::pressure`.
    pub fn pressure_probe(&self) -> Arc<dyn Fn() -> bool + Send + Sync> {
        let engine = self.clone();
        Arc::new(move || engine.pressure())
    }

    /// Point-in-time readout of the whole engine.
    pub fn snapshot(&self) -> ForecastSnapshot {
        let s = lock(&self.inner);
        ForecastSnapshot {
            minute: s.clock,
            lead_minutes: s.lead_minutes,
            aggregate: s.last_aggregate,
            forecast: s.last_forecast,
            threshold: s.alerter.threshold(),
            alerting: s.alerter.alerting(),
            active_jobs: s.aggregator.active_jobs(),
            total_bandwidth: s.aggregator.total_bandwidth(),
            truncated_jobs: s.aggregator.truncated_jobs(),
            forecaster: s.forecaster.name(),
        }
    }

    /// The snapshot as a JSON-producing probe closure, shaped for
    /// `prionn_observe::OpsOptions::forecast` (the `/forecast` route).
    pub fn ops_probe(&self) -> Arc<dyn Fn() -> String + Send + Sync> {
        let engine = self.clone();
        Arc::new(move || engine.snapshot().to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ForecastConfig {
        ForecastConfig {
            horizon_minutes: 120,
            lead_minutes: 5,
            forecaster: ForecasterKind::Ewma { alpha: 1.0 },
            alert: AlertConfig {
                threshold_window: 64,
                min_samples: 4,
                threshold_override: Some(100.0),
            },
        }
    }

    fn iv(start: u64, end: u64, bandwidth: f64) -> JobIoInterval {
        JobIoInterval {
            start,
            end,
            bandwidth,
        }
    }

    #[test]
    fn ticks_observe_the_aggregate_and_raise_pressure() {
        let t = Telemetry::new();
        let engine = ForecastEngine::new(&t, cfg());
        // Calm minutes 0..10, then a 200 B/s burst from minute 10.
        engine.job_started(&iv(0, 120 * 60, 10.0));
        engine.job_started(&iv(10 * 60, 20 * 60, 200.0));

        let at9 = engine.tick_to(10).unwrap();
        assert!((at9.aggregate - 10.0).abs() < 1e-9);
        assert!(!engine.pressure());

        // With alpha=1 EWMA the forecast equals the last observation:
        // minute 10 observes 210 B/s > the 100 B/s override -> alert.
        let at10 = engine.tick();
        assert!((at10.aggregate - 210.0).abs() < 1e-9);
        assert_eq!(at10.transition, Some(AlertTransition::Raised));
        assert!(engine.pressure());
        assert!(engine.pressure_probe()());

        // The burst ends at minute 20: pressure clears.
        let at20 = engine.tick_to(21).unwrap();
        assert!((at20.aggregate - 10.0).abs() < 1e-9);
        assert_eq!(at20.transition, Some(AlertTransition::Cleared));
        assert!(!engine.pressure());
    }

    #[test]
    fn job_finished_withdraws_the_contribution() {
        let t = Telemetry::new();
        let engine = ForecastEngine::new(&t, cfg());
        let job = iv(0, 60 * 60, 50.0);
        engine.job_started(&job);
        assert_eq!(engine.snapshot().active_jobs, 1);
        engine.job_finished(&job);
        assert_eq!(engine.snapshot().active_jobs, 0);
        let tick = engine.tick();
        assert_eq!(tick.aggregate, 0.0);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let t = Telemetry::new();
        let engine = ForecastEngine::new(&t, cfg());
        engine.job_started(&iv(0, 600, 25.0));
        engine.tick();
        let json = engine.ops_probe()();
        for key in [
            "\"minute\":",
            "\"lead_minutes\":5",
            "\"aggregate_bps\":",
            "\"forecast_bps\":",
            "\"threshold_bps\":",
            "\"alerting\":false",
            "\"active_jobs\":1",
            "\"forecaster\":\"ewma\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn resident_and_truncated_gauges_track_the_aggregator() {
        let t = Telemetry::new();
        let engine = ForecastEngine::new(&t, cfg());
        engine.job_started(&iv(0, 600, 1.0));
        engine.job_started(&iv(0, 1_000_000, 1.0)); // clipped at 120 min
        let text = t.prometheus();
        assert!(text.contains("forecast_resident_jobs 2"), "{text}");
        assert!(text.contains("forecast_truncated_jobs 1"), "{text}");
    }
}
