//! Dense `f32` tensor library backing PRIONN's from-scratch neural networks.
//!
//! The paper trains small models (64×64-character script images, 500-job
//! batches), so the design favours predictable, cache-friendly, row-major
//! storage with rayon-parallel kernels over elaborate lazy abstractions.
//!
//! The public surface is:
//!
//! * [`Shape`] — a small owned dimension list (1–4 axes in practice),
//! * [`Tensor`] — contiguous row-major storage plus a shape,
//! * [`ops`] — cache-blocked GEMM (plain and transposed variants, fused
//!   bias/ReLU epilogues), im2col/col2im for convolutions, elementwise
//!   arithmetic, and reductions,
//! * [`Scratch`] — a reusable buffer pool + GEMM pack workspace that keeps
//!   the training hot path allocation-free,
//! * [`init`] — seeded weight initialisers (uniform, normal, Xavier/Glorot,
//!   He) used by the `prionn-nn` layers.
//!
//! All randomness flows through caller-provided RNGs so experiments are
//! reproducible bit-for-bit.

#![warn(missing_docs)]

pub mod error;
pub mod init;
pub mod ops;
pub mod scratch;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use scratch::{Scratch, ScratchStats};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TensorError>;
