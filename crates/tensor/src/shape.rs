//! Tensor shapes: an owned dimension list with derived row-major strides.

use crate::TensorError;
use serde::{Deserialize, Serialize};

/// An owned list of axis lengths, row-major.
///
/// PRIONN's models only ever need rank 1–4 (vectors, matrices, batched
/// feature maps `[batch, channels, height, width]`), but the representation
/// is rank-agnostic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from axis lengths.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Axis lengths as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (product of axis lengths; 1 for rank 0).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when the shape contains zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of one axis.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear row-major offset of a multi-index, with bounds checking.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                expected: self.rank(),
                actual: index.len(),
            });
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.rank()).rev() {
            let (i, len) = (index[axis], self.0[axis]);
            if i >= len {
                return Err(TensorError::IndexOutOfBounds {
                    axis,
                    index: i,
                    len,
                });
            }
            off += i * stride;
            stride *= len;
        }
        Ok(off)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::from([2, 3, 4]).len(), 24);
        assert_eq!(Shape::from([5]).len(), 5);
    }

    #[test]
    fn rank_zero_shape_has_one_element() {
        assert_eq!(Shape::new(Vec::new()).len(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([7]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds {
                axis: 0,
                index: 2,
                len: 2
            })
        ));
    }

    #[test]
    fn offset_rejects_wrong_rank() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.offset(&[1]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn zero_dim_shape_is_empty() {
        assert!(Shape::from([3, 0, 2]).is_empty());
        assert!(!Shape::from([1]).is_empty());
    }
}
