//! Seeded weight initialisers.
//!
//! Every initialiser takes the RNG by `&mut` so callers control seeding; the
//! workspace standardises on `rand_chacha::ChaCha8Rng` for cross-platform
//! reproducibility.

use crate::{Shape, Tensor};
use rand::Rng;

/// Uniform values in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let len = shape.len();
    let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("len derived from shape")
}

/// Normal values with the given mean and standard deviation (Box–Muller).
pub fn normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let len = shape.len();
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        // Box–Muller transform: two uniforms -> two independent normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < len {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data).expect("len derived from shape")
}

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Appropriate for the fully connected layers of the paper's NN model.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

/// He normal: `N(0, sqrt(2 / fan_in))`, the standard choice ahead of ReLU
/// activations (all of PRIONN's hidden layers use ReLU).
pub fn he_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform([1000], -0.5, 0.5, &mut rng());
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn uniform_is_deterministic_for_seed() {
        let a = uniform([64], 0.0, 1.0, &mut rng());
        let b = uniform([64], 0.0, 1.0, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = normal([20_000], 1.0, 2.0, &mut rng());
        let n = t.len() as f32;
        let mean = t.as_slice().iter().sum::<f32>() / n;
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn normal_handles_odd_lengths() {
        assert_eq!(normal([7], 0.0, 1.0, &mut rng()).len(), 7);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let wide = he_normal([10_000], 10_000, &mut rng());
        let narrow = he_normal([10_000], 4, &mut rng());
        let std = |t: &Tensor| {
            let n = t.len() as f32;
            let m = t.as_slice().iter().sum::<f32>() / n;
            (t.as_slice().iter().map(|v| (v - m).powi(2)).sum::<f32>() / n).sqrt()
        };
        assert!(std(&wide) < std(&narrow));
    }

    #[test]
    fn xavier_bound_shrinks_with_fans() {
        let t = xavier_uniform([1000], 300, 300, &mut rng());
        let a = (6.0f32 / 600.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= a));
    }
}
